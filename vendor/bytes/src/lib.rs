//! Vendored subset of the `bytes` crate: the [`Buf`] / [`BufMut`] traits
//! implemented for `&[u8]` and `Vec<u8>` — exactly the surface the persist
//! layer uses (little-endian fixed-width reads/writes with explicit
//! `remaining()` checks). Panic behavior on underflow matches upstream.

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skip `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes out. Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write sink for bytes.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u32_le(0xDEADBEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f64_le(2.5);
        buf.put_slice(b"xyz");

        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8 + 3);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64_le(), 2.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_moves_cursor() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
