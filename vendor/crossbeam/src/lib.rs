//! Vendored facade exposing the `crossbeam::thread::scope` API on top of
//! `std::thread::scope` (stable since Rust 1.63 — structured concurrency is
//! in std now, so the facade is thin). Only the scoped-thread surface this
//! workspace uses is provided.

/// Scoped threads with the crossbeam calling convention
/// (`scope(|s| { s.spawn(|_| …) })` returning a `Result`).
pub mod thread {
    use std::thread as stdthread;

    /// Result of a scope: `Err` carries a child panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Handle to the scope; passed to closures so they can spawn siblings.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread; `Err` is the panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope handle
        /// (crossbeam convention; callers that don't spawn nested threads
        /// just ignore it with `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// this returns. Unjoined child panics propagate (std semantics), so a
    /// normal return is always `Ok`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let total: u64 = crate::thread::scope(|s| {
            let mid = data.len() / 2;
            let (a, b) = data.split_at(mid);
            let ha = s.spawn(move |_| a.iter().sum::<u64>());
            let hb = s.spawn(move |_| b.iter().sum::<u64>());
            ha.join().expect("a") + hb.join().expect("b")
        })
        .expect("scope");
        assert_eq!(total, 36);
    }

    #[test]
    fn nested_spawn_through_scope_handle() {
        let n = crate::thread::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21usize);
                h2.join().expect("nested") * 2
            });
            h.join().expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
