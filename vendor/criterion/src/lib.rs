//! Vendored miniature benchmark harness exposing the Criterion API surface
//! this workspace uses: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, [`BenchmarkId`],
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up, an iteration count is
//! calibrated so one sample takes a measurable slice of wall time, then
//! `sample_size` samples are timed and min / median / mean per-iteration
//! times are printed. No plots, no statistics beyond that — the point is
//! stable relative comparisons in an offline container.
//!
//! Under `cargo test` (which executes `harness = false` bench binaries with
//! `--test`) every routine runs exactly once as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a benchmark as `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter rendered with `Display`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Accepts both `BenchmarkId` and plain strings as benchmark ids.
pub trait IntoBenchmarkId {
    /// Rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Top-level harness handle passed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench binaries with `--test`;
        // run every routine once instead of measuring.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.test_mode {
            println!("\n== {name} ==");
        }
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named group; benchmarks report as `group/function/parameter`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (min 2 in measure mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a routine with no external input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut b = Bencher::new(self.criterion.test_mode, self.sample_size);
        f(&mut b);
        b.report(&self.name, &id);
        self
    }

    /// Benchmark a routine against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_id();
        let mut b = Bencher::new(self.criterion.test_mode, self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id);
        self
    }

    /// End the group (upstream flushes reports here; ours are immediate).
    pub fn finish(self) {}
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// Mean per-iteration times, one per sample.
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(test_mode: bool, sample_size: usize) -> Self {
        Self {
            test_mode,
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Time the routine. Return values are passed through [`black_box`] so
    /// the computation is not optimized away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }

        // Warm-up doubles as calibration: find how many iterations make a
        // sample long enough to time reliably (~5ms or 1 iteration).
        let calib_start = Instant::now();
        black_box(routine());
        let once = calib_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        let iters = if once >= target {
            1
        } else {
            ((target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000)) as u32
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    fn report(&mut self, group: &str, id: &str) {
        if self.test_mode {
            println!("test-mode ok: {group}/{id}");
            return;
        }
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples (routine never called iter)");
            return;
        }
        self.samples.sort_unstable();
        let n = self.samples.len();
        let min = self.samples[0];
        let median = self.samples[n / 2];
        let mean = self.samples.iter().sum::<Duration>() / n as u32;
        println!(
            "{group}/{id}: median {} (mean {}, min {}, {} samples)",
            fmt_dur(median),
            fmt_dur(mean),
            fmt_dur(min),
            n
        );
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_renders_function_and_parameter() {
        assert_eq!(BenchmarkId::new("treepi", 12).into_id(), "treepi/12");
        assert_eq!("bare".into_id(), "bare");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(false, 3);
        let mut calls = 0u64;
        b.iter(|| {
            calls += 1;
            std::hint::black_box(calls)
        });
        assert_eq!(b.samples.len(), 3);
        assert!(calls > 3, "warmup + samples should call the routine");
    }

    #[test]
    fn test_mode_runs_routine_once() {
        let mut b = Bencher::new(true, 10);
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.samples.is_empty());
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group
            .sample_size(5)
            .bench_function("f", |b| b.iter(|| ran = true));
        group.bench_with_input(BenchmarkId::new("wi", 7), &21u32, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(ran);
    }
}
