//! Minimal vendored implementation of the `rustc-hash` crate: the Fx hash
//! function (a multiply-and-rotate word hasher) plus the `FxHashMap` /
//! `FxHashSet` aliases the workspace uses. API-compatible with the subset
//! of rustc-hash 2.x this repository relies on; built offline because the
//! build environment has no registry access.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the upstream FxHash (64-bit).
const K: u64 = 0xf1357aea2e62a9c5;

/// The Fx word hasher: fast, not DoS-resistant — exactly what compiler-style
/// workloads with trusted keys want.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx hash function.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the Fx hash function.
pub type FxHashSet<V> = HashSet<V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<String> = FxHashSet::default();
        assert!(s.insert("a".to_string()));
        assert!(!s.insert("a".to_string()));
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }
}
