//! Vendored API-compatible subset of the `rand` crate (0.8 surface): the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, uniform range sampling,
//! [`seq::SliceRandom`], and [`thread_rng`]. Built offline because the
//! environment has no registry access; algorithms are self-contained.
//!
//! Determinism contract: for a fixed generator state, `gen_range`,
//! `gen::<f64>()`, and `shuffle` consume the same number of outputs and
//! produce the same values on every platform (no `usize`-width dependence:
//! all integer sampling goes through `u64`).

use std::cell::RefCell;

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types sampleable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the rand convention).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `[0, n)` by rejection (Lemire-style widening
/// is overkill here; rejection keeps it exact and platform-independent).
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Zone rejection: accept v < zone, where zone is the largest multiple
    // of n that fits in u64.
    let zone = u64::MAX - (u64::MAX % n) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // full u64 domain
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64_below(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64).wrapping_add(1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_u64_below(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range!(i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Uniform draw over the type's whole domain (`[0, 1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generator construction.
pub trait SeedableRng: Sized {
    /// Raw seed type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64 (the rand
    /// convention, so distinct u64 seeds give well-separated states).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence helpers (shuffle, choose).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly used items in one import.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

/// Process-global non-deterministic generator (xorshift-mixed SplitMix64
/// seeded from the system clock and a per-thread counter).
pub struct ThreadRng {
    state: u64,
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64: fine statistical quality for convenience use.
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

thread_local! {
    static THREAD_SEED: RefCell<u64> = RefCell::new({
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0x5EED);
        nanos ^ (&nanos as *const u64 as u64)
    });
}

/// A fresh convenience generator (each call advances the thread-local seed,
/// so successive generators are decorrelated).
pub fn thread_rng() -> ThreadRng {
    let state = THREAD_SEED.with(|s| {
        let mut s = s.borrow_mut();
        *s = s.wrapping_mul(0xD1342543DE82EF95).wrapping_add(1);
        *s
    });
    ThreadRng { state }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct FixedRng(u64);
    impl RngCore for FixedRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = FixedRng(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u32..=5);
            assert!(y <= 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = FixedRng(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn rejection_sampling_is_unbiased_over_small_domain() {
        let mut rng = FixedRng(99);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[rng.gen_range(0usize..3)] += 1;
        }
        for c in counts {
            assert!(c > 800, "wildly skewed: {counts:?}");
        }
    }

    #[test]
    fn thread_rng_produces_distinct_streams() {
        let mut a = thread_rng();
        let mut b = thread_rng();
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }
}
