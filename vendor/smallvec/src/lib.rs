//! Vendored API-compatible stand-in for the `smallvec` crate (the subset
//! this workspace uses). The inline-storage optimization is intentionally
//! *not* reproduced — elements always live in a `Vec` — so `SmallVec<[T; N]>`
//! here is a plain growable vector with the smallvec type shape. Semantics
//! (ordering, equality, hashing, iteration) are identical; only the
//! small-size allocation behavior differs.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

/// Backing-array marker trait: `SmallVec<[T; N]>` takes `[T; N]` here.
pub trait Array {
    /// Element type of the array.
    type Item;
}

impl<T, const N: usize> Array for [T; N] {
    type Item = T;
}

/// Growable vector with the `smallvec` API shape (heap-backed stand-in).
pub struct SmallVec<A: Array> {
    inner: Vec<A::Item>,
}

impl<A: Array> SmallVec<A> {
    /// New empty vector.
    #[inline]
    pub fn new() -> Self {
        Self { inner: Vec::new() }
    }

    /// New empty vector with reserved capacity.
    #[inline]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Construct from a `Vec` without copying.
    #[inline]
    pub fn from_vec(v: Vec<A::Item>) -> Self {
        Self { inner: v }
    }

    /// Append an element.
    #[inline]
    pub fn push(&mut self, value: A::Item) {
        self.inner.push(value);
    }

    /// Remove and return the last element.
    #[inline]
    pub fn pop(&mut self) -> Option<A::Item> {
        self.inner.pop()
    }

    /// Insert at `index`, shifting later elements.
    #[inline]
    pub fn insert(&mut self, index: usize, value: A::Item) {
        self.inner.insert(index, value);
    }

    /// Remove and return the element at `index`.
    #[inline]
    pub fn remove(&mut self, index: usize) -> A::Item {
        self.inner.remove(index)
    }

    /// Drop all elements.
    #[inline]
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Convert into a plain `Vec`.
    #[inline]
    pub fn into_vec(self) -> Vec<A::Item> {
        self.inner
    }

    /// View as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[A::Item] {
        &self.inner
    }

    /// View as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [A::Item] {
        &mut self.inner
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = [A::Item];
    #[inline]
    fn deref(&self) -> &[A::Item] {
        &self.inner
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [A::Item] {
        &mut self.inner
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<A: Array> PartialEq for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array> PartialOrd for SmallVec<A>
where
    A::Item: PartialOrd,
{
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.inner.partial_cmp(&other.inner)
    }
}

impl<A: Array> Ord for SmallVec<A>
where
    A::Item: Ord,
{
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.inner.cmp(&other.inner)
    }
}

impl<A: Array> Hash for SmallVec<A>
where
    A::Item: Hash,
{
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.hash(state);
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        Self {
            inner: Vec::from_iter(iter),
        }
    }
}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = std::vec::IntoIter<A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<A: Array> From<Vec<A::Item>> for SmallVec<A> {
    fn from(v: Vec<A::Item>) -> Self {
        Self { inner: v }
    }
}

/// `smallvec![a, b, c]` / `smallvec![x; n]` constructor macro.
#[macro_export]
macro_rules! smallvec {
    ($($x:expr),* $(,)?) => {
        $crate::SmallVec::from_vec(vec![$($x),*])
    };
    ($x:expr; $n:expr) => {
        $crate::SmallVec::from_vec(vec![$x; $n])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_index_iterate() {
        let mut v: SmallVec<[u32; 4]> = SmallVec::new();
        v.push(3);
        v.push(1);
        v.insert(0, 7);
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], 7);
        assert!(v.contains(&1));
        v.sort_unstable();
        assert_eq!(v.binary_search(&3), Ok(1));
        let collected: Vec<u32> = v.iter().copied().collect();
        assert_eq!(collected, vec![1, 3, 7]);
    }

    #[test]
    fn macro_and_equality() {
        let a: SmallVec<[u32; 2]> = smallvec![5, 6];
        let b: SmallVec<[u32; 2]> = [5u32, 6].iter().copied().collect();
        assert_eq!(a, b);
        let c: SmallVec<[u8; 3]> = smallvec![0; 3];
        assert_eq!(&c[..], &[0, 0, 0]);
    }
}
