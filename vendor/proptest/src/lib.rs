//! Vendored miniature property-testing framework exposing the subset of the
//! `proptest` macro/strategy surface this workspace uses: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_shuffle`,
//! integer-range and tuple strategies, [`collection::vec`], [`Just`],
//! [`any`], `prop_assert*` / `prop_assume!`, and [`ProptestConfig`].
//!
//! Differences from upstream, by design (offline stand-in):
//! - **No shrinking.** A failing case reports its deterministic case seed;
//!   re-running reproduces it exactly (generation is seeded by test name
//!   and case index, not by entropy).
//! - **No persistence.** `proptest-regressions` files are not replayed
//!   automatically; pin important regressions as explicit `#[test]`s.
//! - Rejected cases (`prop_assume!`) are skipped rather than re-drawn.

use std::fmt;

// ---------------------------------------------------------------------------
// deterministic generation source
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies (SplitMix64 core).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for a given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Unbiased uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let zone = u64::MAX - (u64::MAX % n) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// strategies
// ---------------------------------------------------------------------------

/// A recipe for generating test values.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Randomly permute the generated collection.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }
}

/// Collections [`Strategy::prop_shuffle`] can permute.
pub trait Shuffleable {
    /// Fisher–Yates permutation in place.
    fn shuffle_in_place(&mut self, rng: &mut TestRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle_in_place(&mut self, rng: &mut TestRng) {
        for i in (1..self.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<S: Strategy> Strategy for Shuffle<S>
where
    S::Value: Shuffleable,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut v = self.inner.generate(rng);
        v.shuffle_in_place(rng);
        v
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw from the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Whole-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// runner
// ---------------------------------------------------------------------------

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 100 }
    }
}

/// Why a test case did not pass.
pub enum TestCaseError {
    /// Assertion failure — the property is violated.
    Fail(String),
    /// Input rejected by `prop_assume!` — skip, not a failure.
    Reject(String),
}

impl fmt::Debug for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "Fail({m})"),
            TestCaseError::Reject(m) => write!(f, "Reject({m})"),
        }
    }
}

/// FNV-1a over the test path: the per-test base seed.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Drive one property: `cfg.cases` deterministic cases, panic on the first
/// failure with the case seed (re-running the test replays it — generation
/// depends only on the test path and case index).
pub fn run_proptest<F>(name: &str, cfg: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = name_seed(name);
    let mut rejected = 0u32;
    for i in 0..cfg.cases {
        let seed = base.wrapping_add((i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest case {i}/{} failed (case seed {seed:#x}): {msg}",
                    cfg.cases
                );
            }
        }
    }
    if rejected == cfg.cases && cfg.cases > 0 {
        panic!(
            "proptest: every one of {} cases was rejected by prop_assume!",
            cfg.cases
        );
    }
}

// ---------------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------------

/// Define property tests: `proptest! { #[test] fn f(x in strat) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __pt_cfg: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(
                concat!(module_path!(), "::", stringify!($name)),
                &__pt_cfg,
                |__pt_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __pt_rng);)+
                    let __pt_out: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    __pt_out
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Property assertion: fails the case (not the process) so the runner can
/// report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Skip the current case when its input does not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The commonly imported surface.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u32..=4, s in any::<u64>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            let _ = s;
        }

        #[test]
        fn vec_sizes_respected(v in collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "bad len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn flat_map_and_shuffle(perm in (2usize..6).prop_flat_map(|n| {
            Just((0..n as u32).collect::<Vec<u32>>()).prop_shuffle()
        })) {
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..perm.len() as u32).collect::<Vec<u32>>());
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = collection::vec(0u32..100, 5..20);
        let a = {
            let mut rng = crate::TestRng::new(7);
            s.generate(&mut rng)
        };
        let b = {
            let mut rng = crate::TestRng::new(7);
            s.generate(&mut rng)
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_seed() {
        crate::run_proptest("t", &ProptestConfig::with_cases(3), |_| {
            Err(TestCaseError::Fail("boom".into()))
        });
    }
}
