//! Vendored ChaCha8-based RNG with the `rand_chacha` type shape
//! ([`ChaCha8Rng`]), implementing the vendored `rand` traits. The keystream
//! is a genuine 8-round ChaCha permutation, so the statistical quality
//! matches upstream; the *stream positions* are not bit-compatible with
//! crates.io `rand_chacha` (nothing in this workspace relies on that — only
//! on determinism for a fixed seed, which holds).

use rand::{RngCore, SeedableRng};

/// ChaCha quarter round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Deterministic ChaCha (8 rounds) keystream generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + constant + counter layout, the ChaCha initial state.
    key: [u32; 8],
    /// 64-bit block counter (low, high words 12–13); words 14–15 are nonce 0.
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&SIGMA);
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        s[14] = 0;
        s[15] = 0;
        let initial = s;
        for _ in 0..4 {
            // two double-rounds per iteration × 4 = 8 rounds
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for (out, init) in s.iter_mut().zip(initial) {
            *out = out.wrapping_add(init);
        }
        self.block = s;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..23 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn usable_through_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let x = rng.gen_range(0usize..10);
        assert!(x < 10);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn output_is_roughly_balanced() {
        // sanity: popcount of 10k words ≈ 50%
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let ones: u64 = (0..10_000)
            .map(|_| rng.next_u64().count_ones() as u64)
            .sum();
        let frac = ones as f64 / (10_000.0 * 64.0);
        assert!((0.49..0.51).contains(&frac), "bit balance {frac}");
    }
}
