//! Vendored subset of the `mio` readiness-polling surface: [`Poll`],
//! [`Events`], [`Token`], [`Interest`] — exactly what a single-threaded
//! level-triggered socket server needs. On Linux the backend is `epoll`
//! via direct FFI (the build environment has no registry access, so no
//! `libc` crate); other unix targets fall back to `poll(2)`.
//!
//! Semantics (matching mio closely enough to swap in the real crate):
//!
//! - **Level-triggered**: a readable/writable fd is reported on every
//!   `poll` until drained, so missed wakeups cannot wedge a connection.
//! - `register`/`reregister`/`deregister` take any `AsRawFd` source; the
//!   caller keeps ownership and must deregister before closing.
//! - `poll` blocks up to `timeout` (`None` = forever), fills `events`,
//!   and returns the number of events. `EINTR` is surfaced as a normal
//!   zero-event wakeup rather than an error — callers already have to
//!   tolerate spurious wakeups under level triggering.

#![warn(missing_docs)]
#![cfg(unix)]

use std::io;
use std::os::fd::AsRawFd;
#[cfg(not(target_os = "linux"))]
use std::os::fd::RawFd;
use std::time::Duration;

/// Caller-chosen identifier attached to a registration and echoed in
/// every [`Event`] for that source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both (combine with `|`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Whether read readiness is requested.
    pub fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Whether write readiness is requested.
    pub fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One readiness notification.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    error: bool,
}

impl Event {
    /// The token supplied at registration.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Whether the source is read-ready (includes peer hangup, so a
    /// subsequent `read` observes EOF rather than blocking).
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// Whether the source is write-ready.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// Whether the source reported an error or hangup condition.
    pub fn is_error(&self) -> bool {
        self.error
    }
}

/// Reusable buffer of [`Event`]s filled by [`Poll::poll`].
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Iterate the events from the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// Whether the last poll produced no events.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of events from the last poll.
    pub fn len(&self) -> usize {
        self.inner.len()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// The selector: registrations plus a blocking readiness wait.
pub struct Poll {
    sys: sys::Selector,
}

impl Poll {
    /// A new empty selector.
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            sys: sys::Selector::new()?,
        })
    }

    /// Start watching `source` for `interests`, tagging events with
    /// `token`. The source must stay open while registered.
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.sys.register(source.as_raw_fd(), token, interests)
    }

    /// Replace the interests/token of an already-registered source.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.sys.reregister(source.as_raw_fd(), token, interests)
    }

    /// Stop watching `source`. Call before closing the fd.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.sys.deregister(source.as_raw_fd())
    }

    /// Block until at least one registered source is ready or `timeout`
    /// elapses (`None` = wait forever), filling `events`. Returns the
    /// number of events; `0` means timeout or a spurious (`EINTR`) wake.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.inner.clear();
        let cap = events.capacity;
        self.sys.select(&mut events.inner, cap, timeout)?;
        Ok(events.inner.len())
    }
}

/// Millisecond timeout for epoll/poll: round up so a 100µs budget waits
/// 1ms instead of spinning at 0; `None` maps to -1 (infinite).
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            let ms = if ms == 0 && d.as_nanos() > 0 { 1 } else { ms };
            ms.min(i32::MAX as u128) as i32
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! epoll backend over direct FFI declarations (no libc crate).

    use super::{timeout_ms, Event, Interest, Token};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    // Kernel ABI: packed on x86-64, naturally aligned elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub struct Selector {
        epfd: RawFd,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Selector { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
            let mut mask = EPOLLRDHUP;
            if interests.is_readable() {
                mask |= EPOLLIN;
            }
            if interests.is_writable() {
                mask |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events: mask,
                data: token.0 as u64,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interests)
        }

        pub fn reregister(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interests)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn select(
            &self,
            out: &mut Vec<Event>,
            cap: usize,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut buf = vec![EpollEvent { events: 0, data: 0 }; cap];
            let n =
                unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), cap as i32, timeout_ms(timeout)) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(()); // spurious wake, caller re-polls
                }
                return Err(err);
            }
            for e in &buf[..n as usize] {
                // Copy out of the (possibly packed) struct before use.
                let (mask, data) = (e.events, e.data);
                out.push(Event {
                    token: Token(data as usize),
                    readable: mask & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: mask & EPOLLOUT != 0,
                    error: mask & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Portable poll(2) backend: a registration table scanned per call.

    use super::{timeout_ms, Event, Interest, Token};
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    pub struct Selector {
        regs: Mutex<Vec<(RawFd, Token, Interest)>>,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            Ok(Selector {
                regs: Mutex::new(Vec::new()),
            })
        }

        pub fn register(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
            let mut regs = self.regs.lock().expect("minipoll regs");
            if regs.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            regs.push((fd, token, interests));
            Ok(())
        }

        pub fn reregister(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
            let mut regs = self.regs.lock().expect("minipoll regs");
            match regs.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(slot) => {
                    *slot = (fd, token, interests);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut regs = self.regs.lock().expect("minipoll regs");
            let before = regs.len();
            regs.retain(|(f, _, _)| *f != fd);
            if regs.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub fn select(
            &self,
            out: &mut Vec<Event>,
            cap: usize,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let regs = self.regs.lock().expect("minipoll regs").clone();
            let mut fds: Vec<PollFd> = regs
                .iter()
                .map(|(fd, _, int)| {
                    let mut events = 0i16;
                    if int.is_readable() {
                        events |= POLLIN;
                    }
                    if int.is_writable() {
                        events |= POLLOUT;
                    }
                    PollFd {
                        fd: *fd,
                        events,
                        revents: 0,
                    }
                })
                .collect();
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (pfd, (_, token, _)) in fds.iter().zip(&regs) {
                if pfd.revents == 0 || out.len() >= cap {
                    continue;
                }
                out.push(Event {
                    token: *token,
                    readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    error: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    const LISTENER: Token = Token(0);
    const CLIENT: Token = Token(1);

    #[test]
    fn interest_combinators() {
        let rw = Interest::READABLE | Interest::WRITABLE;
        assert!(rw.is_readable() && rw.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
    }

    #[test]
    fn timeout_rounding() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(25))), 25);
    }

    #[test]
    fn accept_then_read_readiness() {
        let poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        poll.register(&listener, LISTENER, Interest::READABLE)
            .unwrap();

        // Nothing pending: times out with zero events.
        poll.poll(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(events.is_empty());

        let mut client = TcpStream::connect(addr).unwrap();
        // Wait for the listener to become acceptable.
        let mut accepted = None;
        for _ in 0..100 {
            poll.poll(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            if events
                .iter()
                .any(|e| e.token() == LISTENER && e.is_readable())
            {
                let (s, _) = listener.accept().unwrap();
                accepted = Some(s);
                break;
            }
        }
        let server_side = accepted.expect("listener never became readable");
        server_side.set_nonblocking(true).unwrap();
        poll.register(&server_side, CLIENT, Interest::READABLE)
            .unwrap();

        client.write_all(b"ping").unwrap();
        let mut got = Vec::new();
        for _ in 0..100 {
            poll.poll(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            if events
                .iter()
                .any(|e| e.token() == CLIENT && e.is_readable())
            {
                let mut buf = [0u8; 16];
                let n = (&server_side).read(&mut buf).unwrap();
                got.extend_from_slice(&buf[..n]);
                break;
            }
        }
        assert_eq!(got, b"ping");

        // Level-triggered write readiness on an idle socket.
        poll.reregister(
            &server_side,
            CLIENT,
            Interest::READABLE | Interest::WRITABLE,
        )
        .unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == CLIENT && e.is_writable()));

        poll.deregister(&server_side).unwrap();
        poll.deregister(&listener).unwrap();
        // Deregistered sources produce no more events.
        client.write_all(b"more").unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn eof_is_reported_as_readable() {
        let poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(4);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poll.register(&server_side, CLIENT, Interest::READABLE)
            .unwrap();
        drop(client); // peer hangs up
        let mut saw = false;
        for _ in 0..100 {
            poll.poll(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            if events
                .iter()
                .any(|e| e.token() == CLIENT && e.is_readable())
            {
                let mut buf = [0u8; 8];
                assert_eq!((&server_side).read(&mut buf).unwrap(), 0, "EOF expected");
                saw = true;
                break;
            }
        }
        assert!(saw, "hangup never surfaced as readable");
    }
}
