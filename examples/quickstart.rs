//! Quickstart: build a TreePi index over a toy molecule database and run a
//! containment query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use graph_core::graph_from;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use treepi::{TreePiIndex, TreePiParams};

fn main() {
    // A tiny database of labeled graphs (vertex labels, then
    // (u, v, edge label) triples). Think of labels as atom/bond types.
    let db = vec![
        // ethanol-ish chain: C-C-O
        graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
        // ring with a tail
        graph_from(&[0, 0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 0), (2, 3, 0)]),
        // star
        graph_from(&[0, 1, 1, 2], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
    ];

    // Build the index: mines frequent subtrees, shrinks them, and stores
    // support sets plus center positions (paper §4).
    let index = TreePiIndex::build(db, TreePiParams::default());
    println!(
        "index built: {} feature trees over {} graphs",
        index.feature_count(),
        index.active_count()
    );

    // Query: which graphs contain the path C-C-O? (graph 0 directly, and
    // graph 1 via its tail off the ring)
    let query = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let result = index.query(&query, &mut rng);

    println!("query answered: graphs {:?}", result.matches);
    println!(
        "pipeline: partition into {} parts, {} candidates after filter, \
         {} after center-distance pruning, {} verified",
        result.stats.partition_size,
        result.stats.filtered,
        result.stats.pruned,
        result.stats.answers
    );
    assert_eq!(result.matches, vec![0, 1]);
}
