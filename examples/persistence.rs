//! Index persistence: preprocess once, save, reload instantly — the
//! workflow of a chemical registration system, where the database is
//! curated centrally and search nodes load a prebuilt index.
//!
//! ```sh
//! cargo run --release --example persistence
//! ```

use datagen::{extract_queries, generate_chem, ChemParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;
use treepi::{TreePiIndex, TreePiParams};

fn main() -> std::io::Result<()> {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let db = generate_chem(&ChemParams::sized(150), &mut rng);

    let t = Instant::now();
    let index = TreePiIndex::build(db.clone(), TreePiParams::default());
    println!(
        "built index over {} molecules in {:.2?} ({} features)",
        index.active_count(),
        t.elapsed(),
        index.feature_count()
    );

    let path = std::env::temp_dir().join("treepi-example.idx");
    let t = Instant::now();
    let mut file = std::fs::File::create(&path)?;
    index.save(&mut file)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "saved to {} ({} KiB) in {:.2?}",
        path.display(),
        bytes / 1024,
        t.elapsed()
    );

    let t = Instant::now();
    let loaded = TreePiIndex::load(&mut std::fs::File::open(&path)?)?;
    println!("reloaded in {:.2?}", t.elapsed());

    // The reloaded index answers identically.
    for q in extract_queries(&db, 6, 10, &mut rng) {
        let mut r1 = ChaCha8Rng::seed_from_u64(7);
        let mut r2 = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(
            index.query(&q, &mut r1).matches,
            loaded.query(&q, &mut r2).matches
        );
    }
    println!("10 queries: identical answers from the reloaded index");
    std::fs::remove_file(&path)?;
    Ok(())
}
