//! Chemical substructure search — the paper's motivating application
//! (ChemIDplus-style lookups over a screen database).
//!
//! Generates an AIDS-surrogate molecule database, indexes it, and answers
//! substructure queries of growing size, printing the candidate funnel
//! (filtered → pruned → answers) and comparing against a full database
//! scan.
//!
//! ```sh
//! cargo run --release --example chemical_search -- [n_molecules]
//! ```

use datagen::{extract_queries, generate_chem, ChemParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;
use treepi::{scan_support, TreePiIndex, TreePiParams};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let mut rng = ChaCha8Rng::seed_from_u64(2026);

    println!("generating {n} molecules…");
    let db = generate_chem(&ChemParams::sized(n), &mut rng);

    println!("building TreePi index (α=5, β=2, η=10, γ=1.5)…");
    let t = Instant::now();
    let index = TreePiIndex::build(db.clone(), TreePiParams::default());
    println!(
        "  {} features, {} center positions, built in {:.2?}\n",
        index.feature_count(),
        index.stats().center_positions,
        t.elapsed()
    );

    println!(
        "{:>4} {:>8} {:>8} {:>8} {:>12} {:>12}",
        "|q|", "|Pq|", "|P'q|", "|Dq|", "treepi", "full scan"
    );
    for m in [4, 8, 12, 16] {
        let queries = extract_queries(&db, m, 20, &mut rng);
        let (mut pq, mut ppq, mut dq) = (0usize, 0usize, 0usize);
        let t = Instant::now();
        for q in &queries {
            let r = index.query(q, &mut rng);
            pq += r.stats.filtered;
            ppq += r.stats.pruned;
            dq += r.stats.answers;
        }
        let t_index = t.elapsed() / queries.len() as u32;

        let t = Instant::now();
        let mut scan_total = 0usize;
        for q in &queries {
            scan_total += scan_support(&index, q).len();
        }
        let t_scan = t.elapsed() / queries.len() as u32;
        assert_eq!(dq, scan_total, "index must agree with the scan");

        let k = queries.len();
        println!(
            "{:>4} {:>8} {:>8} {:>8} {:>12.2?} {:>12.2?}",
            m,
            pq / k,
            ppq / k,
            dq / k,
            t_index,
            t_scan
        );
    }
    println!("\n(averages per query; treepi answers match the scan exactly)");
}
