//! TreePi vs gIndex head-to-head on a synthetic dataset (the paper's §6.2
//! setup, scaled down): build both indexes over `D1kI10T20S100L4`-style
//! data and compare index sizes, candidate-set sizes, and query times.
//!
//! ```sh
//! cargo run --release --example synthetic_workload -- [n_graphs] [labels]
//! ```

use datagen::{extract_queries, generate_synthetic, SyntheticParams};
use gindex::{GIndex, GIndexParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;
use treepi::{TreePiIndex, TreePiParams};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let labels: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let params = SyntheticParams {
        n_graphs: n,
        seed_size: 10.0,
        graph_size: 20.0,
        seed_count: (n / 8).max(20),
        vertex_labels: labels,
        edge_labels: 2,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    println!("dataset {} …", params.name());
    let db = generate_synthetic(&params, &mut rng);

    let t = Instant::now();
    let tp = TreePiIndex::build(db.clone(), TreePiParams::default());
    let t_tp = t.elapsed();
    let t = Instant::now();
    let gi = GIndex::build(db.clone(), GIndexParams::paper_default(n));
    let t_gi = t.elapsed();

    println!(
        "index sizes: TreePi {} features ({t_tp:.2?}), gIndex {} fragments ({t_gi:.2?})\n",
        tp.feature_count(),
        gi.feature_count()
    );

    println!(
        "{:>4} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "|q|", "|P'q| (TP)", "|Cq| (gI)", "|Dq|", "treepi", "gindex"
    );
    for m in [4, 6, 8, 10] {
        let queries = extract_queries(&db, m, 20, &mut rng);
        let (mut ppq, mut dq_t) = (0usize, 0usize);
        let t = Instant::now();
        for q in &queries {
            let r = tp.query(q, &mut rng);
            ppq += r.stats.pruned;
            dq_t += r.stats.answers;
        }
        let t_tpq = t.elapsed() / queries.len() as u32;
        let (mut cq, mut dq_g) = (0usize, 0usize);
        let t = Instant::now();
        for q in &queries {
            let r = gi.query(q);
            cq += r.stats.filtered;
            dq_g += r.stats.answers;
        }
        let t_giq = t.elapsed() / queries.len() as u32;
        assert_eq!(dq_t, dq_g, "the two systems must agree");
        let k = queries.len();
        println!(
            "{:>4} {:>10} {:>10} {:>8} {:>12.2?} {:>12.2?}",
            m,
            ppq / k,
            cq / k,
            dq_t / k,
            t_tpq,
            t_giq
        );
    }
}
