//! Directed containment search (paper §7.2): index a database of directed
//! graphs — think metabolic pathways or citation motifs — and query with
//! direction-sensitive patterns.
//!
//! ```sh
//! cargo run --release --example directed_search
//! ```

use graph_core::digraph::{digraph_from, DiGraph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use treepi::{DirectedTreePiIndex, TreePiParams};

fn main() {
    // A toy pathway database: labels are enzyme classes, arcs are
    // "catalyzes into" relations.
    let db: Vec<DiGraph> = vec![
        // linear pathway A→B→C→D
        digraph_from(&[0, 1, 2, 3], &[(0, 1, 0), (1, 2, 0), (2, 3, 0)]),
        // branching: A→B, A→C, C→D
        digraph_from(&[0, 1, 2, 3], &[(0, 1, 0), (0, 2, 0), (2, 3, 0)]),
        // feedback loop: A→B→C→A
        digraph_from(&[0, 1, 2], &[(0, 1, 0), (1, 2, 0), (2, 0, 0)]),
        // reversed chain D→C→B→A
        digraph_from(&[0, 1, 2, 3], &[(3, 2, 0), (2, 1, 0), (1, 0, 0)]),
    ];

    let index = DirectedTreePiIndex::build(db.clone(), TreePiParams::quick());
    println!(
        "indexed {} directed graphs ({} encoded features)",
        index.active_count(),
        index.inner().feature_count()
    );

    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let cases = vec![
        ("A→B (forward arc)", digraph_from(&[0, 1], &[(0, 1, 0)])),
        ("B→A (reverse arc)", digraph_from(&[0, 1], &[(1, 0, 0)])),
        (
            "A→B→C chain",
            digraph_from(&[0, 1, 2], &[(0, 1, 0), (1, 2, 0)]),
        ),
        ("C→A closing arc", digraph_from(&[0, 2], &[(1, 0, 0)])),
    ];
    for (name, q) in cases {
        let r = index.query(&q, &mut rng);
        // cross-check against the directed brute-force oracle
        let truth: Vec<u32> = db
            .iter()
            .enumerate()
            .filter(|(_, g)| graph_core::is_sub_digraph_isomorphic(&q, g))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(r.matches, truth);
        println!("{name:22} -> graphs {:?}", r.matches);
    }
    println!("all directed answers verified against the directed oracle");
}
