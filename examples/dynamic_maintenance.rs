//! Dynamic index maintenance (paper §7.1): insert and delete graphs
//! without rebuilding, then rebuild once churn gets heavy.
//!
//! ```sh
//! cargo run --release --example dynamic_maintenance
//! ```

use datagen::{extract_queries, generate_chem, ChemParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use treepi::{scan_support, TreePiIndex, TreePiParams};

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let initial = generate_chem(&ChemParams::sized(80), &mut rng);
    let incoming = generate_chem(&ChemParams::sized(20), &mut rng);

    let mut index = TreePiIndex::build(initial.clone(), TreePiParams::default());
    println!(
        "initial index: {} graphs, {} features",
        index.active_count(),
        index.feature_count()
    );

    // Stream in new molecules: supports and center positions update in
    // place, no re-mining.
    for g in incoming {
        index.insert(g);
    }
    println!("after 20 inserts: {} graphs", index.active_count());

    // Retire some molecules.
    for gid in [0u32, 7, 13, 21, 34] {
        index.remove(gid);
    }
    println!("after 5 deletes: {} graphs", index.active_count());

    // Queries remain exact throughout (verified against a scan).
    let queries = extract_queries(&initial, 6, 10, &mut rng);
    for q in &queries {
        let got = index.query(q, &mut rng).matches;
        assert_eq!(got, scan_support(&index, q));
    }
    println!("10 queries after churn: all exact");

    // The paper: once ~a quarter of the database has changed, rebuild to
    // restore feature quality.
    let index = index.rebuild();
    println!(
        "after rebuild: {} graphs, {} features (ids re-densified)",
        index.active_count(),
        index.feature_count()
    );
}
