//! Moderate-scale end-to-end smoke test (run explicitly with
//! `cargo test --release --test scale_smoke -- --ignored`): builds the
//! paper-parameter index over a few hundred molecules and checks exactness
//! on a mixed query workload. Kept out of the default test run for time.

use datagen::{extract_queries, generate_chem, ChemParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use treepi::{scan_support, summarize, TreePiIndex, TreePiParams};

#[test]
#[ignore = "minutes-scale; run with --ignored in release mode"]
fn paper_parameters_at_scale() {
    let db = generate_chem(&ChemParams::sized(400), &mut ChaCha8Rng::seed_from_u64(42));
    let idx = TreePiIndex::build(db.clone(), TreePiParams::default());
    assert!(idx.feature_count() > 100);
    let mut rng = ChaCha8Rng::seed_from_u64(43);
    let mut stats = Vec::new();
    for m in [4usize, 8, 12, 16, 20] {
        for q in extract_queries(&db, m, 20, &mut rng) {
            let r = idx.query(&q, &mut rng);
            assert_eq!(r.matches, scan_support(&idx, &q), "m={m}");
            stats.push(r.stats);
        }
    }
    let summary = summarize(&stats);
    assert_eq!(summary.queries, 100);
    // the funnel must be meaningfully tighter than the whole database
    assert!(summary.mean_pruned < db.len() as f64 / 2.0);
    println!("{summary}");
}
