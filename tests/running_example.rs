//! The paper's running example, reconstructed (§3, Figures 1–3 and 6).
//!
//! Figure 1 shows a three-graph database over vertex labels {a, b} and edge
//! labels {1, 2, 3}; Figure 2 a query graph whose support set is {b, c}
//! (the second and third graphs). The figures are not machine-readable, so
//! this test rebuilds the *semantics*: same alphabets, a query supported by
//! exactly the last two graphs, 3-frequent trees as in Figure 3, and a
//! feature-tree partition as in Figure 6.

use graph_core::{graph_from, Graph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use treepi::{partition_runs, scan_support, PartitionRuns, TreePiIndex, TreePiParams};

const A: u32 = 0;
const B: u32 = 1;

/// Database in the spirit of Figure 1: graphs (a), (b), (c).
fn example_db() -> Vec<Graph> {
    vec![
        // (a): a larger mixed graph — does NOT contain the query
        graph_from(
            &[A, A, A, B, A, B],
            &[
                (0, 1, 1),
                (1, 2, 3),
                (2, 3, 1),
                (3, 4, 2),
                (4, 5, 3),
                (1, 4, 1),
            ],
        ),
        // (b): contains the query pattern
        graph_from(
            &[A, A, B, A, B],
            &[(0, 1, 1), (1, 2, 2), (2, 3, 1), (1, 3, 3), (3, 4, 2)],
        ),
        // (c): (b) plus one extra pendant vertex — also contains the query
        graph_from(
            &[A, A, B, A, B, A],
            &[
                (0, 1, 1),
                (1, 2, 2),
                (2, 3, 1),
                (1, 3, 3),
                (3, 4, 2),
                (4, 5, 1),
            ],
        ),
    ]
}

/// Query in the spirit of Figure 2: supported by exactly {b, c}.
fn example_query() -> Graph {
    graph_from(&[A, B, A], &[(0, 1, 2), (1, 2, 1), (0, 2, 3)])
}

#[test]
fn query_support_is_b_and_c() {
    let db = example_db();
    let q = example_query();
    let idx = TreePiIndex::build(db, TreePiParams::quick());
    // ground truth first
    assert_eq!(
        scan_support(&idx, &q),
        vec![1, 2],
        "example must match Figure 2's support {{b, c}}"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for _ in 0..5 {
        let r = idx.query(&q, &mut rng);
        assert_eq!(r.matches, vec![1, 2]);
    }
}

#[test]
fn three_frequent_trees_exist() {
    // Figure 3 shows 3-frequent trees of the example database: trees
    // supported by all three graphs. At σ ≡ 3 the miner must find some.
    let db = example_db();
    let sigma = mining::SigmaFn {
        alpha: 0,
        beta: 2.0,
        eta: 3,
    };
    assert_eq!(sigma.threshold(1), Some(3));
    let (mined, _) = mining::mine_frequent_trees(&db, &sigma, &mining::MiningLimits::default());
    assert!(!mined.is_empty(), "no 3-frequent trees found");
    for m in &mined {
        assert!(m.support.len() >= 3);
    }
}

#[test]
fn feature_tree_partition_exists() {
    // Figure 6: the query graph admits a Feature-Tree-Partition. The query
    // is a triangle, so the minimum partition has ≥ 2 parts.
    let db = example_db();
    let q = example_query();
    let idx = TreePiIndex::build(db, TreePiParams::quick());
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    match partition_runs(&q, &idx, 5, &mut rng) {
        PartitionRuns::Ok { min_partition, .. } => {
            assert!(min_partition.len() >= 2);
            let covered: usize = min_partition.iter().map(|p| p.q_edges.len()).sum();
            assert_eq!(covered, q.edge_count());
        }
        PartitionRuns::MissingFeature(_) => panic!("query edges all occur in the database"),
    }
}

#[test]
fn worst_case_partition_is_single_edges() {
    // §5.1: "in the worst case it can be partitioned into all one edge
    // trees, which are always selected to be feature trees". Force that
    // case with η = 1.
    let db = example_db();
    let q = example_query();
    let idx = TreePiIndex::build(
        db,
        TreePiParams {
            sigma: mining::SigmaFn {
                alpha: 1,
                beta: 1.0,
                eta: 1,
            },
            ..TreePiParams::quick()
        },
    );
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    match partition_runs(&q, &idx, 3, &mut rng) {
        PartitionRuns::Ok { min_partition, .. } => {
            assert_eq!(min_partition.len(), q.edge_count());
            for p in &min_partition {
                assert_eq!(p.q_edges.len(), 1);
            }
        }
        PartitionRuns::MissingFeature(_) => panic!("single edges are always features"),
    }
    // and the query still answers exactly
    let r = idx.query(&q, &mut rng);
    assert_eq!(r.matches, vec![1, 2]);
}
