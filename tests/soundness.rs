//! Cross-crate soundness: on generated workloads, TreePi and gIndex must
//! both return exactly the brute-force answer set, and TreePi's candidate
//! funnel must always contain the truth.

use datagen::{extract_queries, generate_chem, generate_synthetic, ChemParams, SyntheticParams};
use gindex::{GIndex, GIndexParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use treepi::{scan_support, TreePiIndex, TreePiParams};

fn chem_db(n: usize, seed: u64) -> Vec<graph_core::Graph> {
    generate_chem(&ChemParams::sized(n), &mut ChaCha8Rng::seed_from_u64(seed))
}

#[test]
fn treepi_answers_equal_brute_force_on_chem() {
    let db = chem_db(60, 1);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let idx = TreePiIndex::build(db.clone(), TreePiParams::quick());
    for m in [1, 3, 5, 8] {
        for q in extract_queries(&db, m, 8, &mut rng) {
            let got = idx.query(&q, &mut rng);
            let truth = scan_support(&idx, &q);
            assert_eq!(got.matches, truth, "query size {m}");
            assert!(got.stats.filtered >= got.stats.pruned);
            assert!(got.stats.pruned >= got.stats.answers);
        }
    }
}

#[test]
fn treepi_answers_equal_brute_force_on_synthetic() {
    let params = SyntheticParams {
        n_graphs: 50,
        seed_size: 4.0,
        graph_size: 12.0,
        seed_count: 10,
        vertex_labels: 4,
        edge_labels: 2,
    };
    let db = generate_synthetic(&params, &mut ChaCha8Rng::seed_from_u64(3));
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let idx = TreePiIndex::build(db.clone(), TreePiParams::quick());
    for m in [2, 4, 6] {
        for q in extract_queries(&db, m, 6, &mut rng) {
            let got = idx.query(&q, &mut rng);
            assert_eq!(got.matches, scan_support(&idx, &q), "query size {m}");
        }
    }
}

#[test]
fn gindex_answers_equal_brute_force() {
    let db = chem_db(40, 5);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let idx = GIndex::build(db.clone(), GIndexParams::quick(db.len()));
    for m in [1, 3, 4] {
        for q in extract_queries(&db, m, 6, &mut rng) {
            let r = idx.query(&q);
            let truth: Vec<u32> = db
                .iter()
                .enumerate()
                .filter(|(_, g)| graph_core::is_subgraph_isomorphic(&q, g))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(r.matches, truth, "query size {m}");
        }
    }
}

#[test]
fn treepi_and_gindex_agree() {
    let db = chem_db(40, 7);
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let tp = TreePiIndex::build(db.clone(), TreePiParams::quick());
    let gi = GIndex::build(db, GIndexParams::quick(40));
    for m in [2, 4] {
        for q in extract_queries(tp.db(), m, 6, &mut rng) {
            assert_eq!(tp.query(&q, &mut rng).matches, gi.query(&q).matches);
        }
    }
}

#[test]
fn maintenance_keeps_queries_exact() {
    let db = chem_db(30, 9);
    let extra = chem_db(10, 10);
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut idx = TreePiIndex::build(db.clone(), TreePiParams::quick());
    for g in extra {
        idx.insert(g);
    }
    idx.remove(0);
    idx.remove(17);
    for q in extract_queries(&db, 4, 8, &mut rng) {
        let got = idx.query(&q, &mut rng);
        assert_eq!(got.matches, scan_support(&idx, &q));
    }
}
