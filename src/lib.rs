//! Umbrella crate for the TreePi reproduction: re-exports every layer so
//! examples and downstream users need a single dependency.
//!
//! See the [`treepi`] crate for the index itself, [`gindex`] for the
//! baseline, [`datagen`] for workload generators, and DESIGN.md for the
//! paper-to-module map.

pub use datagen;
pub use gindex;
pub use graph_core;
pub use mining;
pub use obs;
pub use pathgrep;
pub use serve;
pub use tree_core;
pub use treepi;
