//! Property tests for the graph substrate: canonical codes are permutation
//! invariants, isomorphism test properties, enumeration completeness.

use graph_core::*;
use proptest::prelude::*;

/// Strategy: a random labeled graph with up to `nmax` vertices. Edges are
/// deduped; self loops dropped.
fn arb_graph(nmax: usize) -> impl Strategy<Value = Graph> {
    (2..=nmax).prop_flat_map(move |n| {
        let vlabels = proptest::collection::vec(0u32..4, n);
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32, 0u32..3), 0..(2 * n));
        (vlabels, edges).prop_map(|(vl, es)| {
            let mut b = GraphBuilder::new();
            for l in &vl {
                b.add_vertex(VLabel(*l));
            }
            for (u, v, l) in es {
                if u != v && !b.has_edge(VertexId(u), VertexId(v)) {
                    let _ = b.add_edge(VertexId(u), VertexId(v), ELabel(l));
                }
            }
            b.build()
        })
    })
}

/// Relabel the vertices of `g` by the permutation `perm` (perm[i] = new id
/// of old vertex i).
fn permute(g: &Graph, perm: &[u32]) -> Graph {
    let mut b = GraphBuilder::new();
    // inverse: position j holds old vertex with perm[old] == j
    let mut inv = vec![0u32; perm.len()];
    for (old, &new) in perm.iter().enumerate() {
        inv[new as usize] = old as u32;
    }
    for &old in &inv {
        b.add_vertex(g.vlabel(VertexId(old)));
    }
    for e in g.edges() {
        b.add_edge(
            VertexId(perm[e.u.idx()]),
            VertexId(perm[e.v.idx()]),
            e.label,
        )
        .expect("permutation preserves simplicity");
    }
    b.build()
}

fn arb_graph_and_perm(nmax: usize) -> impl Strategy<Value = (Graph, Vec<u32>)> {
    arb_graph(nmax).prop_flat_map(|g| {
        let n = g.vertex_count();
        (
            Just(g),
            Just((0..n as u32).collect::<Vec<u32>>()).prop_shuffle(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn canonical_code_is_permutation_invariant((g, perm) in arb_graph_and_perm(7)) {
        let h = permute(&g, &perm);
        prop_assert_eq!(canonical_code(&g), canonical_code(&h));
    }

    #[test]
    fn permuted_graphs_are_isomorphic((g, perm) in arb_graph_and_perm(7)) {
        let h = permute(&g, &perm);
        prop_assert!(is_isomorphic(&g, &h));
    }

    #[test]
    fn canonical_code_equality_implies_isomorphism(a in arb_graph(5), b in arb_graph(5)) {
        // Both directions: the code is a complete invariant.
        prop_assert_eq!(canonical_code(&a) == canonical_code(&b), is_isomorphic(&a, &b));
    }

    #[test]
    fn embeddings_preserve_labels_and_edges(g in arb_graph(6), (h, perm) in arb_graph_and_perm(6)) {
        let _ = perm;
        for emb in all_embeddings(&g, &h, Some(50)) {
            for v in g.vertices() {
                prop_assert_eq!(g.vlabel(v), h.vlabel(emb[v.idx()]));
            }
            for e in g.edges() {
                let he = h.edge_between(emb[e.u.idx()], emb[e.v.idx()]);
                prop_assert!(he.is_some());
                prop_assert_eq!(h.edge(he.unwrap()).label, e.label);
            }
            // injectivity
            let mut images: Vec<_> = emb.clone();
            images.sort();
            images.dedup();
            prop_assert_eq!(images.len(), emb.len());
        }
    }

    #[test]
    fn subgraph_isomorphism_is_reflexive_and_monotone(g in arb_graph(6)) {
        prop_assert!(g.vertex_count() == 0 || is_subgraph_isomorphic(&g, &g));
        // removing edges keeps it a subgraph of the original
        if g.edge_count() > 0 {
            let keep: Vec<EdgeId> = g.edge_ids().skip(1).collect();
            let sub = edge_subgraph(&g, &keep);
            prop_assert!(sub.graph.edge_count() == 0 || is_subgraph_isomorphic(&sub.graph, &g));
        }
    }

    #[test]
    fn connected_subset_enumeration_matches_bruteforce(g in arb_graph(5)) {
        // count via enumerator
        let mut enumerated = std::collections::HashSet::new();
        let _ = for_each_connected_edge_subset(&g, g.edge_count(), |s| {
            let mut k: Vec<u32> = s.iter().map(|e| e.0).collect();
            k.sort_unstable();
            assert!(enumerated.insert(k));
            std::ops::ControlFlow::Continue(())
        });
        // brute force over all subsets (edge count is small)
        let m = g.edge_count();
        prop_assume!(m <= 10);
        let mut brute = 0usize;
        for mask in 1u32..(1 << m) {
            let ids: Vec<EdgeId> = (0..m).filter(|i| mask & (1 << i) != 0).map(|i| EdgeId(i as u32)).collect();
            if edge_components(&g, &ids).len() == 1 {
                brute += 1;
            }
        }
        prop_assert_eq!(enumerated.len(), brute);
    }

    #[test]
    fn bfs_distance_satisfies_triangle_inequality(g in arb_graph(7)) {
        prop_assume!(g.vertex_count() >= 3);
        let a = VertexId(0);
        let b = VertexId(1);
        let c = VertexId(2);
        let (ab, bc, ac) = (distance(&g, a, b), distance(&g, b, c), distance(&g, a, c));
        if ab != UNREACHABLE && bc != UNREACHABLE {
            prop_assert!(ac <= ab + bc);
        }
    }

    #[test]
    fn io_round_trip(g in arb_graph(7)) {
        let text = io::write_graphs(std::slice::from_ref(&g));
        let back = io::parse_graphs(&text).unwrap();
        prop_assert_eq!(back.len(), 1);
        prop_assert_eq!(&back[0], &g);
    }
}

mod digraph_props {
    use graph_core::digraph::{DiGraph, DiGraphBuilder};
    use graph_core::{is_sub_digraph_isomorphic, ELabel, VLabel, VertexId};
    use proptest::prelude::*;

    fn arb_digraph(nmax: usize) -> impl Strategy<Value = DiGraph> {
        (2..=nmax).prop_flat_map(move |n| {
            let vlabels = proptest::collection::vec(0u32..3, n);
            let arcs = proptest::collection::vec((0..n as u32, 0..n as u32, 0u32..2), 1..(2 * n));
            (vlabels, arcs).prop_map(|(vl, arcs)| {
                let mut b = DiGraphBuilder::new();
                for l in &vl {
                    b.add_vertex(VLabel(*l)).expect("label in range");
                }
                for (u, v, l) in arcs {
                    if u != v {
                        let _ = b.add_arc(VertexId(u), VertexId(v), ELabel(l));
                    }
                }
                b.build()
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn encoding_preserves_shape(d in arb_digraph(6)) {
            let e = d.encode();
            prop_assert_eq!(e.vertex_count(), d.vertex_count() + d.arc_count());
            prop_assert_eq!(e.edge_count(), 2 * d.arc_count());
        }

        #[test]
        fn digraph_self_containment(d in arb_digraph(6)) {
            prop_assert!(is_sub_digraph_isomorphic(&d, &d));
        }

        #[test]
        fn arc_removal_is_contained(d in arb_digraph(6)) {
            prop_assume!(d.arc_count() >= 2);
            // drop the last arc: the rest must embed in the original
            let mut b = DiGraphBuilder::new();
            for v in d.vertices() {
                b.add_vertex(d.vlabel(v)).expect("label in range");
            }
            for a in &d.arcs()[..d.arc_count() - 1] {
                b.add_arc(a.from, a.to, a.label).expect("copying arcs");
            }
            let smaller = b.build();
            prop_assert!(is_sub_digraph_isomorphic(&smaller, &d));
        }
    }
}
