//! Text serialization in the gSpan transaction format, plus a label
//! interner for symbolic (e.g. atom-name) labels.
//!
//! ```text
//! t # 0
//! v 0 1
//! v 1 2
//! e 0 1 0
//! t # 1
//! ...
//! ```

use crate::graph::{ELabel, Graph, GraphBuilder, VLabel, VertexId};
use rustc_hash::FxHashMap;
use std::fmt::Write as _;

/// Bidirectional mapping between string labels (atom names, bond names) and
/// the numeric labels used by [`Graph`].
#[derive(Clone, Default, Debug)]
pub struct LabelInterner {
    names: Vec<String>,
    ids: FxHashMap<String, u32>,
}

impl LabelInterner {
    /// New empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Look up the id of `name`, if interned.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// The name for `id`, if any.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(|s| s.as_str())
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Parse errors for the transaction format.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// A malformed line, with its 1-based line number.
    Malformed(usize, String),
    /// A `v`/`e` line appeared before any `t` line.
    NoCurrentGraph(usize),
    /// An edge referenced a vertex that does not exist.
    BadEdge(usize, String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed(n, l) => write!(f, "line {n}: malformed: {l}"),
            ParseError::NoCurrentGraph(n) => write!(f, "line {n}: v/e before first t"),
            ParseError::BadEdge(n, l) => write!(f, "line {n}: bad edge: {l}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse a multi-graph transaction file.
pub fn parse_graphs(text: &str) -> Result<Vec<Graph>, ParseError> {
    let mut out = Vec::new();
    let mut current: Option<GraphBuilder> = None;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            Some("t") => {
                if let Some(b) = current.take() {
                    out.push(b.build());
                }
                current = Some(GraphBuilder::new());
            }
            Some("v") => {
                let b = current.as_mut().ok_or(ParseError::NoCurrentGraph(lineno))?;
                let _id: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::Malformed(lineno, line.to_owned()))?;
                let label: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::Malformed(lineno, line.to_owned()))?;
                // Vertex ids must be dense and in order, which the writer
                // guarantees; enforce it for round-tripping.
                if _id as usize != b.vertex_count() {
                    return Err(ParseError::Malformed(lineno, line.to_owned()));
                }
                b.add_vertex(VLabel(label));
            }
            Some("e") => {
                let b = current.as_mut().ok_or(ParseError::NoCurrentGraph(lineno))?;
                let u: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::Malformed(lineno, line.to_owned()))?;
                let v: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::Malformed(lineno, line.to_owned()))?;
                let label: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError::Malformed(lineno, line.to_owned()))?;
                b.add_edge(VertexId(u), VertexId(v), ELabel(label))
                    .map_err(|e| ParseError::BadEdge(lineno, e.to_string()))?;
            }
            _ => return Err(ParseError::Malformed(lineno, line.to_owned())),
        }
    }
    if let Some(b) = current.take() {
        out.push(b.build());
    }
    Ok(out)
}

/// Serialize graphs to the transaction format.
pub fn write_graphs(graphs: &[Graph]) -> String {
    let mut s = String::new();
    for (i, g) in graphs.iter().enumerate() {
        writeln!(s, "t # {i}").unwrap();
        for v in g.vertices() {
            writeln!(s, "v {} {}", v.0, g.vlabel(v).0).unwrap();
        }
        for e in g.edges() {
            writeln!(s, "e {} {} {}", e.u.0, e.v.0, e.label.0).unwrap();
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from;

    #[test]
    fn round_trip() {
        let gs = vec![
            graph_from(&[1, 2, 3], &[(0, 1, 5), (1, 2, 6)]),
            graph_from(&[7], &[]),
            graph_from(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 0, 0)]),
        ];
        let text = write_graphs(&gs);
        let back = parse_graphs(&text).unwrap();
        assert_eq!(gs, back);
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let text = "# header\n\nt # 0\nv 0 3\n\n# mid\nv 1 4\ne 0 1 9\n";
        let gs = parse_graphs(text).unwrap();
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0].vertex_count(), 2);
        assert_eq!(gs[0].edge_count(), 1);
    }

    #[test]
    fn parse_rejects_orphan_vertex_line() {
        assert_eq!(parse_graphs("v 0 1\n"), Err(ParseError::NoCurrentGraph(1)));
    }

    #[test]
    fn parse_rejects_bad_edge() {
        let r = parse_graphs("t # 0\nv 0 1\ne 0 5 0\n");
        assert!(matches!(r, Err(ParseError::BadEdge(3, _))));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            parse_graphs("t # 0\nx y z\n"),
            Err(ParseError::Malformed(2, _))
        ));
    }

    #[test]
    fn interner_round_trips() {
        let mut i = LabelInterner::new();
        let c = i.intern("C");
        let o = i.intern("O");
        assert_eq!(i.intern("C"), c);
        assert_ne!(c, o);
        assert_eq!(i.name(c), Some("C"));
        assert_eq!(i.get("O"), Some(o));
        assert_eq!(i.get("N"), None);
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
    }
}
