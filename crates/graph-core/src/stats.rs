//! Database statistics: size, degree, label, and connectivity summaries.
//!
//! The paper characterizes its datasets by graph count, average size, seed
//! size and label count (§6); these helpers compute the same summaries for
//! any database so experiments can report what they actually ran on.

use crate::dist::{bfs_distances, UNREACHABLE};
use crate::graph::Graph;
use rustc_hash::FxHashMap;

/// Summary statistics of one graph database.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DbStats {
    /// Number of graphs.
    pub graphs: usize,
    /// Mean vertex count.
    pub mean_vertices: f64,
    /// Mean edge count.
    pub mean_edges: f64,
    /// Largest vertex count.
    pub max_vertices: usize,
    /// Largest edge count.
    pub max_edges: usize,
    /// Mean vertex degree.
    pub mean_degree: f64,
    /// Maximum vertex degree.
    pub max_degree: usize,
    /// Distinct vertex labels across the database.
    pub vertex_labels: usize,
    /// Distinct edge labels across the database.
    pub edge_labels: usize,
    /// Fraction of graphs that are trees (connected and acyclic).
    pub tree_fraction: f64,
    /// Fraction of graphs that are connected.
    pub connected_fraction: f64,
    /// Mean cyclomatic number (|E| − |V| + components), the "ring count".
    pub mean_cycles: f64,
}

/// Frequency of each vertex label, descending.
pub fn vertex_label_histogram(db: &[Graph]) -> Vec<(u32, usize)> {
    let mut counts: FxHashMap<u32, usize> = FxHashMap::default();
    for g in db {
        for v in g.vertices() {
            *counts.entry(g.vlabel(v).0).or_insert(0) += 1;
        }
    }
    let mut out: Vec<(u32, usize)> = counts.into_iter().collect();
    out.sort_by_key(|&(l, c)| (std::cmp::Reverse(c), l));
    out
}

/// Frequency of each edge label, descending.
pub fn edge_label_histogram(db: &[Graph]) -> Vec<(u32, usize)> {
    let mut counts: FxHashMap<u32, usize> = FxHashMap::default();
    for g in db {
        for e in g.edges() {
            *counts.entry(e.label.0).or_insert(0) += 1;
        }
    }
    let mut out: Vec<(u32, usize)> = counts.into_iter().collect();
    out.sort_by_key(|&(l, c)| (std::cmp::Reverse(c), l));
    out
}

/// Number of connected components of `g`.
pub fn component_count(g: &Graph) -> usize {
    let n = g.vertex_count();
    if n == 0 {
        return 0;
    }
    let mut seen = vec![false; n];
    let mut comps = 0;
    for v in g.vertices() {
        if seen[v.idx()] {
            continue;
        }
        comps += 1;
        let d = bfs_distances(g, v);
        for w in g.vertices() {
            if d[w.idx()] != UNREACHABLE {
                seen[w.idx()] = true;
            }
        }
    }
    comps
}

/// Compute database summary statistics.
pub fn db_stats(db: &[Graph]) -> DbStats {
    if db.is_empty() {
        return DbStats::default();
    }
    let mut s = DbStats {
        graphs: db.len(),
        ..DbStats::default()
    };
    let mut vlabels = FxHashMap::default();
    let mut elabels = FxHashMap::default();
    let (mut tv, mut te, mut tdeg, mut degs, mut trees, mut conn, mut cycles) =
        (0usize, 0usize, 0usize, 0usize, 0usize, 0usize, 0usize);
    for g in db {
        tv += g.vertex_count();
        te += g.edge_count();
        s.max_vertices = s.max_vertices.max(g.vertex_count());
        s.max_edges = s.max_edges.max(g.edge_count());
        for v in g.vertices() {
            let d = g.degree(v);
            tdeg += d;
            s.max_degree = s.max_degree.max(d);
            degs += 1;
            *vlabels.entry(g.vlabel(v).0).or_insert(0usize) += 1;
        }
        for e in g.edges() {
            *elabels.entry(e.label.0).or_insert(0usize) += 1;
        }
        let comps = component_count(g);
        if comps <= 1 {
            conn += 1;
        }
        if g.is_tree() {
            trees += 1;
        }
        cycles += g.edge_count() + comps - g.vertex_count();
    }
    s.mean_vertices = tv as f64 / db.len() as f64;
    s.mean_edges = te as f64 / db.len() as f64;
    s.mean_degree = if degs > 0 {
        tdeg as f64 / degs as f64
    } else {
        0.0
    };
    s.vertex_labels = vlabels.len();
    s.edge_labels = elabels.len();
    s.tree_fraction = trees as f64 / db.len() as f64;
    s.connected_fraction = conn as f64 / db.len() as f64;
    s.mean_cycles = cycles as f64 / db.len() as f64;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from;

    fn sample() -> Vec<Graph> {
        vec![
            // tree, 3 vertices
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 1)]),
            // triangle (one cycle)
            graph_from(&[0, 1, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 0)]),
            // disconnected forest
            graph_from(&[2, 2, 0, 0], &[(0, 1, 0), (2, 3, 0)]),
        ]
    }

    #[test]
    fn component_counting() {
        let db = sample();
        assert_eq!(component_count(&db[0]), 1);
        assert_eq!(component_count(&db[1]), 1);
        assert_eq!(component_count(&db[2]), 2);
        assert_eq!(component_count(&graph_from(&[], &[])), 0);
    }

    #[test]
    fn stats_values() {
        let s = db_stats(&sample());
        assert_eq!(s.graphs, 3);
        assert!((s.mean_vertices - 10.0 / 3.0).abs() < 1e-9);
        assert!((s.mean_edges - 7.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.max_vertices, 4);
        assert_eq!(s.max_edges, 3);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.vertex_labels, 3); // labels 0, 1, 2
        assert_eq!(s.edge_labels, 2); // labels 0, 1
        assert!((s.tree_fraction - 1.0 / 3.0).abs() < 1e-9);
        assert!((s.connected_fraction - 2.0 / 3.0).abs() < 1e-9);
        // cycles: 0 + 1 + 0
        assert!((s.mean_cycles - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_sorted_by_frequency() {
        let h = vertex_label_histogram(&sample());
        // label 0 appears 4 times, 1 appears 3, 2 appears 2... count:
        // g0: 0,0,1; g1: 0,1,1; g2: 2,2,0,0 → 0×5, 1×3, 2×2
        assert_eq!(h[0], (0, 5));
        assert_eq!(h[1], (1, 3));
        assert_eq!(h[2], (2, 2));
    }

    #[test]
    fn edge_histogram_sorted_by_frequency() {
        let h = edge_label_histogram(&sample());
        // g0: labels 0,1; g1: 0,0,0; g2: 0,0 → 0×6, 1×1
        assert_eq!(h, vec![(0, 6), (1, 1)]);
        assert!(edge_label_histogram(&[]).is_empty());
    }

    #[test]
    fn empty_db() {
        assert_eq!(db_stats(&[]), DbStats::default());
    }
}
