//! Edge-induced subgraph extraction and connected edge-subset enumeration.
//!
//! The paper partitions query graphs into non-edge-overlapping subgraphs
//! (Definition 5) and the gIndex baseline enumerates the connected subgraphs
//! of a query up to a size limit; both reduce to operations on *edge
//! subsets* of a host graph, implemented here.

use crate::graph::{EdgeId, Graph, GraphBuilder, VertexId};
use rand::Rng;
use rustc_hash::FxHashMap;
use std::ops::ControlFlow;

/// A subgraph extracted from a host graph, remembering where its vertices
/// and edges came from.
#[derive(Clone, Debug)]
pub struct ExtractedSubgraph {
    /// The subgraph itself, with dense fresh ids.
    pub graph: Graph,
    /// `vertex_map[i]` = host vertex id of subgraph vertex `i`.
    pub vertex_map: Vec<VertexId>,
    /// `edge_map[i]` = host edge id of subgraph edge `i`.
    pub edge_map: Vec<EdgeId>,
}

impl ExtractedSubgraph {
    /// Host vertex corresponding to subgraph vertex `v`.
    pub fn host_vertex(&self, v: VertexId) -> VertexId {
        self.vertex_map[v.idx()]
    }

    /// Host edge corresponding to subgraph edge `e`.
    pub fn host_edge(&self, e: EdgeId) -> EdgeId {
        self.edge_map[e.idx()]
    }
}

/// Build the edge-induced subgraph of `g` over `edges` (vertices are those
/// incident to the chosen edges). Edge order in the result follows `edges`.
pub fn edge_subgraph(g: &Graph, edges: &[EdgeId]) -> ExtractedSubgraph {
    let mut vmap: FxHashMap<VertexId, VertexId> = FxHashMap::default();
    let mut vertex_map = Vec::new();
    let mut b = GraphBuilder::with_capacity(edges.len() + 1, edges.len());
    let mut local = |host: VertexId, b: &mut GraphBuilder, vertex_map: &mut Vec<VertexId>| {
        *vmap.entry(host).or_insert_with(|| {
            let id = b.add_vertex(g.vlabel(host));
            vertex_map.push(host);
            id
        })
    };
    let mut edge_map = Vec::with_capacity(edges.len());
    for &eid in edges {
        let e = g.edge(eid);
        let lu = local(e.u, &mut b, &mut vertex_map);
        let lv = local(e.v, &mut b, &mut vertex_map);
        b.add_edge(lu, lv, e.label)
            .expect("host edges are simple, so extraction cannot create duplicates");
        edge_map.push(eid);
    }
    ExtractedSubgraph {
        graph: b.build(),
        vertex_map,
        edge_map,
    }
}

/// Split an edge set of `g` into connected components (by shared vertices).
pub fn edge_components(g: &Graph, edges: &[EdgeId]) -> Vec<Vec<EdgeId>> {
    if edges.is_empty() {
        return Vec::new();
    }
    // Union-find over the endpoints restricted to `edges`.
    let mut parent: FxHashMap<VertexId, VertexId> = FxHashMap::default();
    fn find(parent: &mut FxHashMap<VertexId, VertexId>, v: VertexId) -> VertexId {
        let p = *parent.entry(v).or_insert(v);
        if p == v {
            v
        } else {
            let r = find(parent, p);
            parent.insert(v, r);
            r
        }
    }
    for &eid in edges {
        let e = g.edge(eid);
        let ru = find(&mut parent, e.u);
        let rv = find(&mut parent, e.v);
        if ru != rv {
            parent.insert(ru, rv);
        }
    }
    let mut groups: FxHashMap<VertexId, Vec<EdgeId>> = FxHashMap::default();
    for &eid in edges {
        let r = find(&mut parent, g.edge(eid).u);
        groups.entry(r).or_default().push(eid);
    }
    let mut out: Vec<Vec<EdgeId>> = groups.into_values().collect();
    out.sort_by_key(|c| c[0]);
    out
}

/// Extract a random connected subgraph of `g` with exactly `m` edges by
/// randomized edge growth (the paper's query-set construction: "extract a
/// connected m edge subgraph from each graph randomly", §6.1).
///
/// Returns `None` if `g` has no connected subgraph with `m` edges reachable
/// from the sampled seed (e.g. the seed's component is too small).
pub fn random_connected_edge_subgraph<R: Rng>(
    g: &Graph,
    m: usize,
    rng: &mut R,
) -> Option<Vec<EdgeId>> {
    if m == 0 || g.edge_count() < m {
        return None;
    }
    let seed = EdgeId(rng.gen_range(0..g.edge_count() as u32));
    let mut chosen = vec![seed];
    let mut in_set = vec![false; g.edge_count()];
    in_set[seed.idx()] = true;
    let mut vertices = vec![g.edge(seed).u, g.edge(seed).v];

    while chosen.len() < m {
        // Frontier: edges incident to the current vertex set, not chosen.
        let mut frontier = Vec::new();
        for &v in &vertices {
            for &(_, eid) in g.neighbors(v) {
                if !in_set[eid.idx()] {
                    frontier.push(eid);
                }
            }
        }
        frontier.sort_unstable();
        frontier.dedup();
        if frontier.is_empty() {
            return None; // component exhausted before reaching m edges
        }
        let pick = frontier[rng.gen_range(0..frontier.len())];
        in_set[pick.idx()] = true;
        chosen.push(pick);
        let e = g.edge(pick);
        for w in [e.u, e.v] {
            if !vertices.contains(&w) {
                vertices.push(w);
            }
        }
    }
    Some(chosen)
}

/// Enumerate every connected edge subset of `g` with `1..=max_edges` edges,
/// each exactly once, invoking `f` with the subset (edges in discovery
/// order). Return `Break` from `f` to stop.
///
/// Uses the standard seed-and-forbid scheme: subsets are rooted at their
/// minimum edge id; extension edges below the seed are forbidden, and each
/// frontier edge is either taken or permanently excluded, so no subset is
/// produced twice.
pub fn for_each_connected_edge_subset<F>(g: &Graph, max_edges: usize, mut f: F) -> ControlFlow<()>
where
    F: FnMut(&[EdgeId]) -> ControlFlow<()>,
{
    if max_edges == 0 {
        return ControlFlow::Continue(());
    }
    let ecount = g.edge_count();
    let mut current: Vec<EdgeId> = Vec::with_capacity(max_edges);
    let mut in_set = vec![false; ecount];
    let mut excluded = vec![false; ecount];

    // Frontier edges adjacent to `current`, deduped, not in set/excluded,
    // id > seed.
    fn frontier_of(
        g: &Graph,
        current: &[EdgeId],
        seed: EdgeId,
        in_set: &[bool],
        excluded: &[bool],
    ) -> Vec<EdgeId> {
        let mut fr = Vec::new();
        for &eid in current {
            let e = g.edge(eid);
            for v in [e.u, e.v] {
                for &(_, ne) in g.neighbors(v) {
                    if ne > seed && !in_set[ne.idx()] && !excluded[ne.idx()] {
                        fr.push(ne);
                    }
                }
            }
        }
        fr.sort_unstable();
        fr.dedup();
        fr
    }

    #[allow(clippy::too_many_arguments)]
    fn recurse<F>(
        g: &Graph,
        seed: EdgeId,
        max_edges: usize,
        current: &mut Vec<EdgeId>,
        in_set: &mut Vec<bool>,
        excluded: &mut Vec<bool>,
        f: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&[EdgeId]) -> ControlFlow<()>,
    {
        f(current)?;
        if current.len() == max_edges {
            return ControlFlow::Continue(());
        }
        let fr = frontier_of(g, current, seed, in_set, excluded);
        // Binary branching over the frontier in order: each edge is either
        // excluded for the rest of this subtree or taken.
        fn branch<F>(
            g: &Graph,
            seed: EdgeId,
            max_edges: usize,
            fr: &[EdgeId],
            current: &mut Vec<EdgeId>,
            in_set: &mut Vec<bool>,
            excluded: &mut Vec<bool>,
            f: &mut F,
        ) -> ControlFlow<()>
        where
            F: FnMut(&[EdgeId]) -> ControlFlow<()>,
        {
            for (i, &e) in fr.iter().enumerate() {
                // Take e, with fr[..i] excluded.
                for &x in &fr[..i] {
                    excluded[x.idx()] = true;
                }
                in_set[e.idx()] = true;
                current.push(e);
                let r = recurse(g, seed, max_edges, current, in_set, excluded, f);
                current.pop();
                in_set[e.idx()] = false;
                for &x in &fr[..i] {
                    excluded[x.idx()] = false;
                }
                r?;
            }
            ControlFlow::Continue(())
        }
        branch(g, seed, max_edges, &fr, current, in_set, excluded, f)
    }

    for s in 0..ecount as u32 {
        let seed = EdgeId(s);
        current.push(seed);
        in_set[seed.idx()] = true;
        let r = recurse(
            g,
            seed,
            max_edges,
            &mut current,
            &mut in_set,
            &mut excluded,
            &mut f,
        );
        current.pop();
        in_set[seed.idx()] = false;
        r?;
    }
    ControlFlow::Continue(())
}

/// Enumerate connected **acyclic** edge subsets (subtrees) of `g` with
/// `1..=max_edges` edges, each exactly once.
///
/// Same scheme as [`for_each_connected_edge_subset`], but an extension edge
/// whose endpoints are both already spanned would close a cycle and is
/// skipped. §7.1 of the paper uses this to find the feature subtrees of a
/// deleted graph.
pub fn for_each_subtree_edge_subset<F>(g: &Graph, max_edges: usize, mut f: F) -> ControlFlow<()>
where
    F: FnMut(&[EdgeId]) -> ControlFlow<()>,
{
    // Reuse the generic enumerator, filtering cyclic subsets is wasteful;
    // instead track the spanned vertex set and only extend acyclically.
    if max_edges == 0 {
        return ControlFlow::Continue(());
    }
    let ecount = g.edge_count();
    let mut in_vertices = vec![false; g.vertex_count()];
    let mut in_set = vec![false; ecount];
    let mut excluded = vec![false; ecount];
    let mut current: Vec<EdgeId> = Vec::with_capacity(max_edges);

    #[allow(clippy::too_many_arguments)]
    fn recurse<F>(
        g: &Graph,
        seed: EdgeId,
        max_edges: usize,
        current: &mut Vec<EdgeId>,
        in_vertices: &mut Vec<bool>,
        in_set: &mut Vec<bool>,
        excluded: &mut Vec<bool>,
        f: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&[EdgeId]) -> ControlFlow<()>,
    {
        f(current)?;
        if current.len() == max_edges {
            return ControlFlow::Continue(());
        }
        // Acyclic frontier: edges with exactly one endpoint spanned.
        let mut fr = Vec::new();
        for &eid in current.iter() {
            let e = g.edge(eid);
            for v in [e.u, e.v] {
                for &(w, ne) in g.neighbors(v) {
                    if ne > seed
                        && !in_set[ne.idx()]
                        && !excluded[ne.idx()]
                        && !in_vertices[w.idx()]
                    {
                        fr.push(ne);
                    }
                }
            }
        }
        fr.sort_unstable();
        fr.dedup();
        for (i, &e) in fr.iter().enumerate() {
            for &x in &fr[..i] {
                excluded[x.idx()] = true;
            }
            let edge = g.edge(e);
            // One endpoint is new by construction; find it. (Both spanned
            // can happen if an earlier branch added the other endpoint —
            // then the edge closes a cycle, skip it.)
            let new_v = if !in_vertices[edge.u.idx()] {
                Some(edge.u)
            } else if !in_vertices[edge.v.idx()] {
                Some(edge.v)
            } else {
                None
            };
            if let Some(nv) = new_v {
                in_set[e.idx()] = true;
                in_vertices[nv.idx()] = true;
                current.push(e);
                let r = recurse(
                    g,
                    seed,
                    max_edges,
                    current,
                    in_vertices,
                    in_set,
                    excluded,
                    f,
                );
                current.pop();
                in_vertices[nv.idx()] = false;
                in_set[e.idx()] = false;
                for &x in &fr[..i] {
                    excluded[x.idx()] = false;
                }
                r?;
            } else {
                for &x in &fr[..i] {
                    excluded[x.idx()] = false;
                }
            }
        }
        ControlFlow::Continue(())
    }

    for s in 0..ecount as u32 {
        let seed = EdgeId(s);
        let e = g.edge(seed);
        current.push(seed);
        in_set[seed.idx()] = true;
        in_vertices[e.u.idx()] = true;
        in_vertices[e.v.idx()] = true;
        let r = recurse(
            g,
            seed,
            max_edges,
            &mut current,
            &mut in_vertices,
            &mut in_set,
            &mut excluded,
            &mut f,
        );
        current.pop();
        in_set[seed.idx()] = false;
        in_vertices[e.u.idx()] = false;
        in_vertices[e.v.idx()] = false;
        r?;
    }
    ControlFlow::Continue(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{graph_from, ELabel, VLabel};
    use rand::SeedableRng;

    fn triangle_plus_tail() -> Graph {
        // 0-1, 1-2, 2-0 (triangle), 2-3 (tail)
        graph_from(&[0, 1, 2, 3], &[(0, 1, 0), (1, 2, 1), (2, 0, 2), (2, 3, 3)])
    }

    #[test]
    fn extract_preserves_labels_and_maps() {
        let g = triangle_plus_tail();
        let s = edge_subgraph(&g, &[EdgeId(1), EdgeId(3)]);
        assert_eq!(s.graph.vertex_count(), 3);
        assert_eq!(s.graph.edge_count(), 2);
        // vertices 1, 2, 3 of host
        let hosts: Vec<u32> = s.vertex_map.iter().map(|v| v.0).collect();
        assert_eq!(hosts, vec![1, 2, 3]);
        assert_eq!(s.graph.vlabel(VertexId(0)), VLabel(1));
        assert_eq!(s.graph.edge(EdgeId(0)).label, ELabel(1));
        assert_eq!(s.host_edge(EdgeId(1)), EdgeId(3));
        assert_eq!(s.host_vertex(VertexId(2)), VertexId(3));
    }

    #[test]
    fn components_split_correctly() {
        let g = graph_from(&[0; 6], &[(0, 1, 0), (1, 2, 0), (3, 4, 0), (4, 5, 0)]);
        let comps = edge_components(&g, &[EdgeId(0), EdgeId(2), EdgeId(3)]);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![EdgeId(0)]);
        assert_eq!(comps[1], vec![EdgeId(2), EdgeId(3)]);
    }

    #[test]
    fn random_subgraph_is_connected_with_m_edges() {
        let g = triangle_plus_tail();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        for m in 1..=4 {
            let edges = random_connected_edge_subgraph(&g, m, &mut rng).unwrap();
            assert_eq!(edges.len(), m);
            let s = edge_subgraph(&g, &edges);
            assert!(s.graph.is_connected());
        }
        assert!(random_connected_edge_subgraph(&g, 5, &mut rng).is_none());
    }

    #[test]
    fn enumerate_counts_on_triangle() {
        let tri = graph_from(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 0, 0)]);
        let mut n = 0;
        let _ = for_each_connected_edge_subset(&tri, 3, |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        // connected edge subsets of a triangle: 3 single edges, 3 pairs,
        // 1 full triangle = 7
        assert_eq!(n, 7);
    }

    #[test]
    fn enumerate_respects_max() {
        let tri = graph_from(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 0, 0)]);
        let mut n = 0;
        let _ = for_each_connected_edge_subset(&tri, 1, |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn enumerate_no_duplicates() {
        let g = triangle_plus_tail();
        let mut seen = std::collections::HashSet::new();
        let _ = for_each_connected_edge_subset(&g, 4, |s| {
            let mut key: Vec<u32> = s.iter().map(|e| e.0).collect();
            key.sort_unstable();
            assert!(seen.insert(key), "duplicate subset {s:?}");
            // connectivity check
            assert_eq!(edge_components(&g, s).len(), 1);
            ControlFlow::Continue(())
        });
        // count: all connected edge subsets of the 4-edge graph
        // Exhaustive check: all 2^4-1 nonempty subsets, keep connected ones.
        let all: Vec<Vec<u32>> = (1u32..16)
            .map(|mask| (0..4).filter(|i| mask & (1 << i) != 0).collect())
            .filter(|s: &Vec<u32>| {
                let ids: Vec<EdgeId> = s.iter().map(|&i| EdgeId(i)).collect();
                edge_components(&g, &ids).len() == 1
            })
            .collect();
        assert_eq!(seen.len(), all.len());
    }

    #[test]
    fn subtree_enumeration_is_acyclic_and_complete() {
        let g = triangle_plus_tail();
        let mut seen = std::collections::HashSet::new();
        let _ = for_each_subtree_edge_subset(&g, 4, |s| {
            let mut key: Vec<u32> = s.iter().map(|e| e.0).collect();
            key.sort_unstable();
            assert!(seen.insert(key), "duplicate subtree {s:?}");
            let sub = edge_subgraph(&g, s);
            assert!(sub.graph.is_tree(), "subset {s:?} is not a tree");
            ControlFlow::Continue(())
        });
        // Compare against brute force: connected acyclic subsets.
        let mut brute = 0;
        let _ = for_each_connected_edge_subset(&g, 4, |s| {
            if edge_subgraph(&g, s).graph.is_tree() {
                brute += 1;
            }
            ControlFlow::Continue(())
        });
        assert_eq!(seen.len(), brute);
    }

    #[test]
    fn early_break_stops_enumeration() {
        let g = triangle_plus_tail();
        let mut n = 0;
        let r = for_each_connected_edge_subset(&g, 4, |_| {
            n += 1;
            if n == 3 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(r, ControlFlow::Break(()));
        assert_eq!(n, 3);
    }
}
