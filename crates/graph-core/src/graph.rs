//! Labeled undirected graph representation.
//!
//! Graphs are built with [`GraphBuilder`] and immutable afterwards, matching
//! the paper's setting where the database is preprocessed once and queried
//! many times. Vertices and edges are identified by dense `u32` ids; labels
//! are opaque `u32` values (see [`crate::io::LabelInterner`] for mapping
//! strings such as atom names onto them).

use smallvec::SmallVec;
use std::fmt;

/// Identifier of a vertex within one graph. Dense, starting at 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VertexId(pub u32);

/// Identifier of an edge within one graph. Dense, starting at 0, in
/// insertion order. Stable edge ids let the TreePi index store *edge*
/// center positions for bicentral feature trees.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeId(pub u32);

/// Vertex label (e.g. an atom type).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VLabel(pub u32);

/// Edge label (e.g. a bond type).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ELabel(pub u32);

impl VertexId {
    /// The id as a usize, for indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a usize, for indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// An undirected labeled edge. Endpoints are stored with `u <= v` never
/// enforced; use [`Edge::other`] to walk from a known endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Edge {
    /// One endpoint.
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
    /// The edge label.
    pub label: ELabel,
}

impl Edge {
    /// Given one endpoint, return the other.
    ///
    /// # Panics
    /// Panics if `w` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, w: VertexId) -> VertexId {
        if w == self.u {
            self.v
        } else {
            debug_assert_eq!(w, self.v, "vertex is not an endpoint of this edge");
            self.u
        }
    }

    /// Whether `w` is an endpoint.
    #[inline]
    pub fn touches(&self, w: VertexId) -> bool {
        w == self.u || w == self.v
    }
}

/// An immutable labeled undirected graph (Definition 1 of the paper).
///
/// Self-loops and parallel edges are rejected at build time: the paper's
/// datasets (chemical compounds, synthetic fragment compositions) are simple
/// graphs, and tree centers are only defined for simple structures.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    vlabels: Vec<VLabel>,
    edges: Vec<Edge>,
    /// adjacency: per vertex, (neighbor, edge id) pairs.
    adj: Vec<SmallVec<[(VertexId, EdgeId); 6]>>,
}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vlabels.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vlabels.len() as u32).map(VertexId)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Label of vertex `v`.
    #[inline]
    pub fn vlabel(&self, v: VertexId) -> VLabel {
        self.vlabels[v.idx()]
    }

    /// The edge with id `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e.idx()]
    }

    /// All edges in id order.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Neighbors of `v` as (neighbor, edge id) pairs.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        &self.adj[v.idx()]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.idx()].len()
    }

    /// The edge between `u` and `v`, if any.
    pub fn edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        let (small, target) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[small.idx()]
            .iter()
            .find(|(n, _)| *n == target)
            .map(|&(_, e)| e)
    }

    /// Whether the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.vertex_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![VertexId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(w, _) in self.neighbors(v) {
                if !seen[w.idx()] {
                    seen[w.idx()] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// Whether the graph is a free tree: connected with |E| = |V| - 1.
    pub fn is_tree(&self) -> bool {
        self.vertex_count() >= 1
            && self.edge_count() + 1 == self.vertex_count()
            && self.is_connected()
    }

    /// Multiset of vertex labels, as sorted vec (useful as a cheap
    /// containment pre-check: a pattern cannot embed if its label counts
    /// exceed the target's).
    pub fn vlabel_multiset(&self) -> Vec<VLabel> {
        let mut m = self.vlabels.clone();
        m.sort_unstable();
        m
    }

    /// Estimated heap bytes held by this graph: label, edge, and adjacency
    /// storage. Length-based (live elements, not reserved capacity), so the
    /// estimate is deterministic for a given graph regardless of build
    /// history; feeds the `mem.*` observability gauges.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.vlabels.len() * size_of::<VLabel>()
            + self.edges.len() * size_of::<Edge>()
            + self.adj.len() * size_of::<SmallVec<[(VertexId, EdgeId); 6]>>()
            + self
                .adj
                .iter()
                .map(|a| a.len() * size_of::<(VertexId, EdgeId)>())
                .sum::<usize>()
    }

    /// Multiset of `(min endpoint label, edge label, max endpoint label)`
    /// triples, sorted. Two isomorphic graphs have equal triple multisets.
    pub fn edge_triple_multiset(&self) -> Vec<(VLabel, ELabel, VLabel)> {
        let mut m: Vec<_> = self
            .edges
            .iter()
            .map(|e| {
                let a = self.vlabel(e.u);
                let b = self.vlabel(e.v);
                (a.min(b), e.label, a.max(b))
            })
            .collect();
        m.sort_unstable();
        m
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Graph(|V|={}, |E|={})",
            self.vertex_count(),
            self.edge_count()
        )?;
        for v in self.vertices() {
            writeln!(f, "  v {} {}", v.0, self.vlabel(v).0)?;
        }
        for e in &self.edges {
            writeln!(f, "  e {} {} {}", e.u.0, e.v.0, e.label.0)?;
        }
        Ok(())
    }
}

/// Errors raised while building a graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BuildError {
    /// An edge endpoint does not name an existing vertex.
    UnknownVertex(VertexId),
    /// Both endpoints of an edge are the same vertex.
    SelfLoop(VertexId),
    /// An edge between these endpoints already exists.
    ParallelEdge(VertexId, VertexId),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownVertex(v) => write!(f, "unknown vertex {}", v.0),
            BuildError::SelfLoop(v) => write!(f, "self loop at vertex {}", v.0),
            BuildError::ParallelEdge(u, v) => {
                write!(f, "parallel edge between {} and {}", u.0, v.0)
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental builder for [`Graph`].
#[derive(Clone, Default, Debug)]
pub struct GraphBuilder {
    vlabels: Vec<VLabel>,
    edges: Vec<Edge>,
    adj: Vec<SmallVec<[(VertexId, EdgeId); 6]>>,
}

impl GraphBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder with vertex capacity reserved.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        Self {
            vlabels: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
            adj: Vec::with_capacity(vertices),
        }
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.vlabels.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add a vertex with the given label, returning its id.
    pub fn add_vertex(&mut self, label: VLabel) -> VertexId {
        let id = VertexId(self.vlabels.len() as u32);
        self.vlabels.push(label);
        self.adj.push(SmallVec::new());
        id
    }

    /// Add an undirected edge, returning its id.
    pub fn add_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        label: ELabel,
    ) -> Result<EdgeId, BuildError> {
        let n = self.vlabels.len() as u32;
        if u.0 >= n {
            return Err(BuildError::UnknownVertex(u));
        }
        if v.0 >= n {
            return Err(BuildError::UnknownVertex(v));
        }
        if u == v {
            return Err(BuildError::SelfLoop(u));
        }
        if self.adj[u.idx()].iter().any(|(w, _)| *w == v) {
            return Err(BuildError::ParallelEdge(u, v));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { u, v, label });
        self.adj[u.idx()].push((v, id));
        self.adj[v.idx()].push((u, id));
        Ok(id)
    }

    /// Label of an already-added vertex.
    pub fn vlabel(&self, v: VertexId) -> VLabel {
        self.vlabels[v.idx()]
    }

    /// Whether an edge between `u` and `v` already exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u.idx() < self.adj.len() && self.adj[u.idx()].iter().any(|(w, _)| *w == v)
    }

    /// Current degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.idx()].len()
    }

    /// Finish building.
    pub fn build(self) -> Graph {
        Graph {
            vlabels: self.vlabels,
            edges: self.edges,
            adj: self.adj,
        }
    }
}

/// Convenience constructor used pervasively in tests and examples: build a
/// graph from vertex labels and `(u, v, edge label)` triples.
///
/// # Panics
/// Panics on invalid edges (unknown endpoint, self loop, parallel edge).
pub fn graph_from(vlabels: &[u32], edges: &[(u32, u32, u32)]) -> Graph {
    let mut b = GraphBuilder::with_capacity(vlabels.len(), edges.len());
    for &l in vlabels {
        b.add_vertex(VLabel(l));
    }
    for &(u, v, l) in edges {
        b.add_edge(VertexId(u), VertexId(v), ELabel(l))
            .expect("invalid edge in graph_from");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_graph() {
        let g = graph_from(&[1, 2, 3], &[(0, 1, 10), (1, 2, 11)]);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.vlabel(VertexId(0)), VLabel(1));
        assert_eq!(g.edge(EdgeId(0)).label, ELabel(10));
        assert_eq!(g.degree(VertexId(1)), 2);
        assert!(g.is_connected());
        assert!(g.is_tree());
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new();
        let v = b.add_vertex(VLabel(0));
        assert_eq!(b.add_edge(v, v, ELabel(0)), Err(BuildError::SelfLoop(v)));
    }

    #[test]
    fn rejects_parallel_edge() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(VLabel(0));
        let v = b.add_vertex(VLabel(0));
        b.add_edge(u, v, ELabel(0)).unwrap();
        assert_eq!(
            b.add_edge(v, u, ELabel(1)),
            Err(BuildError::ParallelEdge(v, u))
        );
    }

    #[test]
    fn rejects_unknown_vertex() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(VLabel(0));
        assert_eq!(
            b.add_edge(u, VertexId(7), ELabel(0)),
            Err(BuildError::UnknownVertex(VertexId(7)))
        );
    }

    #[test]
    fn edge_between_finds_edges() {
        let g = graph_from(&[0, 0, 0], &[(0, 1, 5), (1, 2, 6)]);
        assert_eq!(g.edge_between(VertexId(0), VertexId(1)), Some(EdgeId(0)));
        assert_eq!(g.edge_between(VertexId(1), VertexId(0)), Some(EdgeId(0)));
        assert_eq!(g.edge_between(VertexId(0), VertexId(2)), None);
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = graph_from(&[0, 0, 0, 0], &[(0, 1, 0), (2, 3, 0)]);
        assert!(!g.is_connected());
        assert!(!g.is_tree());
    }

    #[test]
    fn cycle_is_not_tree() {
        let g = graph_from(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 0, 0)]);
        assert!(g.is_connected());
        assert!(!g.is_tree());
    }

    #[test]
    fn single_vertex_is_tree() {
        let g = graph_from(&[3], &[]);
        assert!(g.is_tree());
        assert!(g.is_connected());
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = graph_from(&[], &[]);
        assert!(g.is_connected());
        // but not a tree: a tree needs at least one vertex
        assert!(!g.is_tree());
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge {
            u: VertexId(3),
            v: VertexId(5),
            label: ELabel(0),
        };
        assert_eq!(e.other(VertexId(3)), VertexId(5));
        assert_eq!(e.other(VertexId(5)), VertexId(3));
        assert!(e.touches(VertexId(3)));
        assert!(!e.touches(VertexId(4)));
    }

    #[test]
    fn label_multisets() {
        let g = graph_from(&[2, 1, 2], &[(0, 1, 9), (1, 2, 4)]);
        assert_eq!(g.vlabel_multiset(), vec![VLabel(1), VLabel(2), VLabel(2)]);
        assert_eq!(
            g.edge_triple_multiset(),
            vec![
                (VLabel(1), ELabel(4), VLabel(2)),
                (VLabel(1), ELabel(9), VLabel(2))
            ]
        );
    }
}
