//! Unweighted shortest-path distances.
//!
//! Center Distance Constraint pruning (paper §5.2.2) needs distances between
//! feature-tree centers inside candidate graphs. Distances here are hop
//! counts from breadth-first search; [`DistanceOracle`] caches one BFS per
//! source vertex so repeated pruning checks against the same graph stay
//! cheap.

use crate::graph::{Graph, VertexId};
use rustc_hash::FxHashMap;

/// Distance value for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances from `src` to every vertex (hops; [`UNREACHABLE`] if
/// disconnected).
pub fn bfs_distances(g: &Graph, src: VertexId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.vertex_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[src.idx()] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.idx()];
        for &(w, _) in g.neighbors(v) {
            if dist[w.idx()] == UNREACHABLE {
                dist[w.idx()] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// [`bfs_distances`] with the traversal tallied on `shard` as `graph.bfs`.
pub fn bfs_distances_obs(g: &Graph, src: VertexId, shard: &obs::Shard) -> Vec<u32> {
    shard.add("graph.bfs", 1);
    bfs_distances(g, src)
}

/// Shortest-path distance between two vertices, or [`UNREACHABLE`].
pub fn distance(g: &Graph, a: VertexId, b: VertexId) -> u32 {
    if a == b {
        return 0;
    }
    // Early-exit BFS from a.
    let mut dist = vec![UNREACHABLE; g.vertex_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[a.idx()] = 0;
    queue.push_back(a);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.idx()];
        for &(w, _) in g.neighbors(v) {
            if dist[w.idx()] == UNREACHABLE {
                if w == b {
                    return dv + 1;
                }
                dist[w.idx()] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    UNREACHABLE
}

/// Eccentricity of `v`: max distance to any reachable vertex.
pub fn eccentricity(g: &Graph, v: VertexId) -> u32 {
    bfs_distances(g, v)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Caches BFS rows per source vertex for one graph.
///
/// The pruning stage probes many (source, target) pairs against the same
/// candidate graph; each distinct source costs one BFS, after which lookups
/// are O(1).
pub struct DistanceOracle<'g> {
    g: &'g Graph,
    rows: FxHashMap<VertexId, Vec<u32>>,
    bfs_runs: u64,
}

impl<'g> DistanceOracle<'g> {
    /// New oracle over `g`.
    pub fn new(g: &'g Graph) -> Self {
        Self {
            g,
            rows: FxHashMap::default(),
            bfs_runs: 0,
        }
    }

    /// Distance from `a` to `b` (hops), computing and caching the BFS row
    /// for `a` on first use.
    pub fn dist(&mut self, a: VertexId, b: VertexId) -> u32 {
        if a == b {
            return 0;
        }
        // Reuse the row for `b` if we already have it (symmetry).
        if let Some(row) = self.rows.get(&b) {
            return row[a.idx()];
        }
        if !self.rows.contains_key(&a) {
            self.bfs_runs += 1;
            self.rows.insert(a, bfs_distances(self.g, a));
        }
        self.rows[&a][b.idx()]
    }

    /// Number of cached BFS rows (for tests / diagnostics).
    pub fn cached_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of BFS traversals this oracle has paid for — the work metric
    /// the `graph.bfs` counter reports. Equals [`Self::cached_rows`] today,
    /// but counts *traversals*, so it stays correct if rows are ever evicted.
    pub fn bfs_runs(&self) -> u64 {
        self.bfs_runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from;

    fn path5() -> Graph {
        // 0 - 1 - 2 - 3 - 4
        graph_from(&[0; 5], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 4, 0)])
    }

    #[test]
    fn bfs_on_path() {
        let g = path5();
        assert_eq!(bfs_distances(&g, VertexId(0)), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, VertexId(2)), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn pairwise_distance() {
        let g = path5();
        assert_eq!(distance(&g, VertexId(0), VertexId(4)), 4);
        assert_eq!(distance(&g, VertexId(4), VertexId(0)), 4);
        assert_eq!(distance(&g, VertexId(2), VertexId(2)), 0);
    }

    #[test]
    fn unreachable_distance() {
        let g = graph_from(&[0, 0, 0], &[(0, 1, 0)]);
        assert_eq!(distance(&g, VertexId(0), VertexId(2)), UNREACHABLE);
        let d = bfs_distances(&g, VertexId(2));
        assert_eq!(d, vec![UNREACHABLE, UNREACHABLE, 0]);
    }

    #[test]
    fn eccentricity_of_path() {
        let g = path5();
        assert_eq!(eccentricity(&g, VertexId(0)), 4);
        assert_eq!(eccentricity(&g, VertexId(2)), 2);
    }

    #[test]
    fn cycle_distances() {
        let g = graph_from(
            &[0; 6],
            &[
                (0, 1, 0),
                (1, 2, 0),
                (2, 3, 0),
                (3, 4, 0),
                (4, 5, 0),
                (5, 0, 0),
            ],
        );
        assert_eq!(distance(&g, VertexId(0), VertexId(3)), 3);
        assert_eq!(distance(&g, VertexId(0), VertexId(5)), 1);
    }

    #[test]
    fn oracle_caches_and_is_symmetric() {
        let g = path5();
        let mut o = DistanceOracle::new(&g);
        assert_eq!(o.dist(VertexId(0), VertexId(3)), 3);
        assert_eq!(o.cached_rows(), 1);
        // symmetric lookup should reuse the cached row for 0
        assert_eq!(o.dist(VertexId(3), VertexId(0)), 3);
        assert_eq!(o.cached_rows(), 1);
        assert_eq!(o.dist(VertexId(1), VertexId(4)), 3);
        assert_eq!(o.cached_rows(), 2);
        assert_eq!(o.dist(VertexId(2), VertexId(2)), 0);
        assert_eq!(o.bfs_runs(), 2);
    }
}
