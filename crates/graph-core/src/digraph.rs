//! Directed labeled graphs and their reduction to the undirected engine
//! (paper §7.2: "it is easy to extend our method to directed labeled
//! graphs").
//!
//! The paper sketches adapting the miner and canonical forms to carry edge
//! directions; we implement the equivalent (and provably correct)
//! **subdivision encoding** instead: every directed edge `u →ℓ v` becomes a
//! midpoint vertex `m` with two undirected edges `u —(2ℓ)— m —(2ℓ+1)— v`.
//! Midpoint vertices live in a reserved label range, so
//!
//! * the encoding is isomorphism-invariant (no dependence on vertex ids),
//! * directed (sub)graph isomorphism holds between two digraphs **iff**
//!   undirected (sub)graph isomorphism holds between their encodings, and
//! * the whole TreePi pipeline — mining, centers, partitions, pruning,
//!   reconstruction — applies unchanged, exactly as §7.2 claims for the
//!   query-processing phase.

use crate::graph::{ELabel, Graph, GraphBuilder, VLabel, VertexId};
use crate::iso::for_each_embedding;
use std::ops::ControlFlow;

/// Reserved vertex-label base for edge midpoints in the encoding. Real
/// vertex labels must stay below this value.
pub const MIDPOINT_LABEL_BASE: u32 = 0x4000_0000;

/// A directed edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Arc {
    /// Source vertex.
    pub from: VertexId,
    /// Target vertex.
    pub to: VertexId,
    /// Arc label.
    pub label: ELabel,
}

/// A directed labeled graph (multi-arcs and 2-cycles allowed; self loops
/// rejected).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DiGraph {
    vlabels: Vec<VLabel>,
    arcs: Vec<Arc>,
}

impl DiGraph {
    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vlabels.len()
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Vertex label.
    pub fn vlabel(&self, v: VertexId) -> VLabel {
        self.vlabels[v.idx()]
    }

    /// All arcs.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Iterator over vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vlabels.len() as u32).map(VertexId)
    }

    /// Out-neighbors of `v` as (target, label) pairs.
    pub fn out_neighbors(&self, v: VertexId) -> Vec<(VertexId, ELabel)> {
        self.arcs
            .iter()
            .filter(|a| a.from == v)
            .map(|a| (a.to, a.label))
            .collect()
    }

    /// Encode as an undirected graph by subdividing every arc.
    ///
    /// Vertices keep their ids; arc `i` becomes midpoint vertex
    /// `n + i` labeled `MIDPOINT_LABEL_BASE + label`, connected by an
    /// out-side edge labeled `2·label` and an in-side edge labeled
    /// `2·label + 1`.
    pub fn encode(&self) -> Graph {
        let n = self.vertex_count();
        let mut b = GraphBuilder::with_capacity(n + self.arcs.len(), 2 * self.arcs.len());
        for &l in &self.vlabels {
            debug_assert!(
                l.0 < MIDPOINT_LABEL_BASE,
                "vertex label collides with midpoint range"
            );
            b.add_vertex(l);
        }
        for a in &self.arcs {
            let m = b.add_vertex(VLabel(MIDPOINT_LABEL_BASE + a.label.0));
            b.add_edge(a.from, m, ELabel(2 * a.label.0))
                .expect("fresh midpoint edges are simple");
            b.add_edge(m, a.to, ELabel(2 * a.label.0 + 1))
                .expect("fresh midpoint edges are simple");
        }
        b.build()
    }
}

/// Errors raised while building a digraph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiBuildError {
    /// An arc endpoint does not exist.
    UnknownVertex(VertexId),
    /// A self loop was requested.
    SelfLoop(VertexId),
    /// A parallel arc (same source, target, label) already exists.
    DuplicateArc,
    /// A vertex label fell into the reserved midpoint range.
    ReservedLabel(u32),
}

/// Builder for [`DiGraph`].
#[derive(Clone, Default, Debug)]
pub struct DiGraphBuilder {
    vlabels: Vec<VLabel>,
    arcs: Vec<Arc>,
}

impl DiGraphBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a vertex.
    pub fn add_vertex(&mut self, label: VLabel) -> Result<VertexId, DiBuildError> {
        if label.0 >= MIDPOINT_LABEL_BASE {
            return Err(DiBuildError::ReservedLabel(label.0));
        }
        let id = VertexId(self.vlabels.len() as u32);
        self.vlabels.push(label);
        Ok(id)
    }

    /// Add a directed arc.
    pub fn add_arc(
        &mut self,
        from: VertexId,
        to: VertexId,
        label: ELabel,
    ) -> Result<(), DiBuildError> {
        let n = self.vlabels.len() as u32;
        if from.0 >= n {
            return Err(DiBuildError::UnknownVertex(from));
        }
        if to.0 >= n {
            return Err(DiBuildError::UnknownVertex(to));
        }
        if from == to {
            return Err(DiBuildError::SelfLoop(from));
        }
        let arc = Arc { from, to, label };
        if self.arcs.contains(&arc) {
            return Err(DiBuildError::DuplicateArc);
        }
        self.arcs.push(arc);
        Ok(())
    }

    /// Finish building.
    pub fn build(self) -> DiGraph {
        DiGraph {
            vlabels: self.vlabels,
            arcs: self.arcs,
        }
    }
}

/// Convenience constructor: vertex labels plus `(from, to, label)` arcs.
///
/// # Panics
/// Panics on invalid input.
pub fn digraph_from(vlabels: &[u32], arcs: &[(u32, u32, u32)]) -> DiGraph {
    let mut b = DiGraphBuilder::new();
    for &l in vlabels {
        b.add_vertex(VLabel(l)).expect("digraph_from: bad label");
    }
    for &(u, v, l) in arcs {
        b.add_arc(VertexId(u), VertexId(v), ELabel(l))
            .expect("digraph_from: bad arc");
    }
    b.build()
}

/// Directed subgraph isomorphism (oracle used in tests and by the wrapper's
/// documentation of correctness): does `p` embed in `g` preserving vertex
/// labels, arc directions, and arc labels?
pub fn is_sub_digraph_isomorphic(p: &DiGraph, g: &DiGraph) -> bool {
    // Reduction: p ⊆ g as digraphs iff encode(p) ⊆ encode(g) undirected.
    // (Midpoint vertices can only map to midpoint vertices — the labels are
    // disjoint — and the 2ℓ/2ℓ+1 edge labels force the orientation.)
    let ep = p.encode();
    let eg = g.encode();
    let mut found = false;
    let _ = for_each_embedding(&ep, &eg, |_| {
        found = true;
        ControlFlow::Break(())
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_shapes() {
        let d = digraph_from(&[1, 2], &[(0, 1, 5)]);
        let e = d.encode();
        assert_eq!(e.vertex_count(), 3);
        assert_eq!(e.edge_count(), 2);
        assert_eq!(e.vlabel(VertexId(2)).0, MIDPOINT_LABEL_BASE + 5);
    }

    #[test]
    fn direction_matters() {
        let fwd = digraph_from(&[1, 2], &[(0, 1, 0)]);
        let bwd = digraph_from(&[1, 2], &[(1, 0, 0)]);
        assert!(is_sub_digraph_isomorphic(&fwd, &fwd));
        assert!(!is_sub_digraph_isomorphic(&fwd, &bwd));
        assert!(!is_sub_digraph_isomorphic(&bwd, &fwd));
    }

    #[test]
    fn two_cycle_supported() {
        // u ⇄ v is representable (two arcs) and contains both single arcs.
        let cyc = digraph_from(&[1, 1], &[(0, 1, 0), (1, 0, 0)]);
        let one = digraph_from(&[1, 1], &[(0, 1, 0)]);
        assert!(is_sub_digraph_isomorphic(&one, &cyc));
        assert!(!is_sub_digraph_isomorphic(&cyc, &one));
    }

    #[test]
    fn chain_containment() {
        let chain3 = digraph_from(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0)]);
        let chain2 = digraph_from(&[0, 0], &[(0, 1, 0)]);
        // anti-chain: arcs point inward — not a directed 2-chain host
        let inward = digraph_from(&[0, 0, 0], &[(0, 1, 0), (2, 1, 0)]);
        assert!(is_sub_digraph_isomorphic(&chain2, &chain3));
        assert!(is_sub_digraph_isomorphic(&chain2, &inward));
        assert!(!is_sub_digraph_isomorphic(&chain3, &inward));
    }

    #[test]
    fn builder_rejects_bad_input() {
        let mut b = DiGraphBuilder::new();
        assert!(matches!(
            b.add_vertex(VLabel(MIDPOINT_LABEL_BASE)),
            Err(DiBuildError::ReservedLabel(_))
        ));
        let u = b.add_vertex(VLabel(0)).unwrap();
        let v = b.add_vertex(VLabel(0)).unwrap();
        assert_eq!(b.add_arc(u, u, ELabel(0)), Err(DiBuildError::SelfLoop(u)));
        b.add_arc(u, v, ELabel(0)).unwrap();
        assert_eq!(b.add_arc(u, v, ELabel(0)), Err(DiBuildError::DuplicateArc));
        // opposite direction is a different arc
        assert!(b.add_arc(v, u, ELabel(0)).is_ok());
        assert_eq!(
            b.add_arc(u, VertexId(9), ELabel(0)),
            Err(DiBuildError::UnknownVertex(VertexId(9)))
        );
    }

    #[test]
    fn out_neighbors() {
        let d = digraph_from(&[0, 1, 2], &[(0, 1, 5), (0, 2, 6), (2, 0, 7)]);
        let outs = d.out_neighbors(VertexId(0));
        assert_eq!(outs.len(), 2);
        assert!(outs.contains(&(VertexId(1), ELabel(5))));
        assert!(outs.contains(&(VertexId(2), ELabel(6))));
        assert_eq!(d.out_neighbors(VertexId(1)).len(), 0);
    }
}
