//! Subgraph isomorphism (VF2-style backtracking) for labeled graphs.
//!
//! This is both a substrate (the paper's Definition 2/3 operations, used by
//! mining, the gIndex baseline's naive verification, and the brute-force
//! oracle in tests) and the inner loop of TreePi's rooted feature-tree
//! retrieval, via [`for_each_embedding_rooted`].
//!
//! Semantics follow Definition 3: a pattern `p` is subgraph isomorphic to a
//! target `g` if an injective vertex mapping exists that preserves vertex
//! labels and maps every pattern edge onto a target edge with an equal label.
//! The match is **not** induced — extra target edges between mapped vertices
//! are allowed — which is the standard containment-query semantics.

use crate::graph::{Graph, VertexId};
use std::ops::ControlFlow;

/// A pattern-to-target vertex mapping: `embedding[i]` is the image of
/// pattern vertex `i`.
pub type Embedding = Vec<VertexId>;

/// Search order for pattern vertices: each vertex after the first within a
/// connected component has at least one earlier neighbor ("anchor"), so
/// candidate images can be drawn from the anchor image's adjacency list
/// instead of the whole target.
struct MatchPlan {
    /// Pattern vertices in match order.
    order: Vec<VertexId>,
    /// For order position k (k > 0 within a component): Some(position of an
    /// earlier neighbor in `order`). None for component roots.
    anchor: Vec<Option<usize>>,
}

fn make_plan(p: &Graph, root: Option<VertexId>) -> MatchPlan {
    let n = p.vertex_count();
    let mut order = Vec::with_capacity(n);
    let mut anchor = Vec::with_capacity(n);
    let mut pos = vec![usize::MAX; n]; // position of pattern vertex in order
    let mut visited = vec![false; n];

    let mut roots: Vec<VertexId> = Vec::new();
    if let Some(r) = root {
        roots.push(r);
    }
    // Prefer high-degree start vertices: they constrain the search fastest.
    let mut rest: Vec<VertexId> = p.vertices().collect();
    rest.sort_by_key(|&v| std::cmp::Reverse(p.degree(v)));
    roots.extend(rest);

    for r in roots {
        if visited[r.idx()] {
            continue;
        }
        visited[r.idx()] = true;
        pos[r.idx()] = order.len();
        order.push(r);
        anchor.push(None);
        // BFS from r so every later vertex has an earlier neighbor.
        let mut qi = order.len() - 1;
        while qi < order.len() {
            let v = order[qi];
            // Visit neighbors in descending degree for better pruning.
            let mut nbrs: Vec<VertexId> = p.neighbors(v).iter().map(|&(w, _)| w).collect();
            nbrs.sort_by_key(|&w| std::cmp::Reverse(p.degree(w)));
            for w in nbrs {
                if !visited[w.idx()] {
                    visited[w.idx()] = true;
                    pos[w.idx()] = order.len();
                    order.push(w);
                    anchor.push(Some(pos[v.idx()]));
                }
            }
            qi += 1;
        }
    }
    MatchPlan { order, anchor }
}

struct SearchState<'a, F> {
    p: &'a Graph,
    g: &'a Graph,
    plan: &'a MatchPlan,
    /// image[pattern vertex] = target vertex (or u32::MAX sentinel)
    image: Vec<VertexId>,
    used: Vec<bool>,
    on_match: F,
    /// pinned[pattern vertex] = required target vertex, or UNMAPPED.
    pinned: Vec<VertexId>,
}

const UNMAPPED: VertexId = VertexId(u32::MAX);

impl<F> SearchState<'_, F>
where
    F: FnMut(&[VertexId]) -> ControlFlow<()>,
{
    fn feasible(&self, pv: VertexId, gv: VertexId) -> bool {
        if self.used[gv.idx()] {
            return false;
        }
        let pin = self.pinned[pv.idx()];
        if pin != UNMAPPED && pin != gv {
            return false;
        }
        if self.p.vlabel(pv) != self.g.vlabel(gv) {
            return false;
        }
        if self.p.degree(pv) > self.g.degree(gv) {
            return false;
        }
        // Every already-mapped pattern neighbor must be a target neighbor
        // with an equal edge label.
        for &(pw, pe) in self.p.neighbors(pv) {
            let gw = self.image[pw.idx()];
            if gw == UNMAPPED {
                continue;
            }
            match self.g.edge_between(gv, gw) {
                Some(ge) if self.g.edge(ge).label == self.p.edge(pe).label => {}
                _ => return false,
            }
        }
        true
    }

    fn assign_and_recurse(&mut self, k: usize, pv: VertexId, gv: VertexId) -> ControlFlow<()> {
        self.image[pv.idx()] = gv;
        self.used[gv.idx()] = true;
        let r = self.search(k + 1);
        self.used[gv.idx()] = false;
        self.image[pv.idx()] = UNMAPPED;
        r
    }

    fn search(&mut self, k: usize) -> ControlFlow<()> {
        if k == self.plan.order.len() {
            return (self.on_match)(&self.image);
        }
        let pv = self.plan.order[k];
        match self.plan.anchor[k] {
            Some(apos) => {
                let anchor_img = self.image[self.plan.order[apos].idx()];
                // Candidates: neighbors of the anchor's image.
                for i in 0..self.g.neighbors(anchor_img).len() {
                    let (gv, _) = self.g.neighbors(anchor_img)[i];
                    if self.feasible(pv, gv) {
                        self.assign_and_recurse(k, pv, gv)?;
                    }
                }
            }
            None => {
                for gv in self.g.vertices() {
                    if self.feasible(pv, gv) {
                        self.assign_and_recurse(k, pv, gv)?;
                    }
                }
            }
        }
        ControlFlow::Continue(())
    }
}

/// Enumerate embeddings of `p` into `g`, invoking `f` for each. Return
/// `ControlFlow::Break(())` from `f` to stop early.
pub fn for_each_embedding<F>(p: &Graph, g: &Graph, f: F) -> ControlFlow<()>
where
    F: FnMut(&[VertexId]) -> ControlFlow<()>,
{
    if p.vertex_count() == 0 {
        return ControlFlow::Continue(());
    }
    if p.vertex_count() > g.vertex_count() || p.edge_count() > g.edge_count() {
        return ControlFlow::Continue(());
    }
    let plan = make_plan(p, None);
    let mut st = SearchState {
        p,
        g,
        plan: &plan,
        image: vec![UNMAPPED; p.vertex_count()],
        used: vec![false; g.vertex_count()],
        on_match: f,
        pinned: vec![UNMAPPED; p.vertex_count()],
    };
    st.search(0)
}

/// Enumerate embeddings of `p` into `g` with pattern vertex `proot` pinned
/// to target vertex `groot`. This is the "depth first search … rooted in the
/// stored center vertices" retrieval of paper §5.3.2.
pub fn for_each_embedding_rooted<F>(
    p: &Graph,
    g: &Graph,
    proot: VertexId,
    groot: VertexId,
    f: F,
) -> ControlFlow<()>
where
    F: FnMut(&[VertexId]) -> ControlFlow<()>,
{
    for_each_embedding_pinned(p, g, &[(proot, groot)], f)
}

/// Enumerate embeddings of `p` into `g` with each `(pattern, target)` pair
/// in `pins` fixed. Bicentral feature trees pin both endpoints of their
/// center edge onto a stored center edge of the host graph.
pub fn for_each_embedding_pinned<F>(
    p: &Graph,
    g: &Graph,
    pins: &[(VertexId, VertexId)],
    f: F,
) -> ControlFlow<()>
where
    F: FnMut(&[VertexId]) -> ControlFlow<()>,
{
    if p.vertex_count() == 0 {
        return ControlFlow::Continue(());
    }
    PreparedPattern::new(p, pins.first().map(|&(pv, _)| pv)).for_each_embedding_pinned(g, pins, f)
}

/// A pattern with its search order precomputed. Hot callers (TreePi's
/// verification probes the same feature tree against many candidate graphs
/// and many center positions) prepare once and reuse; the plan depends only
/// on the pattern and the root choice.
pub struct PreparedPattern<'p> {
    p: &'p Graph,
    plan: MatchPlan,
}

impl<'p> PreparedPattern<'p> {
    /// Prepare `p`, optionally forcing the search to start at `root` (the
    /// vertex that will be pinned).
    pub fn new(p: &'p Graph, root: Option<VertexId>) -> Self {
        Self {
            p,
            plan: make_plan(p, root),
        }
    }

    /// The pattern graph.
    pub fn pattern(&self) -> &Graph {
        self.p
    }

    /// Enumerate embeddings into `g` with the given pins. The first pin's
    /// pattern vertex must be the `root` this pattern was prepared with
    /// (or `None` root and no pins).
    pub fn for_each_embedding_pinned<F>(
        &self,
        g: &Graph,
        pins: &[(VertexId, VertexId)],
        f: F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&[VertexId]) -> ControlFlow<()>,
    {
        let p = self.p;
        if p.vertex_count() == 0 || p.vertex_count() > g.vertex_count() {
            return ControlFlow::Continue(());
        }
        debug_assert!(
            pins.first().map(|&(pv, _)| pv) == Some(self.plan.order[0]) || pins.is_empty(),
            "first pin must match the prepared root"
        );
        let mut pinned = vec![UNMAPPED; p.vertex_count()];
        for &(pv, gv) in pins {
            // Conflicting pins (same pattern vertex twice, or two pattern
            // vertices on one target vertex) can never be satisfied.
            if pinned[pv.idx()] != UNMAPPED && pinned[pv.idx()] != gv {
                return ControlFlow::Continue(());
            }
            pinned[pv.idx()] = gv;
        }
        {
            let mut images: Vec<VertexId> = pins.iter().map(|&(_, gv)| gv).collect();
            images.sort_unstable();
            images.dedup();
            let distinct_pins = pinned.iter().filter(|&&x| x != UNMAPPED).count();
            if images.len() != distinct_pins {
                return ControlFlow::Continue(());
            }
        }
        let mut st = SearchState {
            p,
            g,
            plan: &self.plan,
            image: vec![UNMAPPED; p.vertex_count()],
            used: vec![false; g.vertex_count()],
            on_match: f,
            pinned,
        };
        st.search(0)
    }
}

/// Whether `p` is subgraph isomorphic to `g` (Definition 3).
pub fn is_subgraph_isomorphic(p: &Graph, g: &Graph) -> bool {
    find_embedding(p, g).is_some()
}

/// [`is_subgraph_isomorphic`] with the test tallied on `shard` as
/// `graph.iso_tests` — the funnel's "full isomorphism checks paid" metric.
pub fn is_subgraph_isomorphic_obs(p: &Graph, g: &Graph, shard: &obs::Shard) -> bool {
    shard.add("graph.iso_tests", 1);
    is_subgraph_isomorphic(p, g)
}

/// One embedding of `p` into `g`, if any.
pub fn find_embedding(p: &Graph, g: &Graph) -> Option<Embedding> {
    let mut result = None;
    let _ = for_each_embedding(p, g, |m| {
        result = Some(m.to_vec());
        ControlFlow::Break(())
    });
    result
}

/// All embeddings of `p` into `g`, up to `cap` (None = unlimited).
pub fn all_embeddings(p: &Graph, g: &Graph, cap: Option<usize>) -> Vec<Embedding> {
    let mut out = Vec::new();
    let _ = for_each_embedding(p, g, |m| {
        out.push(m.to_vec());
        if cap.is_some_and(|c| out.len() >= c) {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    out
}

/// Whether `a` and `b` are isomorphic (Definition 2).
///
/// Equal vertex/edge counts plus any embedding of `a` into `b` implies a
/// bijection covering all edges of both (edge counts are equal), i.e. an
/// isomorphism.
pub fn is_isomorphic(a: &Graph, b: &Graph) -> bool {
    a.vertex_count() == b.vertex_count()
        && a.edge_count() == b.edge_count()
        && a.vlabel_multiset() == b.vlabel_multiset()
        && a.edge_triple_multiset() == b.edge_triple_multiset()
        && (a.vertex_count() == 0 || is_subgraph_isomorphic(a, b))
}

/// All automorphisms of `g` (as embeddings of `g` into itself), up to `cap`.
pub fn automorphisms(g: &Graph, cap: Option<usize>) -> Vec<Embedding> {
    all_embeddings(g, g, cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from;

    #[test]
    fn triangle_in_k4() {
        let tri = graph_from(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 0, 0)]);
        let k4 = graph_from(
            &[0, 0, 0, 0],
            &[
                (0, 1, 0),
                (0, 2, 0),
                (0, 3, 0),
                (1, 2, 0),
                (1, 3, 0),
                (2, 3, 0),
            ],
        );
        assert!(is_subgraph_isomorphic(&tri, &k4));
        assert!(!is_subgraph_isomorphic(&k4, &tri));
        // K4 has 4 choose 3 = 4 triangles, each with 3! = 6 automorphic maps.
        assert_eq!(all_embeddings(&tri, &k4, None).len(), 24);
    }

    #[test]
    fn labels_constrain_matching() {
        let p = graph_from(&[1, 2], &[(0, 1, 7)]);
        let g_ok = graph_from(&[2, 1, 3], &[(0, 1, 7), (1, 2, 5)]);
        let g_bad_elabel = graph_from(&[1, 2], &[(0, 1, 8)]);
        let g_bad_vlabel = graph_from(&[1, 3], &[(0, 1, 7)]);
        assert!(is_subgraph_isomorphic(&p, &g_ok));
        assert!(!is_subgraph_isomorphic(&p, &g_bad_elabel));
        assert!(!is_subgraph_isomorphic(&p, &g_bad_vlabel));
    }

    #[test]
    fn non_induced_semantics() {
        // Pattern path 0-1-2 embeds in a triangle even though the triangle
        // has the extra closing edge.
        let path = graph_from(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0)]);
        let tri = graph_from(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 0, 0)]);
        assert!(is_subgraph_isomorphic(&path, &tri));
    }

    #[test]
    fn injectivity_enforced() {
        // Star with two leaves of the same label needs two distinct images.
        let star = graph_from(&[0, 1, 1], &[(0, 1, 0), (0, 2, 0)]);
        let single = graph_from(&[0, 1], &[(0, 1, 0)]);
        assert!(!is_subgraph_isomorphic(&star, &single));
    }

    #[test]
    fn isomorphism_detects_equivalence() {
        // Same path labeled 1-2-3, built with different vertex orders.
        let a = graph_from(&[1, 2, 3], &[(0, 1, 0), (1, 2, 0)]);
        let b = graph_from(&[3, 2, 1], &[(0, 1, 0), (1, 2, 0)]);
        let c = graph_from(&[1, 3, 2], &[(0, 2, 0), (2, 1, 0)]);
        assert!(is_isomorphic(&a, &b));
        assert!(is_isomorphic(&a, &c));
        let d = graph_from(&[1, 2, 3], &[(0, 1, 0), (0, 2, 0)]); // star, not path
        assert!(!is_isomorphic(&a, &d));
    }

    #[test]
    fn rooted_embedding_pins_root() {
        // Pattern edge a-b; target path a-b-a (vertex labels 5,6,5).
        let p = graph_from(&[5, 6], &[(0, 1, 0)]);
        let g = graph_from(&[5, 6, 5], &[(0, 1, 0), (1, 2, 0)]);
        let mut images = Vec::new();
        let _ = for_each_embedding_rooted(&p, &g, VertexId(0), VertexId(2), |m| {
            images.push(m.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(images, vec![vec![VertexId(2), VertexId(1)]]);
        // Root with wrong label yields nothing.
        let mut n = 0;
        let _ = for_each_embedding_rooted(&p, &g, VertexId(0), VertexId(1), |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(n, 0);
    }

    #[test]
    fn automorphisms_of_labeled_path() {
        // Path 1-0-1 has exactly 2 automorphisms (identity and the flip).
        let g = graph_from(&[1, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
        assert_eq!(automorphisms(&g, None).len(), 2);
        // Path 1-0-2 is rigid.
        let g2 = graph_from(&[1, 0, 2], &[(0, 1, 0), (1, 2, 0)]);
        assert_eq!(automorphisms(&g2, None).len(), 1);
    }

    #[test]
    fn cap_limits_enumeration() {
        let tri = graph_from(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 0, 0)]);
        let k4 = graph_from(
            &[0, 0, 0, 0],
            &[
                (0, 1, 0),
                (0, 2, 0),
                (0, 3, 0),
                (1, 2, 0),
                (1, 3, 0),
                (2, 3, 0),
            ],
        );
        assert_eq!(all_embeddings(&tri, &k4, Some(5)).len(), 5);
    }

    #[test]
    fn empty_pattern_matches_nothing() {
        let g = graph_from(&[0], &[]);
        let empty = graph_from(&[], &[]);
        assert!(find_embedding(&empty, &g).is_none());
        assert!(is_isomorphic(&empty, &empty));
    }

    #[test]
    fn disconnected_pattern() {
        // Two isolated labeled vertices must map to two distinct vertices.
        let p = graph_from(&[4, 4], &[]);
        let g1 = graph_from(&[4], &[]);
        let g2 = graph_from(&[4, 4, 1], &[(0, 2, 0)]);
        assert!(!is_subgraph_isomorphic(&p, &g1));
        assert!(is_subgraph_isomorphic(&p, &g2));
    }

    #[test]
    fn embeddings_are_valid() {
        let p = graph_from(&[1, 2, 1], &[(0, 1, 3), (1, 2, 4)]);
        let g = graph_from(&[2, 1, 1, 2], &[(1, 0, 3), (0, 2, 4), (2, 3, 3), (3, 1, 4)]);
        for emb in all_embeddings(&p, &g, None) {
            // check labels and edges
            for pv in p.vertices() {
                assert_eq!(p.vlabel(pv), g.vlabel(emb[pv.idx()]));
            }
            for e in p.edges() {
                let ge = g
                    .edge_between(emb[e.u.idx()], emb[e.v.idx()])
                    .expect("pattern edge must be mapped");
                assert_eq!(g.edge(ge).label, e.label);
            }
        }
    }
}
