//! Shared scoped-thread parallelism primitives.
//!
//! Three small building blocks the pipeline crates share, all built on
//! `std::thread::scope` — borrowed inputs, no detached threads:
//!
//! - [`ordered_map`]/[`ordered_map_obs`]: run an independent function over
//!   every item of a slice and return results in item order (the query
//!   engine's primitive). Workers self-schedule off a shared atomic
//!   counter, so one slow item does not stall a statically assigned chunk.
//! - [`fork_join_obs`]: run one closure per worker rank with a forked
//!   [`obs::Shard`] each, joining results and merging shards in rank order
//!   (the parallel miner's primitive — the closure does its own
//!   self-scheduling over whatever work units it partitions).
//! - [`for_each_mut`]: run a mutation over every element of a mutable
//!   slice on statically chunked workers (parallel post-processing of
//!   per-pattern data).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve a `threads` argument: `0` means all available parallelism.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Apply `f` to every item on up to `threads` workers (`0` = available
/// parallelism); the output preserves item order. `f` must be independent
/// per item — nothing orders cross-item side effects.
pub fn ordered_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    ordered_map_obs(items, threads, &obs::Registry::disabled(), |item, _| {
        f(item)
    })
}

/// [`ordered_map`] with per-worker metric shards: `f` receives the item and
/// the worker's [`obs::Shard`]; shards merge into `registry` as each worker
/// finishes. The pool itself records `engine.workers`, per-item
/// `engine.items`, and an `engine.worker_wall` span per worker — all under
/// the `engine.` namespace because they describe execution shape, not work
/// done (see `obs::MetricSet::deterministic_counters`).
pub fn ordered_map_obs<T, R, F>(
    items: &[T],
    threads: usize,
    registry: &obs::Registry,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &obs::Shard) -> R + Sync,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 {
        let shard = registry.shard();
        shard.add("engine.workers", 1);
        shard.add("engine.items", items.len() as u64);
        let out = {
            let _wall = shard.span("engine.worker_wall");
            items.iter().map(|item| f(item, &shard)).collect()
        };
        registry.absorb(shard);
        return out;
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let next = &next;
            let slots = &slots;
            let f = &f;
            s.spawn(move || {
                let shard = registry.shard();
                let mut served = 0u64;
                {
                    let _wall = shard.span("engine.worker_wall");
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        *slots[i].lock().expect("slot") = Some(f(&items[i], &shard));
                        served += 1;
                    }
                }
                shard.add("engine.workers", 1);
                shard.add("engine.items", served);
                registry.absorb(shard);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot").expect("every item mapped"))
        .collect()
}

/// Run `f(rank, shard)` once per worker on `workers` scoped threads and
/// return the results in rank order. Each worker records into a
/// [`obs::Shard::fork`] of `shard`; forks are merged back in rank order
/// after the join, so counter totals are independent of scheduling. With
/// `workers <= 1` the closure runs inline on `shard` itself — the serial
/// path is the parallel path with one worker, not a separate code path.
///
/// `f` receives only its rank: work distribution (an atomic chunk counter,
/// a precomputed partition, …) is the caller's business.
pub fn fork_join_obs<R, F>(workers: usize, shard: &obs::Shard, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, &obs::Shard) -> R + Sync,
{
    if workers <= 1 {
        return vec![f(0, shard)];
    }
    let mut out = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|rank| {
                let worker = shard.fork();
                let f = &f;
                s.spawn(move || {
                    let r = f(rank, &worker);
                    (r, worker)
                })
            })
            .collect();
        for h in handles {
            let (r, worker) = h.join().expect("fork_join worker panicked");
            shard.merge(worker);
            out.push(r);
        }
    });
    out
}

/// Apply `f` to every element of `items` in place, on up to `threads`
/// statically chunked scoped workers (`0` = available parallelism). `f`
/// must be independent per element.
pub fn for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        for c in items.chunks_mut(chunk) {
            let f = &f;
            s.spawn(move || {
                for item in c {
                    f(item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let out = ordered_map(&items, threads, |&x| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(ordered_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(ordered_map(&[5u32], 4, |&x| x + 1), vec![6]);
    }

    #[test]
    fn borrows_environment() {
        let base = vec![10u32, 20, 30];
        let out = ordered_map(&[0usize, 1, 2], 2, |&i| base[i]);
        assert_eq!(out, base);
    }

    #[test]
    fn obs_variant_accounts_for_every_item() {
        let items: Vec<u64> = (0..50).collect();
        for threads in [1, 3, 8] {
            let registry = obs::Registry::new();
            let out = ordered_map_obs(&items, threads, &registry, |&x, shard| {
                shard.add("work.units", x);
                x
            });
            assert_eq!(out, items);
            let snap = registry.snapshot();
            assert_eq!(snap.counter("engine.items"), 50);
            assert_eq!(snap.counter("work.units"), (0..50).sum::<u64>());
            assert!(snap.counter("engine.workers") >= 1);
            assert!(snap.counter("engine.workers") <= threads as u64);
        }
    }

    #[test]
    fn zero_resolves_to_available() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(5), 5);
    }

    #[test]
    fn fork_join_returns_in_rank_order_and_merges_shards() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for workers in [1usize, 2, 5] {
            let shard = obs::Shard::detached(true);
            let next = AtomicUsize::new(0);
            let ranks = fork_join_obs(workers, &shard, |rank, w| {
                // Self-scheduled work units: each adds its index once.
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= 10 {
                        break;
                    }
                    w.add("work.sum", i as u64);
                }
                rank
            });
            assert_eq!(ranks, (0..workers).collect::<Vec<_>>());
            let set = shard.into_set();
            if obs::COMPILED_IN {
                assert_eq!(set.counter("work.sum"), (0..10).sum::<usize>() as u64);
            }
        }
    }

    #[test]
    fn for_each_mut_touches_every_element() {
        for threads in [1usize, 2, 4, 9] {
            let mut items: Vec<u64> = (0..37).collect();
            for_each_mut(&mut items, threads, |x| *x *= 3);
            assert_eq!(items, (0..37).map(|x| x * 3).collect::<Vec<_>>());
        }
        let mut empty: Vec<u64> = Vec::new();
        for_each_mut(&mut empty, 4, |_| unreachable!());
    }
}
