//! Shared parallelism primitives: a persistent worker [`Pool`] plus the
//! scoped-thread reference implementations it replaced.
//!
//! The pipeline crates dispatch through three entry points — available both
//! as methods on a long-lived [`Pool`] (the production path: worker threads
//! are spawned once and parked on a condvar between jobs) and as free
//! functions over `std::thread::scope` (the spawn-per-call reference the
//! equivalence suites and benches compare against):
//!
//! - [`ordered_map`]/[`ordered_map_obs`]: run an independent function over
//!   every item of a slice and return results in item order (the query
//!   engine's primitive). Workers self-schedule off a shared atomic
//!   counter, so one slow item does not stall a statically assigned chunk.
//! - [`fork_join_obs`]: run one closure per worker rank with a forked
//!   [`obs::Shard`] each, joining results and merging shards in rank order
//!   (the parallel miner's primitive — the closure does its own
//!   self-scheduling over whatever work units it partitions).
//! - [`for_each_mut`]: run a mutation over every element of a mutable
//!   slice on statically chunked workers (parallel post-processing of
//!   per-pattern data).
//!
//! Both implementations share the chunking/merging discipline, so results
//! (and every metric outside the `engine.*`/`pool.*` namespaces) are
//! bit-identical between them and across worker counts.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Resolve a `threads` argument: `0` means all available parallelism.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Apply `f` to every item on up to `threads` workers (`0` = available
/// parallelism); the output preserves item order. `f` must be independent
/// per item — nothing orders cross-item side effects.
pub fn ordered_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    ordered_map_obs(items, threads, &obs::Registry::disabled(), |item, _| {
        f(item)
    })
}

/// [`ordered_map`] with per-worker metric shards: `f` receives the item and
/// the worker's [`obs::Shard`]; shards merge into `registry` as each worker
/// finishes. The pool itself records `engine.workers`, per-item
/// `engine.items`, and an `engine.worker_wall` span per worker — all under
/// the `engine.` namespace because they describe execution shape, not work
/// done (see `obs::MetricSet::deterministic_counters`).
pub fn ordered_map_obs<T, R, F>(
    items: &[T],
    threads: usize,
    registry: &obs::Registry,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, &obs::Shard) -> R + Sync,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 {
        let shard = registry.shard();
        shard.add("engine.workers", 1);
        shard.add("engine.items", items.len() as u64);
        let out = {
            let _wall = shard.span("engine.worker_wall");
            items.iter().map(|item| f(item, &shard)).collect()
        };
        registry.absorb(shard);
        return out;
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let next = &next;
            let slots = &slots;
            let f = &f;
            s.spawn(move || {
                let shard = registry.shard();
                let mut served = 0u64;
                {
                    let _wall = shard.span("engine.worker_wall");
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        *slots[i].lock().expect("slot") = Some(f(&items[i], &shard));
                        served += 1;
                    }
                }
                shard.add("engine.workers", 1);
                shard.add("engine.items", served);
                registry.absorb(shard);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot").expect("every item mapped"))
        .collect()
}

/// Run `f(rank, shard)` once per worker on `workers` scoped threads and
/// return the results in rank order. Each worker records into a
/// [`obs::Shard::fork`] of `shard`; forks are merged back in rank order
/// after the join, so counter totals are independent of scheduling. With
/// `workers <= 1` the closure runs inline on `shard` itself — the serial
/// path is the parallel path with one worker, not a separate code path.
///
/// `f` receives only its rank: work distribution (an atomic chunk counter,
/// a precomputed partition, …) is the caller's business.
pub fn fork_join_obs<R, F>(workers: usize, shard: &obs::Shard, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, &obs::Shard) -> R + Sync,
{
    if workers <= 1 {
        return vec![f(0, shard)];
    }
    let mut out = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|rank| {
                let worker = shard.fork();
                let f = &f;
                s.spawn(move || {
                    let r = f(rank, &worker);
                    (r, worker)
                })
            })
            .collect();
        for h in handles {
            let (r, worker) = h.join().expect("fork_join worker panicked");
            shard.merge(worker);
            out.push(r);
        }
    });
    out
}

/// Apply `f` to every element of `items` in place, on up to `threads`
/// statically chunked scoped workers (`0` = available parallelism). `f`
/// must be independent per element.
pub fn for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        for c in items.chunks_mut(chunk) {
            let f = &f;
            s.spawn(move || {
                for item in c {
                    f(item);
                }
            });
        }
    });
}

/// State shared between a job's dispatcher and every thread that claims
/// one of its seats.
struct Job {
    /// The seat body. The `'static` lifetime is a lie told by
    /// [`Pool::run`]: the borrow is erased so the job can sit in the
    /// queue, and soundness comes from `run` blocking until every seat
    /// has finished before returning (see the SAFETY comment there).
    f: &'static (dyn Fn(usize) + Sync),
    /// Number of seats; each runs `f(seat)` exactly once.
    seats: usize,
    /// Atomic seat cursor: `fetch_add` hands out each seat exactly once.
    next_seat: AtomicUsize,
    state: Mutex<JobState>,
    /// Signalled when the last seat finishes.
    done: Condvar,
}

#[derive(Default)]
struct JobState {
    finished: usize,
    /// First panic payload raised by a seat; rethrown by the dispatcher.
    panic: Option<Box<dyn Any + Send>>,
}

impl Job {
    /// Claim one seat and run it; returns `false` once all seats are
    /// handed out. Panics in the seat body are caught and parked for the
    /// dispatcher, so pool workers survive a panicking task.
    fn claim_and_run(&self) -> bool {
        let seat = self.next_seat.fetch_add(1, Ordering::Relaxed);
        if seat >= self.seats {
            return false;
        }
        let result = catch_unwind(AssertUnwindSafe(|| (self.f)(seat)));
        let mut state = self.state.lock().expect("pool job state");
        if let Err(payload) = result {
            state.panic.get_or_insert(payload);
        }
        state.finished += 1;
        if state.finished == self.seats {
            self.done.notify_all();
        }
        true
    }

    fn exhausted(&self) -> bool {
        self.next_seat.load(Ordering::Relaxed) >= self.seats
    }
}

struct JobQueue {
    jobs: VecDeque<Arc<Job>>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<JobQueue>,
    /// Parked workers wait here; signalled on every dispatch and shutdown.
    available: Condvar,
    // Lifetime counters drained by `Pool::flush_metrics`.
    tasks: AtomicU64,
    steal_wait_ns: AtomicU64,
    busy_ns: Vec<AtomicU64>,
    park_ns: Vec<AtomicU64>,
}

fn pool_worker(shared: Arc<PoolShared>, idx: usize) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue");
            loop {
                // Drop jobs whose seats are all handed out; dispatchers
                // hold their own `Arc` until the stragglers finish.
                q.jobs.retain(|j| !j.exhausted());
                if let Some(j) = q.jobs.front() {
                    break Arc::clone(j);
                }
                if q.shutdown {
                    return;
                }
                let parked = Instant::now();
                q = shared.available.wait(q).expect("pool park");
                shared.park_ns[idx]
                    .fetch_add(parked.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        };
        let busy = Instant::now();
        while job.claim_and_run() {}
        shared.busy_ns[idx].fetch_add(busy.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// A persistent worker pool: `parallelism - 1` background threads spawned
/// once and parked on a condvar between jobs, with the dispatching thread
/// itself acting as the final worker.
///
/// A job is a closure run once per *seat*; seats are handed out through an
/// atomic cursor, and the pool's entry points ([`Pool::ordered_map_obs`],
/// [`Pool::fork_join_obs`], [`Pool::for_each_mut`]) assign work to seats
/// with the same chunking discipline as the scoped free functions in this
/// module, so outputs are bit-identical between the two and across any
/// worker count.
///
/// **Re-entrancy:** a seat body may dispatch back into the same pool. The
/// dispatcher of every job claims that job's seats in a loop before
/// blocking, so a nested job always makes progress on the thread that
/// submitted it even when every worker is occupied — the dependency graph
/// between jobs is strictly nested, so this cannot deadlock.
///
/// **Panics:** a panicking seat is caught on the claiming thread, recorded,
/// and re-raised on the dispatcher once the job completes. Workers survive;
/// the pool stays usable.
pub struct Pool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    parallelism: usize,
}

impl Pool {
    /// Create a pool sized for `threads` workers (`0` = available
    /// parallelism). `threads == 1` spawns no background threads at all;
    /// every entry point then runs inline on the caller.
    pub fn new(threads: usize) -> Self {
        let parallelism = resolve_threads(threads).max(1);
        let background = parallelism - 1;
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(JobQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            tasks: AtomicU64::new(0),
            steal_wait_ns: AtomicU64::new(0),
            busy_ns: (0..background).map(|_| AtomicU64::new(0)).collect(),
            park_ns: (0..background).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (0..background)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("treepi-pool-{idx}"))
                    .spawn(move || pool_worker(shared, idx))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            handles,
            parallelism,
        }
    }

    /// The worker count this pool was sized for (callers use it to pick
    /// chunk counts, exactly as they would a `threads` argument).
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Run `f(seat)` once for every `seat in 0..seats`, on the caller plus
    /// any idle workers. Returns when all seats have finished; re-raises
    /// the first seat panic, if any.
    pub fn run<F>(&self, seats: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let seats = seats.max(1);
        self.shared.tasks.fetch_add(1, Ordering::Relaxed);
        if seats == 1 || self.handles.is_empty() {
            for seat in 0..seats {
                f(seat);
            }
            return;
        }
        self.run_dyn(seats, &f);
    }

    fn run_dyn(&self, seats: usize, f: &(dyn Fn(usize) + Sync)) {
        // SAFETY: the borrow is erased to `'static` so the job can live in
        // the shared queue, but `run_dyn` does not return until
        // `finished == seats`, and no thread touches `f` after claiming a
        // seat past the cursor end — so every use of `f` happens while the
        // original borrow is still live on this stack frame.
        let f: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        let job = Arc::new(Job {
            f,
            seats,
            next_seat: AtomicUsize::new(0),
            state: Mutex::new(JobState::default()),
            done: Condvar::new(),
        });
        {
            let mut q = self.shared.queue.lock().expect("pool queue");
            q.jobs.push_back(Arc::clone(&job));
        }
        self.shared.available.notify_all();
        // Claim our own job's seats: the dispatcher never depends on a
        // worker being free, which is what makes nested dispatch safe.
        while job.claim_and_run() {}
        let mut state = job.state.lock().expect("pool job state");
        if state.finished < seats {
            // Remaining seats were stolen by workers; wait for them.
            let wait = Instant::now();
            while state.finished < seats {
                state = job.done.wait(state).expect("pool job wait");
            }
            self.shared
                .steal_wait_ns
                .fetch_add(wait.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        if let Some(payload) = state.panic.take() {
            drop(state);
            resume_unwind(payload);
        }
    }

    /// Pool-backed [`ordered_map`]: apply `f` to every item, output in item
    /// order, seats self-scheduling off an atomic cursor.
    pub fn ordered_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.ordered_map_obs(items, &obs::Registry::disabled(), |item, _| f(item))
    }

    /// Pool-backed [`ordered_map_obs`]: per-seat shards, absorbed into
    /// `registry` as each seat retires, with the same `engine.*` execution
    /// shape metrics as the scoped version.
    pub fn ordered_map_obs<T, R, F>(&self, items: &[T], registry: &obs::Registry, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T, &obs::Shard) -> R + Sync,
    {
        let workers = self.parallelism.min(items.len().max(1));
        if workers <= 1 {
            let shard = registry.shard();
            shard.add("engine.workers", 1);
            shard.add("engine.items", items.len() as u64);
            let out = {
                let _wall = shard.span("engine.worker_wall");
                items.iter().map(|item| f(item, &shard)).collect()
            };
            registry.absorb(shard);
            return out;
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        self.run(workers, |_seat| {
            let shard = registry.shard();
            let mut served = 0u64;
            {
                let _wall = shard.span("engine.worker_wall");
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    *slots[i].lock().expect("slot") = Some(f(&items[i], &shard));
                    served += 1;
                }
            }
            shard.add("engine.workers", 1);
            shard.add("engine.items", served);
            registry.absorb(shard);
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("slot").expect("every item mapped"))
            .collect()
    }

    /// Pool-backed [`fork_join_obs`]: one seat per rank, results and shard
    /// merges in rank order. Seats beyond the pool's parallelism are legal
    /// (they queue); `workers <= 1` runs inline on `shard` itself.
    pub fn fork_join_obs<R, F>(&self, workers: usize, shard: &obs::Shard, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &obs::Shard) -> R + Sync,
    {
        if workers <= 1 {
            return vec![f(0, shard)];
        }
        // `obs::Shard` is `Send` but not `Sync`, so each rank's fork is
        // parked in a mutex for the claiming thread to take and return.
        let forks: Vec<Mutex<Option<obs::Shard>>> = (0..workers)
            .map(|_| Mutex::new(Some(shard.fork())))
            .collect();
        let slots: Vec<Mutex<Option<R>>> = (0..workers).map(|_| Mutex::new(None)).collect();
        self.run(workers, |rank| {
            let worker = forks[rank]
                .lock()
                .expect("fork slot")
                .take()
                .expect("fork claimed once");
            let r = f(rank, &worker);
            *forks[rank].lock().expect("fork slot") = Some(worker);
            *slots[rank].lock().expect("result slot") = Some(r);
        });
        let mut out = Vec::with_capacity(workers);
        for (fork, slot) in forks.into_iter().zip(slots) {
            let worker = fork
                .into_inner()
                .expect("fork slot")
                .expect("fork returned");
            shard.merge(worker);
            out.push(
                slot.into_inner()
                    .expect("result slot")
                    .expect("every rank ran"),
            );
        }
        out
    }

    /// Pool-backed [`for_each_mut`]: mutate every element on statically
    /// chunked seats (chunk boundaries identical to the scoped version).
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(&mut T) + Sync,
    {
        let threads = self.parallelism.min(items.len().max(1));
        if threads <= 1 {
            for item in items {
                f(item);
            }
            return;
        }
        let chunk = items.len().div_ceil(threads);
        let chunks: Vec<Mutex<&mut [T]>> = items.chunks_mut(chunk).map(Mutex::new).collect();
        self.run(chunks.len(), |seat| {
            let mut guard = chunks[seat].lock().expect("chunk");
            for item in guard.iter_mut() {
                f(item);
            }
        });
    }

    /// Drain the pool's lifetime execution-shape metrics into `shard` as
    /// `pool.*` entries (reset to zero afterwards, so batch-end flushes
    /// yield per-batch deltas): `pool.tasks` jobs dispatched,
    /// `pool.steal_or_queue_wait_ns` dispatcher time spent waiting on
    /// seats stolen by workers, and per-worker busy/park time (totals as
    /// counters, per-worker samples as `pool.worker_busy`/`pool.worker_park`
    /// histograms). Like `engine.*`, the `pool.*` namespace describes
    /// scheduling, not work done, and is exempt from the determinism
    /// contract ([`obs::MetricSet::deterministic_counters`]).
    pub fn flush_metrics(&self, shard: &obs::Shard) {
        shard.add("pool.tasks", self.shared.tasks.swap(0, Ordering::Relaxed));
        shard.add(
            "pool.steal_or_queue_wait_ns",
            self.shared.steal_wait_ns.swap(0, Ordering::Relaxed),
        );
        for w in &self.shared.busy_ns {
            let ns = w.swap(0, Ordering::Relaxed);
            shard.add("pool.worker_busy_ns", ns);
            shard.observe("pool.worker_busy", Duration::from_nanos(ns));
        }
        for w in &self.shared.park_ns {
            let ns = w.swap(0, Ordering::Relaxed);
            shard.add("pool.worker_park_ns", ns);
            shard.observe("pool.worker_park", Duration::from_nanos(ns));
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool queue");
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("parallelism", &self.parallelism)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let out = ordered_map(&items, threads, |&x| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(ordered_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(ordered_map(&[5u32], 4, |&x| x + 1), vec![6]);
    }

    #[test]
    fn borrows_environment() {
        let base = vec![10u32, 20, 30];
        let out = ordered_map(&[0usize, 1, 2], 2, |&i| base[i]);
        assert_eq!(out, base);
    }

    #[test]
    fn obs_variant_accounts_for_every_item() {
        let items: Vec<u64> = (0..50).collect();
        for threads in [1, 3, 8] {
            let registry = obs::Registry::new();
            let out = ordered_map_obs(&items, threads, &registry, |&x, shard| {
                shard.add("work.units", x);
                x
            });
            assert_eq!(out, items);
            let snap = registry.snapshot();
            assert_eq!(snap.counter("engine.items"), 50);
            assert_eq!(snap.counter("work.units"), (0..50).sum::<u64>());
            assert!(snap.counter("engine.workers") >= 1);
            assert!(snap.counter("engine.workers") <= threads as u64);
        }
    }

    #[test]
    fn zero_resolves_to_available() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(5), 5);
    }

    #[test]
    fn fork_join_returns_in_rank_order_and_merges_shards() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for workers in [1usize, 2, 5] {
            let shard = obs::Shard::detached(true);
            let next = AtomicUsize::new(0);
            let ranks = fork_join_obs(workers, &shard, |rank, w| {
                // Self-scheduled work units: each adds its index once.
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= 10 {
                        break;
                    }
                    w.add("work.sum", i as u64);
                }
                rank
            });
            assert_eq!(ranks, (0..workers).collect::<Vec<_>>());
            let set = shard.into_set();
            if obs::COMPILED_IN {
                assert_eq!(set.counter("work.sum"), (0..10).sum::<usize>() as u64);
            }
        }
    }

    #[test]
    fn for_each_mut_touches_every_element() {
        for threads in [1usize, 2, 4, 9] {
            let mut items: Vec<u64> = (0..37).collect();
            for_each_mut(&mut items, threads, |x| *x *= 3);
            assert_eq!(items, (0..37).map(|x| x * 3).collect::<Vec<_>>());
        }
        let mut empty: Vec<u64> = Vec::new();
        for_each_mut(&mut empty, 4, |_| unreachable!());
    }

    #[test]
    fn pool_ordered_map_matches_scoped_at_any_worker_count() {
        let items: Vec<usize> = (0..211).collect();
        let expected = ordered_map(&items, 1, |&x| x * x + 1);
        for workers in [1usize, 2, 8] {
            let pool = Pool::new(workers);
            assert_eq!(pool.parallelism(), workers);
            // Reused across calls: the whole point of a persistent pool.
            for _ in 0..3 {
                assert_eq!(pool.ordered_map(&items, |&x| x * x + 1), expected);
            }
            let empty: Vec<u32> = Vec::new();
            assert!(pool.ordered_map(&empty, |&x| x).is_empty());
        }
    }

    #[test]
    fn pool_ordered_map_obs_accounts_for_every_item() {
        let items: Vec<u64> = (0..50).collect();
        for workers in [1usize, 3, 8] {
            let pool = Pool::new(workers);
            let registry = obs::Registry::new();
            let out = pool.ordered_map_obs(&items, &registry, |&x, shard| {
                shard.add("work.units", x);
                x
            });
            assert_eq!(out, items);
            let snap = registry.snapshot();
            assert_eq!(snap.counter("engine.items"), 50);
            assert_eq!(snap.counter("work.units"), (0..50).sum::<u64>());
            assert!(snap.counter("engine.workers") >= 1);
            assert!(snap.counter("engine.workers") <= workers as u64);
        }
    }

    #[test]
    fn pool_fork_join_returns_in_rank_order_and_merges_shards() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for workers in [1usize, 2, 5] {
            let pool = Pool::new(2);
            let shard = obs::Shard::detached(true);
            let next = AtomicUsize::new(0);
            let ranks = pool.fork_join_obs(workers, &shard, |rank, w| {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= 10 {
                        break;
                    }
                    w.add("work.sum", i as u64);
                }
                rank
            });
            assert_eq!(ranks, (0..workers).collect::<Vec<_>>());
            let set = shard.into_set();
            if obs::COMPILED_IN {
                assert_eq!(set.counter("work.sum"), (0..10).sum::<usize>() as u64);
            }
        }
    }

    #[test]
    fn pool_for_each_mut_touches_every_element() {
        for workers in [1usize, 2, 4, 9] {
            let pool = Pool::new(workers);
            let mut items: Vec<u64> = (0..37).collect();
            pool.for_each_mut(&mut items, |x| *x *= 3);
            assert_eq!(items, (0..37).map(|x| x * 3).collect::<Vec<_>>());
            let mut empty: Vec<u64> = Vec::new();
            pool.for_each_mut(&mut empty, |_| unreachable!());
        }
    }

    #[test]
    fn pool_panicking_task_propagates_and_pool_survives() {
        let pool = Pool::new(4);
        let items: Vec<u32> = (0..100).collect();
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            pool.ordered_map(&items, |&x| {
                if x == 37 {
                    panic!("seat panic");
                }
                x
            })
        }));
        let payload = attempt.expect_err("panic must reach the dispatcher");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "seat panic");
        // The pool is still fully usable afterwards.
        assert_eq!(
            pool.ordered_map(&items, |&x| x + 1),
            (1..101).collect::<Vec<u32>>()
        );
    }

    #[test]
    fn pool_reentrant_dispatch_completes() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // More seats than workers, and every seat dispatches a nested job
        // back into the same pool: exercises caller-participation (the
        // dispatcher finishing its own job with all workers busy).
        for workers in [1usize, 2, 4] {
            let pool = Pool::new(workers);
            let total = AtomicU64::new(0);
            let outer: Vec<u64> = (0..workers as u64 * 3).collect();
            let out = pool.ordered_map(&outer, |&x| {
                let inner: Vec<u64> = (0..5).map(|k| x * 10 + k).collect();
                let inner_out = pool.ordered_map(&inner, |&y| {
                    total.fetch_add(1, Ordering::Relaxed);
                    y * 2
                });
                inner_out.iter().sum::<u64>()
            });
            let expect: Vec<u64> = outer
                .iter()
                .map(|&x| (0..5).map(|k| (x * 10 + k) * 2).sum())
                .collect();
            assert_eq!(out, expect);
            assert_eq!(total.load(Ordering::Relaxed), outer.len() as u64 * 5);
        }
    }

    #[test]
    fn pool_flush_metrics_drains_to_deltas() {
        let pool = Pool::new(3);
        let items: Vec<u32> = (0..64).collect();
        let _ = pool.ordered_map(&items, |&x| x);
        let shard = obs::Shard::detached(true);
        pool.flush_metrics(&shard);
        let set = shard.into_set();
        if obs::COMPILED_IN {
            assert!(set.counter("pool.tasks") >= 1);
        }
        // A second flush with no work in between reports zero tasks.
        let shard = obs::Shard::detached(true);
        pool.flush_metrics(&shard);
        assert_eq!(shard.into_set().counter("pool.tasks"), 0);
    }

    #[test]
    fn pool_zero_threads_resolves_to_available() {
        let pool = Pool::new(0);
        assert!(pool.parallelism() >= 1);
        assert_eq!(pool.ordered_map(&[1u32, 2, 3], |&x| x), vec![1, 2, 3]);
    }
}
