//! Canonical codes for arbitrary small labeled graphs.
//!
//! The gIndex baseline needs to decide whether two *general* graph fragments
//! are isomorphic (to dedupe mined patterns and to look query subgraphs up
//! in the index). The paper points out that this is exactly what makes
//! graph features expensive compared to trees: computing a canonical form of
//! an arbitrary graph takes exponential time in the worst case, while tree
//! canonical strings (in `tree-core`) are linear.
//!
//! We compute the lexicographically minimal *adjacency code* over all
//! connectivity-preserving vertex orderings, with two sound prunings:
//!
//! 1. at each position only candidates producing the minimal next code
//!    element are explored (any other prefix is already larger), and
//! 2. the first vertex must carry the minimal vertex label.
//!
//! For the ≤ 11-vertex fragments gIndex indexes, this is fast in practice;
//! its worst case remains exponential, which is faithful to the baseline.

use crate::graph::{Graph, VertexId};

/// A canonical code: equal iff the graphs are isomorphic.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CanonCode(pub Vec<u32>);

/// Sentinel for "no edge to that earlier vertex" inside code elements.
const NO_EDGE: u32 = 0;

/// Code element for placing `v` at position `k`: its vertex label followed
/// by the edge label (+2, to clear the sentinel) towards each already-placed
/// vertex in order.
fn element(g: &Graph, placed: &[VertexId], v: VertexId) -> Vec<u32> {
    let mut el = Vec::with_capacity(placed.len() + 1);
    el.push(g.vlabel(v).0 + 1);
    for &p in placed {
        match g.edge_between(v, p) {
            Some(e) => el.push(g.edge(e).label.0 + 2),
            None => el.push(NO_EDGE),
        }
    }
    el
}

fn search(
    g: &Graph,
    placed: &mut Vec<VertexId>,
    used: &mut Vec<bool>,
    code: &mut Vec<u32>,
    best: &mut Option<Vec<u32>>,
) {
    let n = g.vertex_count();
    if placed.len() == n {
        if best.as_ref().is_none_or(|b| &*code < b) {
            *best = Some(code.clone());
        }
        return;
    }
    // Candidates: unused vertices adjacent to a placed one (connectivity-
    // preserving order; the graph is connected so such vertices exist).
    let mut cands: Vec<VertexId> = Vec::new();
    for &p in placed.iter() {
        for &(w, _) in g.neighbors(p) {
            if !used[w.idx()] && !cands.contains(&w) {
                cands.push(w);
            }
        }
    }
    // Keep only argmin-element candidates: all other branches produce a
    // strictly larger code at this position.
    let mut min_el: Option<Vec<u32>> = None;
    let mut argmin: Vec<VertexId> = Vec::new();
    for &c in &cands {
        let el = element(g, placed, c);
        match &min_el {
            None => {
                min_el = Some(el);
                argmin = vec![c];
            }
            Some(m) => {
                if &el < m {
                    min_el = Some(el);
                    argmin = vec![c];
                } else if &el == m {
                    argmin.push(c);
                }
            }
        }
    }
    let el = min_el.expect("connected graph always has frontier candidates");
    // If this prefix already exceeds the best complete code, prune. (Codes
    // are compared element-wise; equal-length prefixes compare directly.)
    let pre_len = code.len();
    code.extend_from_slice(&el);
    let dominated = best
        .as_ref()
        .is_some_and(|b| code.as_slice() > &b[..code.len().min(b.len())]);
    if !dominated {
        for c in argmin.iter().copied() {
            placed.push(c);
            used[c.idx()] = true;
            search(g, placed, used, code, best);
            used[c.idx()] = false;
            placed.pop();
        }
    }
    code.truncate(pre_len);
}

/// Canonical code of a connected graph.
fn canonical_code_connected(g: &Graph) -> Vec<u32> {
    let n = g.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    // The first code element is just the vertex label, so only minimum-label
    // vertices can start a minimal code.
    let min_label = g.vertices().map(|v| g.vlabel(v)).min().expect("nonempty");
    let mut best: Option<Vec<u32>> = None;
    let mut placed = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut code = Vec::new();
    for v in g.vertices() {
        if g.vlabel(v) != min_label {
            continue;
        }
        code.push(g.vlabel(v).0 + 1);
        placed.push(v);
        used[v.idx()] = true;
        search(g, &mut placed, &mut used, &mut code, &mut best);
        used[v.idx()] = false;
        placed.pop();
        code.pop();
    }
    best.expect("connected nonempty graph has a canonical code")
}

/// Canonical code of `g`. Two graphs have equal codes iff they are
/// isomorphic (Definition 2). Disconnected graphs are encoded as the sorted
/// concatenation of their components' codes.
pub fn canonical_code(g: &Graph) -> CanonCode {
    if g.vertex_count() == 0 {
        return CanonCode(Vec::new());
    }
    // Split into connected components.
    let n = g.vertex_count();
    let mut comp = vec![usize::MAX; n];
    let mut ncomp = 0;
    for v in g.vertices() {
        if comp[v.idx()] != usize::MAX {
            continue;
        }
        let mut stack = vec![v];
        comp[v.idx()] = ncomp;
        while let Some(x) = stack.pop() {
            for &(w, _) in g.neighbors(x) {
                if comp[w.idx()] == usize::MAX {
                    comp[w.idx()] = ncomp;
                    stack.push(w);
                }
            }
        }
        ncomp += 1;
    }
    if ncomp == 1 {
        return CanonCode(canonical_code_connected(g));
    }
    // Rebuild each component as its own graph and canonicalize.
    let mut codes: Vec<Vec<u32>> = Vec::with_capacity(ncomp);
    for c in 0..ncomp {
        let mut b = crate::graph::GraphBuilder::new();
        let mut map = vec![VertexId(u32::MAX); n];
        for v in g.vertices() {
            if comp[v.idx()] == c {
                map[v.idx()] = b.add_vertex(g.vlabel(v));
            }
        }
        for e in g.edges() {
            if comp[e.u.idx()] == c {
                b.add_edge(map[e.u.idx()], map[e.v.idx()], e.label)
                    .expect("component edges are valid");
            }
        }
        codes.push(canonical_code_connected(&b.build()));
    }
    codes.sort();
    let mut out = Vec::new();
    for c in codes {
        out.push(u32::MAX); // component separator, never a code element
        out.extend(c);
    }
    CanonCode(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph_from;
    use crate::iso::is_isomorphic;

    #[test]
    fn isomorphic_graphs_share_code() {
        let a = graph_from(&[1, 2, 3], &[(0, 1, 5), (1, 2, 6)]);
        let b = graph_from(&[3, 2, 1], &[(0, 1, 6), (1, 2, 5)]);
        assert_eq!(canonical_code(&a), canonical_code(&b));
    }

    #[test]
    fn non_isomorphic_graphs_differ() {
        let path = graph_from(&[0, 0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 3, 0)]);
        let star = graph_from(&[0, 0, 0, 0], &[(0, 1, 0), (0, 2, 0), (0, 3, 0)]);
        assert_ne!(canonical_code(&path), canonical_code(&star));
    }

    #[test]
    fn edge_labels_matter() {
        let a = graph_from(&[0, 0], &[(0, 1, 1)]);
        let b = graph_from(&[0, 0], &[(0, 1, 2)]);
        assert_ne!(canonical_code(&a), canonical_code(&b));
    }

    #[test]
    fn cycles_vs_paths() {
        let c4 = graph_from(&[0; 4], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]);
        let p4 = graph_from(&[0; 5], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 4, 0)]);
        assert_ne!(canonical_code(&c4), canonical_code(&p4));
        // C4 under relabeled vertex order
        let c4b = graph_from(&[0; 4], &[(2, 0, 0), (0, 3, 0), (3, 1, 0), (1, 2, 0)]);
        assert_eq!(canonical_code(&c4), canonical_code(&c4b));
    }

    #[test]
    fn disconnected_components_sorted() {
        let a = graph_from(&[1, 2, 2, 1], &[(0, 1, 0), (2, 3, 0)]);
        let b = graph_from(&[2, 1, 1, 2], &[(0, 1, 0), (2, 3, 0)]);
        assert_eq!(canonical_code(&a), canonical_code(&b));
    }

    #[test]
    fn exhaustive_small_graph_consistency() {
        // Compare the invariant against the isomorphism oracle on a family
        // of small labeled graphs: equal code <=> isomorphic.
        let graphs = vec![
            graph_from(&[0, 1], &[(0, 1, 0)]),
            graph_from(&[1, 0], &[(0, 1, 0)]),
            graph_from(&[0, 1], &[(0, 1, 1)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 1, 0], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[1, 0, 0], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 0)]),
            graph_from(&[0, 1, 0], &[(0, 1, 0), (1, 2, 0), (2, 0, 0)]),
            graph_from(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 0, 0)]),
        ];
        for (i, a) in graphs.iter().enumerate() {
            for (j, b) in graphs.iter().enumerate() {
                let same_code = canonical_code(a) == canonical_code(b);
                let iso = is_isomorphic(a, b);
                assert_eq!(same_code, iso, "mismatch between graphs {i} and {j}");
            }
        }
    }

    #[test]
    fn benzene_like_ring_canonical() {
        // 6-ring with alternating bond labels, two rotations.
        let r1 = graph_from(
            &[0; 6],
            &[
                (0, 1, 1),
                (1, 2, 2),
                (2, 3, 1),
                (3, 4, 2),
                (4, 5, 1),
                (5, 0, 2),
            ],
        );
        let r2 = graph_from(
            &[0; 6],
            &[
                (0, 1, 2),
                (1, 2, 1),
                (2, 3, 2),
                (3, 4, 1),
                (4, 5, 2),
                (5, 0, 1),
            ],
        );
        assert_eq!(canonical_code(&r1), canonical_code(&r2));
        // All-single ring differs.
        let r3 = graph_from(
            &[0; 6],
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 3, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 0, 1),
            ],
        );
        assert_ne!(canonical_code(&r1), canonical_code(&r3));
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(canonical_code(&graph_from(&[], &[])), CanonCode(vec![]));
        let v = graph_from(&[9], &[]);
        assert_eq!(canonical_code(&v), CanonCode(vec![10]));
    }
}
