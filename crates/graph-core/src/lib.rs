//! Labeled undirected graph substrate for the TreePi reproduction.
//!
//! This crate provides everything below the tree/index layers of the paper:
//!
//! - [`graph`]: the immutable labeled graph type and its builder;
//! - [`dist`]: BFS distances and the cached [`dist::DistanceOracle`] used by
//!   Center Distance Constraint pruning;
//! - [`iso`]: VF2-style subgraph isomorphism, isomorphism, automorphisms,
//!   and rooted embedding enumeration;
//! - [`canon`]: canonical codes for arbitrary small graphs (the expensive
//!   operation TreePi avoids and the gIndex baseline must pay for);
//! - [`subgraph`]: edge-subgraph extraction and connected edge-subset /
//!   subtree enumeration;
//! - [`io`]: the gSpan transaction text format and a label interner.

#![warn(missing_docs)]

pub mod canon;
pub mod digraph;
pub mod dist;
pub mod graph;
pub mod io;
pub mod iso;
pub mod par;
pub mod stats;
pub mod subgraph;

pub use canon::{canonical_code, CanonCode};
pub use digraph::{
    digraph_from, is_sub_digraph_isomorphic, Arc, DiBuildError, DiGraph, DiGraphBuilder,
    MIDPOINT_LABEL_BASE,
};
pub use dist::{
    bfs_distances, bfs_distances_obs, distance, eccentricity, DistanceOracle, UNREACHABLE,
};
pub use graph::{
    graph_from, BuildError, ELabel, Edge, EdgeId, Graph, GraphBuilder, VLabel, VertexId,
};
pub use iso::{
    all_embeddings, automorphisms, find_embedding, for_each_embedding, for_each_embedding_pinned,
    for_each_embedding_rooted, is_isomorphic, is_subgraph_isomorphic, is_subgraph_isomorphic_obs,
    Embedding,
};
pub use par::{ordered_map, ordered_map_obs, resolve_threads};
pub use stats::{component_count, db_stats, edge_label_histogram, vertex_label_histogram, DbStats};
pub use subgraph::{
    edge_components, edge_subgraph, for_each_connected_edge_subset, for_each_subtree_edge_subset,
    random_connected_edge_subgraph, ExtractedSubgraph,
};
