//! **GraphGrep-style path index** (Shasha, Wang & Giugno, PODS'02) — the
//! path-based baseline the paper positions TreePi against: "paths are
//! easier to manipulate, \[but\] they also lose a large amount of structural
//! information" (§2). Indexing label paths up to a length cap gives fast
//! filtering but a weaker candidate set than trees or subgraphs, and the
//! path vocabulary grows quickly with database diversity.

#![warn(missing_docs)]

pub mod index;
pub mod paths;

pub use index::{PBuildStats, PQueryResult, PQueryStats, PathGrep, PathGrepParams};
pub use paths::{label_paths, PathKey};
