//! Label-path extraction.
//!
//! GraphGrep's features are *label paths*: alternating sequences of vertex
//! and edge labels along simple paths, `v₀ e₀ v₁ e₁ … vₖ`. A path and its
//! reverse describe the same undirected feature, so keys are normalized to
//! the lexicographically smaller direction.

use graph_core::{Graph, VertexId};
use rustc_hash::FxHashSet;
use smallvec::SmallVec;

/// A normalized label path key: `v₀ e₀ v₁ …` tokens, direction-normalized.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PathKey(pub SmallVec<[u32; 9]>);

impl PathKey {
    /// Number of edges on the path.
    pub fn len_edges(&self) -> usize {
        self.0.len() / 2
    }
}

/// Build the normalized key for a concrete vertex path.
fn key_of(g: &Graph, path: &[VertexId]) -> PathKey {
    let mut fwd: SmallVec<[u32; 9]> = SmallVec::new();
    for (i, &v) in path.iter().enumerate() {
        fwd.push(g.vlabel(v).0);
        if i + 1 < path.len() {
            let e = g
                .edge_between(v, path[i + 1])
                .expect("consecutive path vertices are adjacent");
            fwd.push(g.edge(e).label.0);
        }
    }
    let mut rev = fwd.clone();
    rev.reverse();
    PathKey(fwd.min(rev))
}

/// Collect the distinct label paths of `g` with `1..=max_len` edges.
///
/// Paths are *simple* (no repeated vertices), matching GraphGrep. The walk
/// enumerates each undirected vertex path twice (once per direction); keys
/// are normalized so the set is direction-free.
pub fn label_paths(g: &Graph, max_len: usize) -> FxHashSet<PathKey> {
    let mut out = FxHashSet::default();
    let mut stack: Vec<VertexId> = Vec::with_capacity(max_len + 1);
    fn dfs(g: &Graph, stack: &mut Vec<VertexId>, max_len: usize, out: &mut FxHashSet<PathKey>) {
        let v = *stack.last().expect("nonempty stack");
        if stack.len() > 1 {
            out.insert(key_of(g, stack));
        }
        if stack.len() > max_len {
            return;
        }
        for &(w, _) in g.neighbors(v) {
            if !stack.contains(&w) {
                stack.push(w);
                dfs(g, stack, max_len, out);
                stack.pop();
            }
        }
    }
    for v in g.vertices() {
        stack.push(v);
        dfs(g, &mut stack, max_len, &mut out);
        stack.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::graph_from;

    #[test]
    fn single_edge_paths() {
        let g = graph_from(&[1, 2], &[(0, 1, 7)]);
        let ps = label_paths(&g, 3);
        assert_eq!(ps.len(), 1);
        let k = ps.iter().next().unwrap();
        assert_eq!(k.len_edges(), 1);
        // normalized: smaller endpoint label first
        assert_eq!(k.0.as_slice(), &[1, 7, 2]);
    }

    #[test]
    fn direction_normalization() {
        // path 1-2-3 built in both orders yields identical keys
        let a = graph_from(&[1, 2, 3], &[(0, 1, 5), (1, 2, 6)]);
        let b = graph_from(&[3, 2, 1], &[(0, 1, 6), (1, 2, 5)]);
        assert_eq!(label_paths(&a, 2), label_paths(&b, 2));
    }

    #[test]
    fn triangle_path_count() {
        let g = graph_from(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 0, 0)]);
        let ps = label_paths(&g, 2);
        // uniform labels: one 1-edge key, one 2-edge key
        assert_eq!(ps.len(), 2);
        // with length-3 paths... a triangle has no simple 3-edge path
        let ps3 = label_paths(&g, 3);
        assert_eq!(ps3.len(), 2);
    }

    #[test]
    fn max_len_respected() {
        let g = graph_from(&[0, 0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 3, 0)]);
        for (cap, want) in [(1, 1), (2, 2), (3, 3), (5, 3)] {
            let ps = label_paths(&g, cap);
            let max = ps.iter().map(|p| p.len_edges()).max().unwrap();
            assert_eq!(max, want);
        }
    }

    #[test]
    fn labels_split_keys() {
        let g = graph_from(&[0, 1, 0], &[(0, 1, 0), (1, 2, 1)]);
        let ps = label_paths(&g, 1);
        // edges (0,0,1) and (1,1,0) differ
        assert_eq!(ps.len(), 2);
    }
}
