//! The path index: per label path, the set of graphs containing it.
//!
//! Queries are answered GraphGrep-style: extract the query's label paths,
//! intersect their support sets, then verify candidates with naive
//! subgraph isomorphism. The paper's §1 critique — "the size of index path
//! set could increase drastically with the size of graph database" and
//! "paths … lose a large amount of structural information" — is exactly
//! what the comparison experiments show.

use crate::paths::{label_paths, PathKey};
use graph_core::Graph;
use mining::{intersect_many, SupportSet};
use rustc_hash::FxHashMap;
use std::time::{Duration, Instant};

/// Parameters of the path index.
#[derive(Clone, Copy, Debug)]
pub struct PathGrepParams {
    /// Maximum indexed path length in edges (GraphGrep's `lp`, typically 4).
    pub max_len: usize,
}

impl Default for PathGrepParams {
    fn default() -> Self {
        Self { max_len: 4 }
    }
}

/// Build statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct PBuildStats {
    /// Distinct label paths indexed (the "index size" for Figure 9-style
    /// comparisons).
    pub features: usize,
    /// Milliseconds spent building.
    pub t_build_ms: u128,
}

/// Per-query statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct PQueryStats {
    /// Paths extracted from the query.
    pub paths_used: usize,
    /// Candidates after filtering.
    pub filtered: usize,
    /// Exact answers.
    pub answers: usize,
    /// Filter time.
    pub t_filter: Duration,
    /// Verification time.
    pub t_verify: Duration,
}

impl PQueryStats {
    /// Total processing time.
    pub fn total(&self) -> Duration {
        self.t_filter + self.t_verify
    }
}

/// Result of a path-index query.
#[derive(Clone, Debug)]
pub struct PQueryResult {
    /// Sorted ids of graphs containing the query.
    pub matches: Vec<u32>,
    /// Stage statistics.
    pub stats: PQueryStats,
}

/// GraphGrep-style path index.
pub struct PathGrep {
    db: Vec<Graph>,
    supports: FxHashMap<PathKey, SupportSet>,
    params: PathGrepParams,
    stats: PBuildStats,
}

impl PathGrep {
    /// Index every label path up to `max_len` edges.
    pub fn build(db: Vec<Graph>, params: PathGrepParams) -> Self {
        let t = Instant::now();
        let mut supports: FxHashMap<PathKey, SupportSet> = FxHashMap::default();
        for (gid, g) in db.iter().enumerate() {
            for key in label_paths(g, params.max_len) {
                supports.entry(key).or_default().push(gid as u32);
            }
        }
        let stats = PBuildStats {
            features: supports.len(),
            t_build_ms: t.elapsed().as_millis(),
        };
        Self {
            db,
            supports,
            params,
            stats,
        }
    }

    /// The database.
    pub fn db(&self) -> &[Graph] {
        &self.db
    }

    /// Number of indexed paths.
    pub fn feature_count(&self) -> usize {
        self.stats.features
    }

    /// Build statistics.
    pub fn stats(&self) -> &PBuildStats {
        &self.stats
    }

    /// Candidate set: graphs containing every label path of the query.
    pub fn candidates(&self, q: &Graph) -> (SupportSet, PQueryStats) {
        let mut stats = PQueryStats::default();
        let t = Instant::now();
        let qpaths = label_paths(q, self.params.max_len);
        stats.paths_used = qpaths.len();
        let mut sets: Vec<&[u32]> = Vec::with_capacity(qpaths.len());
        let mut missing = false;
        for key in &qpaths {
            match self.supports.get(key) {
                Some(s) => sets.push(s),
                None => {
                    missing = true;
                    break;
                }
            }
        }
        let candidates = if missing {
            Vec::new()
        } else {
            intersect_many(&sets, self.db.len())
        };
        stats.filtered = candidates.len();
        stats.t_filter = t.elapsed();
        (candidates, stats)
    }

    /// Full query: filter then naive verification.
    pub fn query(&self, q: &Graph) -> PQueryResult {
        assert!(q.edge_count() > 0, "queries must have at least one edge");
        let (candidates, mut stats) = self.candidates(q);
        let t = Instant::now();
        let matches: Vec<u32> = candidates
            .into_iter()
            .filter(|&gid| graph_core::is_subgraph_isomorphic(q, &self.db[gid as usize]))
            .collect();
        stats.t_verify = t.elapsed();
        stats.answers = matches.len();
        PQueryResult { matches, stats }
    }

    /// Batch entry point mirroring `TreePiIndex::query_batch` so
    /// cross-system comparisons run both sides with the same work
    /// distribution (`threads = 0` means available parallelism). Path
    /// queries consume no randomness, so results are identical at any
    /// thread count; queries self-schedule and return in query order.
    pub fn query_batch(&self, queries: &[Graph], threads: usize) -> Vec<PQueryResult> {
        let pool = graph_core::par::Pool::new(threads);
        self.query_batch_pool(queries, &pool)
    }

    /// [`Self::query_batch`] on a caller-owned worker pool, reusing its
    /// threads instead of spawning per batch.
    pub fn query_batch_pool(
        &self,
        queries: &[Graph],
        pool: &graph_core::par::Pool,
    ) -> Vec<PQueryResult> {
        pool.ordered_map(queries, |q| self.query(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::graph_from;

    fn index() -> PathGrep {
        let db = vec![
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1), (2, 3, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
            graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
        ];
        PathGrep::build(db, PathGrepParams::default())
    }

    fn oracle(idx: &PathGrep, q: &Graph) -> Vec<u32> {
        idx.db()
            .iter()
            .enumerate()
            .filter(|(_, g)| graph_core::is_subgraph_isomorphic(q, g))
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn query_matches_oracle() {
        let idx = index();
        let queries = [
            graph_from(&[0, 0], &[(0, 1, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]),
            graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
            graph_from(&[9, 9], &[(0, 1, 0)]),
        ];
        for (i, q) in queries.iter().enumerate() {
            let r = idx.query(q);
            assert_eq!(r.matches, oracle(&idx, q), "query {i}");
            assert!(r.stats.filtered >= r.stats.answers);
        }
    }

    #[test]
    fn candidates_contain_answers() {
        let idx = index();
        let q = graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]);
        let (cands, _) = idx.candidates(&q);
        for a in oracle(&idx, &q) {
            assert!(cands.contains(&a));
        }
    }

    #[test]
    fn paths_lose_structure() {
        // The paper's core argument: paths cannot distinguish branching
        // from chains. A star query and its path decomposition over a
        // chain-only database: the chain contains all the query's 2-edge
        // label paths but not the query.
        let chain = graph_from(
            &[1, 0, 1, 0, 1],
            &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 4, 0)],
        );
        let idx = PathGrep::build(vec![chain], PathGrepParams { max_len: 2 });
        // star with three label-1 leaves on a label-0 hub
        let star = graph_from(&[0, 1, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 0)]);
        let (cands, _) = idx.candidates(&star);
        assert_eq!(cands, vec![0], "path filter cannot rule the chain out");
        let r = idx.query(&star);
        assert!(r.matches.is_empty(), "verification must reject it");
    }

    #[test]
    fn missing_path_short_circuits() {
        let idx = index();
        let q = graph_from(&[7, 7], &[(0, 1, 0)]);
        let r = idx.query(&q);
        assert!(r.matches.is_empty());
        assert_eq!(r.stats.filtered, 0);
    }

    #[test]
    fn batch_matches_sequential_at_any_thread_count() {
        let idx = index();
        let queries = vec![
            graph_from(&[0, 0], &[(0, 1, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
            graph_from(&[9, 9], &[(0, 1, 0)]),
        ];
        let seq: Vec<Vec<u32>> = queries.iter().map(|q| idx.query(q).matches).collect();
        for threads in [1, 2, 8] {
            let batch = idx.query_batch(&queries, threads);
            assert_eq!(batch.len(), queries.len());
            for (i, r) in batch.iter().enumerate() {
                assert_eq!(r.matches, seq[i], "query {i}, threads {threads}");
            }
        }
    }

    #[test]
    fn build_stats() {
        let idx = index();
        assert!(idx.feature_count() > 0);
        assert_eq!(idx.stats().features, idx.feature_count());
    }
}
