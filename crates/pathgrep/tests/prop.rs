//! Property tests for the path index: queries are exact against a
//! brute-force scan, and candidate sets always contain the answers.

use graph_core::{ELabel, Graph, GraphBuilder, VLabel, VertexId};
use pathgrep::{label_paths, PathGrep, PathGrepParams};
use proptest::prelude::*;

fn arb_connected_graph(nmax: usize) -> impl Strategy<Value = Graph> {
    (2..=nmax).prop_flat_map(move |n| {
        let vlabels = proptest::collection::vec(0u32..3, n);
        let parents = proptest::collection::vec((0usize..nmax, 0u32..2), n - 1);
        let extras = proptest::collection::vec((0usize..nmax, 0usize..nmax, 0u32..2), 0..3);
        (vlabels, parents, extras).prop_map(move |(vl, ps, ex)| {
            let mut b = GraphBuilder::new();
            for l in &vl {
                b.add_vertex(VLabel(*l));
            }
            for (i, (p, el)) in ps.iter().enumerate() {
                b.add_edge(
                    VertexId((i + 1) as u32),
                    VertexId((p % (i + 1)) as u32),
                    ELabel(*el),
                )
                .expect("tree edge");
            }
            for (u, v, el) in ex {
                let (u, v) = (VertexId((u % n) as u32), VertexId((v % n) as u32));
                if u != v && !b.has_edge(u, v) {
                    let _ = b.add_edge(u, v, ELabel(el));
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn queries_are_exact(
        db in proptest::collection::vec(arb_connected_graph(6), 1..8),
        q in arb_connected_graph(5),
    ) {
        let idx = PathGrep::build(db.clone(), PathGrepParams::default());
        let truth: Vec<u32> = db
            .iter()
            .enumerate()
            .filter(|(_, g)| graph_core::is_subgraph_isomorphic(&q, g))
            .map(|(i, _)| i as u32)
            .collect();
        let r = idx.query(&q);
        prop_assert_eq!(r.matches, truth);
        prop_assert!(r.stats.filtered >= r.stats.answers);
    }

    #[test]
    fn candidates_contain_truth(
        db in proptest::collection::vec(arb_connected_graph(6), 1..8),
        q in arb_connected_graph(4),
    ) {
        let idx = PathGrep::build(db.clone(), PathGrepParams { max_len: 3 });
        let (cands, _) = idx.candidates(&q);
        for (gid, g) in db.iter().enumerate() {
            if graph_core::is_subgraph_isomorphic(&q, g) {
                prop_assert!(cands.contains(&(gid as u32)));
            }
        }
    }

    #[test]
    fn path_keys_are_isomorphism_invariant(g in arb_connected_graph(6), seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        // permute vertices; label paths must be identical
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut perm: Vec<u32> = (0..g.vertex_count() as u32).collect();
        perm.shuffle(&mut rng);
        let mut b = GraphBuilder::new();
        let mut inv = vec![0u32; perm.len()];
        for (old, &new) in perm.iter().enumerate() {
            inv[new as usize] = old as u32;
        }
        for &old in &inv {
            b.add_vertex(g.vlabel(VertexId(old)));
        }
        for e in g.edges() {
            b.add_edge(VertexId(perm[e.u.idx()]), VertexId(perm[e.v.idx()]), e.label)
                .expect("permutation preserves simplicity");
        }
        let h = b.build();
        prop_assert_eq!(label_paths(&g, 4), label_paths(&h, 4));
    }
}
