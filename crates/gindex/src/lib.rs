//! The **gIndex** baseline (Yan, Yu & Han, SIGMOD'04), implemented from
//! scratch for head-to-head comparison with TreePi, exactly as the paper's
//! §6 evaluates it: frequent general subgraph fragments under ψ(l),
//! discriminative selection at γ_min, filter-by-intersection, and naive
//! isomorphism verification.

#![warn(missing_docs)]

pub mod index;
pub mod query;

pub use index::{Fragment, GBuildStats, GIndex, GIndexParams};
pub use query::{GQueryResult, GQueryStats};

use graph_core::{canonical_code, CanonCode, Graph};

/// Codes of all connected one-edge-removed subgraphs of `g` — the direct
/// sub-fragments used by the discriminative test.
pub(crate) fn removal_codes(g: &Graph) -> Vec<CanonCode> {
    let mut out = Vec::new();
    if g.edge_count() <= 1 {
        return out;
    }
    for skip in g.edge_ids() {
        let keep: Vec<graph_core::EdgeId> = g.edge_ids().filter(|&e| e != skip).collect();
        let sub = graph_core::edge_subgraph(g, &keep);
        if sub.graph.is_connected() && sub.graph.vertex_count() > 0 {
            out.push(canonical_code(&sub.graph));
        }
    }
    out
}
