//! gIndex query processing: enumerate the query's frequent fragments,
//! intersect their support sets (candidate set `C_q`), then verify with
//! **naive** subgraph isomorphism — no location information exists to do
//! better, which is precisely the gap TreePi closes.

use crate::index::GIndex;
use graph_core::{canonical_code, edge_subgraph, for_each_connected_edge_subset, Graph};
use mining::{intersect_many, SupportSet};
use rustc_hash::FxHashSet;
use std::ops::ControlFlow;
use std::time::{Duration, Instant};

/// Per-query statistics (mirrors TreePi's `QueryStats` where applicable).
#[derive(Clone, Copy, Debug, Default)]
pub struct GQueryStats {
    /// Distinct indexed fragments found in the query.
    pub fragments_used: usize,
    /// Query subgraphs enumerated (after frequent-prefix pruning).
    pub enumerated: usize,
    /// `|C_q|` — candidates after filtering.
    pub filtered: usize,
    /// `|D_q|` — exact answers.
    pub answers: usize,
    /// Time spent enumerating fragments and filtering.
    pub t_filter: Duration,
    /// Time spent in naive verification.
    pub t_verify: Duration,
}

impl GQueryStats {
    /// Total processing time.
    pub fn total(&self) -> Duration {
        self.t_filter + self.t_verify
    }

    /// Record this query's funnel counters and stage timings into `shard`,
    /// under the **same names** TreePi uses so cross-system metric files
    /// line up column-for-column. gIndex has no partition, CDC-prune, or
    /// signature-filter stage, so those three spans get zero-duration
    /// observations and `funnel.pruned` equals `funnel.filtered` (every
    /// filtered candidate reaches verification).
    pub fn record_into(&self, shard: &obs::Shard) {
        shard.add(obs::names::QUERIES, 1);
        shard.add(obs::names::FILTERED, self.filtered as u64);
        shard.add(obs::names::PRUNED, self.filtered as u64);
        shard.add(obs::names::ANSWERS, self.answers as u64);
        shard.add("gindex.enumerated", self.enumerated as u64);
        shard.add("gindex.fragments_used", self.fragments_used as u64);
        shard.observe(obs::names::SPAN_PARTITION, Duration::ZERO);
        shard.observe(obs::names::SPAN_FILTER, self.t_filter);
        shard.observe(obs::names::SPAN_PRUNE, Duration::ZERO);
        shard.observe(obs::names::SPAN_SIG_FILTER, Duration::ZERO);
        shard.observe(obs::names::SPAN_VERIFY, self.t_verify);
    }
}

/// Result of a gIndex query.
#[derive(Clone, Debug)]
pub struct GQueryResult {
    /// Sorted ids of graphs containing the query.
    pub matches: Vec<u32>,
    /// Stage statistics.
    pub stats: GQueryStats,
}

impl GIndex {
    /// Candidate set `C_q`: graphs containing every indexed fragment of
    /// `q`. Exposed separately because Figure 10/11 plot `|C_q|` itself.
    pub fn candidates(&self, q: &Graph) -> (SupportSet, GQueryStats) {
        let mut stats = GQueryStats::default();
        let t = Instant::now();
        let max_l = self.params().psi.max_l;
        let mut used: FxHashSet<graph_core::CanonCode> = FxHashSet::default();
        let mut any_missing_edge = false;
        let mut enumerated = 0usize;

        // Enumerate connected edge subsets, pruning at subsets that are not
        // frequent fragments (apriori: all connected subgraphs of a frequent
        // fragment are frequent, so no indexed fragment is missed).
        let _ = for_each_connected_edge_subset(q, max_l, |edges| {
            enumerated += 1;
            let sub = edge_subgraph(q, edges);
            let code = canonical_code(&sub.graph);
            match self.fragment_by_code(&code) {
                Some(f) => {
                    if f.discriminative {
                        used.insert(code);
                    }
                    ControlFlow::Continue(())
                }
                None => {
                    if edges.len() == 1 {
                        // A single query edge unseen in the whole database:
                        // the support is provably empty.
                        any_missing_edge = true;
                        return ControlFlow::Break(());
                    }
                    // Not frequent ⟹ no frequent superset: prune by
                    // reporting "stop extending this subset". Our
                    // enumerator has no skip-subtree signal, so we simply
                    // continue; the code check keeps correctness, only
                    // costing extra enumeration.
                    ControlFlow::Continue(())
                }
            }
        });
        stats.enumerated = enumerated;

        let candidates = if any_missing_edge {
            Vec::new()
        } else {
            let sets: Vec<&[u32]> = used
                .iter()
                .map(|c| {
                    self.fragment_by_code(c)
                        .expect("used fragment")
                        .support
                        .as_slice()
                })
                .collect();
            intersect_many(&sets, self.db().len())
        };
        stats.fragments_used = used.len();
        stats.filtered = candidates.len();
        stats.t_filter = t.elapsed();
        (candidates, stats)
    }

    /// Full gIndex query: filter then naive verification.
    pub fn query(&self, q: &Graph) -> GQueryResult {
        self.query_obs(q, &obs::Shard::disabled())
    }

    /// [`Self::query`] recording stage spans and funnel counters into
    /// `shard` (see [`GQueryStats::record_into`]). The per-candidate
    /// isomorphism tests are counted as `graph.iso_tests`.
    pub fn query_obs(&self, q: &Graph, shard: &obs::Shard) -> GQueryResult {
        assert!(q.edge_count() > 0, "queries must have at least one edge");
        let (candidates, mut stats) = self.candidates(q);
        let t = Instant::now();
        let matches: Vec<u32> = candidates
            .into_iter()
            .filter(|&gid| {
                graph_core::is_subgraph_isomorphic_obs(q, &self.db()[gid as usize], shard)
            })
            .collect();
        stats.t_verify = t.elapsed();
        stats.answers = matches.len();
        stats.record_into(shard);
        GQueryResult { matches, stats }
    }

    /// Batch entry point mirroring `TreePiIndex::query_batch` so
    /// cross-system comparisons run both sides with the same work
    /// distribution (`threads = 0` means available parallelism). gIndex
    /// queries consume no randomness, so results are trivially identical
    /// at any thread count; queries are self-scheduled off a shared
    /// counter and returned in query order.
    pub fn query_batch(&self, queries: &[Graph], threads: usize) -> Vec<GQueryResult> {
        self.query_batch_obs(queries, threads, &obs::Registry::disabled())
    }

    /// [`Self::query_batch`] recording metrics into `registry`: per-worker
    /// shards merged at batch end (`engine.*` describes execution shape;
    /// everything else is thread-count invariant, exactly as for TreePi).
    /// Spins up a transient worker pool; callers issuing repeated batches
    /// should hold a [`graph_core::par::Pool`] and use
    /// [`Self::query_batch_pool_obs`].
    pub fn query_batch_obs(
        &self,
        queries: &[Graph],
        threads: usize,
        registry: &obs::Registry,
    ) -> Vec<GQueryResult> {
        let pool = graph_core::par::Pool::new(threads);
        self.query_batch_pool_obs(queries, &pool, registry)
    }

    /// [`Self::query_batch_obs`] on a caller-owned worker pool, reusing its
    /// threads instead of spawning per batch.
    pub fn query_batch_pool_obs(
        &self,
        queries: &[Graph],
        pool: &graph_core::par::Pool,
        registry: &obs::Registry,
    ) -> Vec<GQueryResult> {
        pool.ordered_map_obs(queries, registry, |q, shard| self.query_obs(q, shard))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::GIndexParams;
    use graph_core::graph_from;

    fn index() -> GIndex {
        let db = vec![
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1), (2, 3, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
            graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
        ];
        GIndex::build(db, GIndexParams::quick(4))
    }

    fn oracle(idx: &GIndex, q: &Graph) -> Vec<u32> {
        idx.db()
            .iter()
            .enumerate()
            .filter(|(_, g)| graph_core::is_subgraph_isomorphic(q, g))
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn query_matches_oracle() {
        let idx = index();
        let queries = [
            graph_from(&[0, 0], &[(0, 1, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]),
            graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
            graph_from(&[9, 9], &[(0, 1, 0)]),
        ];
        for (i, q) in queries.iter().enumerate() {
            let r = idx.query(q);
            assert_eq!(r.matches, oracle(&idx, q), "query {i}");
            assert!(r.stats.filtered >= r.stats.answers);
        }
    }

    #[test]
    fn candidates_contain_answers() {
        let idx = index();
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]);
        let (cands, _) = idx.candidates(&q);
        for a in oracle(&idx, &q) {
            assert!(cands.contains(&a));
        }
    }

    #[test]
    fn missing_edge_short_circuits() {
        let idx = index();
        let q = graph_from(&[7, 7], &[(0, 1, 3)]);
        let r = idx.query(&q);
        assert!(r.matches.is_empty());
        assert_eq!(r.stats.filtered, 0);
    }

    #[test]
    fn stats_track_fragments() {
        let idx = index();
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
        let r = idx.query(&q);
        assert!(r.stats.fragments_used >= 1);
        assert!(r.stats.enumerated >= r.stats.fragments_used);
    }

    #[test]
    fn obs_counters_reconcile_and_share_treepi_names() {
        let idx = index();
        let queries = vec![
            graph_from(&[0, 0], &[(0, 1, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[9, 9], &[(0, 1, 0)]),
        ];
        let run = |threads: usize| {
            let reg = obs::Registry::new();
            let results = idx.query_batch_obs(&queries, threads, &reg);
            (results, reg.drain())
        };
        let (results, m) = run(1);
        if !obs::COMPILED_IN {
            return;
        }
        assert_eq!(m.counter(obs::names::QUERIES), queries.len() as u64);
        let filtered: u64 = results.iter().map(|r| r.stats.filtered as u64).sum();
        let answers: u64 = results.iter().map(|r| r.stats.answers as u64).sum();
        assert_eq!(m.counter(obs::names::FILTERED), filtered);
        assert_eq!(m.counter(obs::names::ANSWERS), answers);
        // all five TreePi pipeline spans exist (partition/prune/sig are zeros)
        for name in obs::names::PIPELINE_SPANS {
            assert_eq!(
                m.span(name).expect("span present").count,
                queries.len() as u64,
                "{name}"
            );
        }
        for threads in [2, 8] {
            let (_, m2) = run(threads);
            assert_eq!(
                m2.deterministic_counters(),
                m.deterministic_counters(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn batch_matches_sequential_at_any_thread_count() {
        let idx = index();
        let queries = vec![
            graph_from(&[0, 0], &[(0, 1, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]),
            graph_from(&[9, 9], &[(0, 1, 0)]),
        ];
        let seq: Vec<Vec<u32>> = queries.iter().map(|q| idx.query(q).matches).collect();
        for threads in [1, 2, 8] {
            let batch = idx.query_batch(&queries, threads);
            assert_eq!(batch.len(), queries.len());
            for (i, r) in batch.iter().enumerate() {
                assert_eq!(r.matches, seq[i], "query {i}, threads {threads}");
            }
        }
    }
}
