//! gIndex construction (Yan, Yu & Han, SIGMOD'04), as configured in the
//! TreePi paper's §6.1: frequent subgraphs up to `maxL` edges under the
//! size-increasing support ψ(l), thinned to *discriminative* fragments.
//!
//! A fragment `x` is discriminative if the graphs containing all of `x`'s
//! already-indexed subfragments outnumber the graphs containing `x` itself
//! by at least γ_min: `|⋂_{y ⊂ x, y indexed} D_y| / |D_x| ≥ γ_min`.
//! Following gIndex's DFS-code tree, *all* frequent fragments stay in the
//! lookup structure (they guide query-time fragment enumeration), but only
//! discriminative ones contribute support sets to filtering.

use graph_core::{CanonCode, Graph};
use mining::{intersect_many, mine_frequent_subgraphs, MiningLimits, PsiFn, SupportSet};
use rustc_hash::FxHashMap;

/// One frequent fragment in the index.
#[derive(Clone, Debug)]
pub struct Fragment {
    /// The pattern graph.
    pub graph: Graph,
    /// Canonical code (lookup key).
    pub code: CanonCode,
    /// Sorted support set.
    pub support: SupportSet,
    /// Whether the fragment passed the discriminative test (only these
    /// filter queries; the rest only guide enumeration).
    pub discriminative: bool,
}

/// gIndex parameters (paper §6.1 defaults via [`GIndexParams::paper_default`]).
#[derive(Clone, Copy, Debug)]
pub struct GIndexParams {
    /// Size-increasing support function ψ(l).
    pub psi: PsiFn,
    /// Minimum discriminative ratio γ_min (paper value 2.0).
    pub gamma_min: f64,
    /// Mining safety limits.
    pub limits: MiningLimits,
}

impl GIndexParams {
    /// The paper's configuration for a database of `n` graphs: maxL = 10,
    /// γ_min = 2.0, Θ = 0.1·N.
    pub fn paper_default(n: usize) -> Self {
        Self {
            psi: PsiFn::paper_default(n),
            gamma_min: 2.0,
            limits: MiningLimits::default(),
        }
    }

    /// A small configuration for tests and quick experiments.
    pub fn quick(n: usize) -> Self {
        Self {
            psi: PsiFn {
                max_l: 4,
                theta: 0.5 * n as f64,
            },
            gamma_min: 2.0,
            limits: MiningLimits::default(),
        }
    }
}

/// Build statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct GBuildStats {
    /// Frequent fragments mined.
    pub mined: usize,
    /// Discriminative fragments (= index size, Figure 9's gIndex series).
    pub features: usize,
    /// Milliseconds spent in total.
    pub t_build_ms: u128,
}

/// The gIndex baseline.
pub struct GIndex {
    db: Vec<Graph>,
    fragments: Vec<Fragment>,
    by_code: FxHashMap<CanonCode, u32>,
    params: GIndexParams,
    stats: GBuildStats,
}

impl GIndex {
    /// Mine and select fragments over `db`.
    pub fn build(db: Vec<Graph>, params: GIndexParams) -> Self {
        let t0 = std::time::Instant::now();
        let (mined, _mstats) = mine_frequent_subgraphs(&db, &params.psi, &params.limits);
        let mined_count = mined.len();

        // Discriminative selection in size order. Sub-fragment supports are
        // approximated by the direct (one-edge-removed) ancestors that are
        // already selected — the binding constraints, since smaller
        // ancestors have superset supports.
        let mut fragments: Vec<Fragment> = Vec::with_capacity(mined.len());
        let mut selected_codes: FxHashMap<CanonCode, usize> = FxHashMap::default();
        for m in mined {
            let discriminative = if m.graph.edge_count() == 1 {
                true // size-1 fragments are always indexed (completeness)
            } else {
                let mut parent_sets: Vec<&[u32]> = Vec::new();
                for code in crate::removal_codes(&m.graph) {
                    if let Some(&i) = selected_codes.get(&code) {
                        parent_sets.push(&fragments[i].support);
                    }
                }
                let denom = m.support.len().max(1) as f64;
                let inter = if parent_sets.is_empty() {
                    db.len()
                } else {
                    intersect_many(&parent_sets, db.len()).len()
                };
                inter as f64 / denom >= params.gamma_min
            };
            if discriminative {
                selected_codes.insert(m.code.clone(), fragments.len());
            }
            fragments.push(Fragment {
                graph: m.graph,
                code: m.code,
                support: m.support,
                discriminative,
            });
        }

        let by_code = fragments
            .iter()
            .enumerate()
            .map(|(i, f)| (f.code.clone(), i as u32))
            .collect();
        let stats = GBuildStats {
            mined: mined_count,
            features: fragments.iter().filter(|f| f.discriminative).count(),
            t_build_ms: t0.elapsed().as_millis(),
        };
        Self {
            db,
            fragments,
            by_code,
            params,
            stats,
        }
    }

    /// The database.
    pub fn db(&self) -> &[Graph] {
        &self.db
    }

    /// All frequent fragments (discriminative and guide-only).
    pub fn fragments(&self) -> &[Fragment] {
        &self.fragments
    }

    /// Number of discriminative fragments — the index size reported in
    /// Figure 9.
    pub fn feature_count(&self) -> usize {
        self.stats.features
    }

    /// Configuration.
    pub fn params(&self) -> &GIndexParams {
        &self.params
    }

    /// Build statistics.
    pub fn stats(&self) -> &GBuildStats {
        &self.stats
    }

    /// Fragment lookup by canonical code.
    pub fn fragment_by_code(&self, code: &CanonCode) -> Option<&Fragment> {
        self.by_code.get(code).map(|&i| &self.fragments[i as usize])
    }

    /// Estimated heap bytes of the fragment set: pattern graphs, canonical
    /// codes, and support sets. Length-based, like
    /// [`graph_core::Graph::heap_bytes`].
    pub fn fragments_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.fragments
            .iter()
            .map(|f| {
                f.graph.heap_bytes()
                    + f.code.0.len() * size_of::<u32>()
                    + f.support.len() * size_of::<u32>()
            })
            .sum()
    }

    /// Estimated heap bytes of the code → fragment lookup map (keys are
    /// cloned codes).
    pub fn lookup_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.by_code
            .keys()
            .map(|code| size_of::<(CanonCode, u32)>() + code.0.len() * size_of::<u32>())
            .sum()
    }

    /// Total estimated heap bytes (database + fragments + lookup map).
    pub fn heap_bytes(&self) -> usize {
        self.db.iter().map(Graph::heap_bytes).sum::<usize>()
            + self.fragments_heap_bytes()
            + self.lookup_heap_bytes()
    }

    /// Record the heap estimates as `mem.gindex.*` gauges.
    pub fn record_mem_gauges(&self, registry: &obs::Registry) {
        registry.set_gauge(obs::names::GAUGE_GINDEX_TOTAL, self.heap_bytes() as u64);
        registry.set_gauge(
            obs::names::GAUGE_GINDEX_FRAGMENTS,
            self.fragments_heap_bytes() as u64,
        );
        registry.set_gauge(
            obs::names::GAUGE_GINDEX_LOOKUP,
            self.lookup_heap_bytes() as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::graph_from;

    fn tiny_db() -> Vec<Graph> {
        vec![
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
        ]
    }

    #[test]
    fn build_selects_fragments() {
        let db = tiny_db();
        let idx = GIndex::build(db, GIndexParams::quick(3));
        assert!(idx.feature_count() >= 1);
        assert!(idx.stats().mined >= idx.feature_count());
        // all size-1 fragments discriminative
        for f in idx.fragments() {
            if f.graph.edge_count() == 1 {
                assert!(f.discriminative);
            }
            // supports sorted & correct
            let brute: Vec<u32> = idx
                .db()
                .iter()
                .enumerate()
                .filter(|(_, g)| graph_core::is_subgraph_isomorphic(&f.graph, g))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(f.support, brute);
        }
    }

    #[test]
    fn heap_estimates_are_positive_and_consistent() {
        let idx = GIndex::build(tiny_db(), GIndexParams::quick(3));
        assert!(idx.fragments_heap_bytes() > 0);
        assert!(idx.lookup_heap_bytes() > 0);
        assert!(idx.heap_bytes() > idx.fragments_heap_bytes() + idx.lookup_heap_bytes());
        if obs::COMPILED_IN {
            let r = obs::Registry::new();
            idx.record_mem_gauges(&r);
            assert_eq!(
                r.snapshot().gauge(obs::names::GAUGE_GINDEX_TOTAL),
                Some(idx.heap_bytes() as u64)
            );
        }
    }

    #[test]
    fn lookup_round_trips() {
        let idx = GIndex::build(tiny_db(), GIndexParams::quick(3));
        for f in idx.fragments() {
            let found = idx.fragment_by_code(&f.code).expect("lookup");
            assert_eq!(found.support, f.support);
        }
    }

    #[test]
    fn discriminative_thinning_reduces_index() {
        // A redundant chain database: larger fragments have the same
        // support as their parents, so they are not discriminative.
        let db = vec![
            graph_from(&[0, 1, 2, 3], &[(0, 1, 0), (1, 2, 0), (2, 3, 0)]),
            graph_from(&[0, 1, 2, 3], &[(0, 1, 0), (1, 2, 0), (2, 3, 0)]),
        ];
        let idx = GIndex::build(db, GIndexParams::quick(2));
        let total = idx.fragments().len();
        assert!(idx.feature_count() < total, "nothing was thinned");
    }
}
