//! Property tests for the gIndex baseline: exactness against the scan and
//! candidate-set soundness on arbitrary databases.

use gindex::{GIndex, GIndexParams};
use graph_core::{ELabel, Graph, GraphBuilder, VLabel, VertexId};
use proptest::prelude::*;

fn arb_connected_graph(nmax: usize) -> impl Strategy<Value = Graph> {
    (2..=nmax).prop_flat_map(move |n| {
        let vlabels = proptest::collection::vec(0u32..3, n);
        let parents = proptest::collection::vec((0usize..nmax, 0u32..2), n - 1);
        let extras = proptest::collection::vec((0usize..nmax, 0usize..nmax, 0u32..2), 0..2);
        (vlabels, parents, extras).prop_map(move |(vl, ps, ex)| {
            let mut b = GraphBuilder::new();
            for l in &vl {
                b.add_vertex(VLabel(*l));
            }
            for (i, (p, el)) in ps.iter().enumerate() {
                b.add_edge(
                    VertexId((i + 1) as u32),
                    VertexId((p % (i + 1)) as u32),
                    ELabel(*el),
                )
                .expect("tree edge");
            }
            for (u, v, el) in ex {
                let (u, v) = (VertexId((u % n) as u32), VertexId((v % n) as u32));
                if u != v && !b.has_edge(u, v) {
                    let _ = b.add_edge(u, v, ELabel(el));
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn queries_are_exact(
        db in proptest::collection::vec(arb_connected_graph(6), 1..6),
        q in arb_connected_graph(4),
    ) {
        let idx = GIndex::build(db.clone(), GIndexParams::quick(db.len()));
        let truth: Vec<u32> = db
            .iter()
            .enumerate()
            .filter(|(_, g)| graph_core::is_subgraph_isomorphic(&q, g))
            .map(|(i, _)| i as u32)
            .collect();
        let r = idx.query(&q);
        prop_assert_eq!(r.matches, truth);
    }

    #[test]
    fn fragment_supports_are_exact(
        db in proptest::collection::vec(arb_connected_graph(5), 1..5),
    ) {
        let idx = GIndex::build(db.clone(), GIndexParams::quick(db.len()));
        for f in idx.fragments() {
            let brute: Vec<u32> = db
                .iter()
                .enumerate()
                .filter(|(_, g)| graph_core::is_subgraph_isomorphic(&f.graph, g))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(&f.support, &brute);
        }
    }
}
