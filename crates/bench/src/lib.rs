//! Shared fixtures for the Criterion benchmarks: deterministic datasets and
//! pre-built indexes sized so each Criterion iteration stays sub-second.

use datagen::{extract_queries, generate_chem, generate_synthetic, ChemParams, SyntheticParams};
use gindex::{GIndex, GIndexParams};
use graph_core::Graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use treepi::{TreePiIndex, TreePiParams};

/// Deterministic RNG for benchmarks.
pub fn bench_rng(salt: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0x7ee9 ^ salt)
}

/// A small AIDS-surrogate database.
pub fn chem_db(n: usize) -> Vec<Graph> {
    generate_chem(&ChemParams::sized(n), &mut bench_rng(1))
}

/// A small synthetic database with `labels` distinct vertex labels.
pub fn synthetic_db(n: usize, labels: u32) -> Vec<Graph> {
    let p = SyntheticParams {
        n_graphs: n,
        seed_size: 10.0,
        graph_size: 20.0,
        seed_count: (n / 8).max(20),
        vertex_labels: labels,
        edge_labels: 2,
    };
    generate_synthetic(&p, &mut bench_rng(2))
}

/// Build a TreePi index with the paper's parameters.
pub fn treepi_index(db: &[Graph]) -> TreePiIndex {
    TreePiIndex::build(db.to_vec(), TreePiParams::default())
}

/// Build a gIndex baseline with the paper's parameters.
pub fn gindex_index(db: &[Graph]) -> GIndex {
    GIndex::build(db.to_vec(), GIndexParams::paper_default(db.len()))
}

/// Query workload of `count` random `m`-edge connected subgraphs.
pub fn queries(db: &[Graph], m: usize, count: usize) -> Vec<Graph> {
    extract_queries(db, m, count, &mut bench_rng(3 + m as u64))
}
