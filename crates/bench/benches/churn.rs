//! Mixed-workload churn benchmark: what §7.1 maintenance costs a serving
//! process, and what the copy-on-write snapshot layer buys.
//!
//! Series:
//! - `query_only` vs `query_under_churn` at 1/2/8 workers: the same
//!   query batch, alone and interleaved with an 8-op churn round (queue +
//!   one snapshot apply) — the read-path tax of concurrent maintenance;
//! - `apply_batched` vs `apply_per_op`: 8 queued ops folded by one
//!   [`treepi::Engine::apply_pending`] against 8 immediate
//!   insert/remove calls — the N-ops-one-clone win of batched applies.
//!
//! Tombstoned slots accumulate across iterations (removes never shrink
//! the database vector), so per-apply clone cost creeps upward over a
//! long measurement; medians over short samples keep this second-order.
//! See EXPERIMENTS.md ("Churn benchmark") for methodology and the
//! single-core parity caveat.
//!
//! A measurement run (not `cargo test`'s `--test` smoke mode) also:
//! - drives a deterministic engine-level churn schedule plus one real
//!   mixed serve session (queries racing wire inserts/removes with
//!   background re-mining) and rewrites `BENCH_churn.json` at the repo
//!   root with the medians and the serve throughput;
//! - writes a curated `treepi.obs/v1` metrics file (default
//!   `BENCH_churn_metrics.json`, override with `CHURN_METRICS_OUT`)
//!   holding only counters that are deterministic for a fixed
//!   `CHURN_BENCH_GRAPHS` (funnel.*, maint.*, and the
//!   arrival-deterministic serve.* trio) — CI's churn-smoke job gates it
//!   with `metrics-diff --include-exempt` against
//!   `ci/churn-metrics-baseline.json`.

use bench::{chem_db, queries, treepi_index};
use criterion::{criterion_group, BenchmarkId, Criterion};
use graph_core::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use treepi::{Engine, QueryOptions};

/// Database size; CI shrinks it via `CHURN_BENCH_GRAPHS`.
fn db_size() -> usize {
    std::env::var("CHURN_BENCH_GRAPHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

fn workload(db: &[Graph]) -> Vec<Graph> {
    let mut qs = queries(db, 4, 12);
    qs.extend(queries(db, 8, 8));
    qs
}

/// One churn round: queue `ops/2` inserts (clones of database graphs) and
/// remove each inserted gid again, then fold everything with one apply.
/// Active count is unchanged; the database keeps its size plus tombstones.
fn churn_round(engine: &Engine, donors: &[Graph], rng: &mut ChaCha8Rng, ops: usize) {
    let mut inserted = Vec::with_capacity(ops / 2);
    for _ in 0..ops / 2 {
        let g = donors[rng.gen_range(0..donors.len())].clone();
        inserted.push(engine.queue_insert(g));
    }
    for gid in inserted {
        engine.queue_remove(gid);
    }
    engine.apply_pending();
}

fn bench_churn(c: &mut Criterion) {
    let db = chem_db(db_size());
    let qs = workload(&db);

    let mut group = c.benchmark_group("churn");
    group.sample_size(10);
    for threads in [1usize, 2, 8] {
        let engine = Engine::new(treepi_index(&db), threads);
        group.bench_with_input(BenchmarkId::new("query_only", threads), &qs, |b, qs| {
            b.iter(|| {
                let (r, _) = engine.query_batch(qs, QueryOptions::default(), 9);
                r.iter().map(|x| x.matches.len()).sum::<usize>()
            })
        });
        let mut rng = ChaCha8Rng::seed_from_u64(2007);
        group.bench_with_input(
            BenchmarkId::new("query_under_churn", threads),
            &qs,
            |b, qs| {
                b.iter(|| {
                    churn_round(&engine, &db, &mut rng, 8);
                    let (r, _) = engine.query_batch(qs, QueryOptions::default(), 9);
                    r.iter().map(|x| x.matches.len()).sum::<usize>()
                })
            },
        );
    }

    // Apply batching: the same 8 ops, one snapshot vs eight.
    let engine = Engine::new(treepi_index(&db), 2);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    group.bench_function("apply_batched_8", |b| {
        b.iter(|| {
            churn_round(&engine, &db, &mut rng, 8);
            engine.epoch()
        })
    });
    let engine = Engine::new(treepi_index(&db), 2);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    group.bench_function("apply_per_op_8", |b| {
        b.iter(|| {
            let mut inserted = Vec::with_capacity(4);
            for _ in 0..4 {
                inserted.push(engine.insert(db[rng.gen_range(0..db.len())].clone()));
            }
            for gid in inserted {
                engine.remove(gid);
            }
            engine.epoch()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_churn);

/// Median of `runs` timings of `f`, in ns.
fn median_ns(runs: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u128> = (0..runs)
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    (samples[samples.len() / 2]) as u64
}

/// Deterministic engine-level churn: 24 ops applied one at a time with
/// background re-mining at threshold 8, waiting out each re-mine so the
/// trigger schedule is timing-independent, then one metered query batch.
/// Returns the curated counters.
fn deterministic_churn_counters(db: &[Graph], qs: &[Graph]) -> obs::MetricSet {
    let registry = obs::Registry::new();
    let engine = Engine::with_remine(treepi_index(db), 2, 8);
    let mut rng = ChaCha8Rng::seed_from_u64(2007);
    let mut live: Vec<u32> = Vec::new();
    for _ in 0..24 {
        if live.is_empty() || rng.gen_bool(0.5) {
            live.push(engine.queue_insert(db[rng.gen_range(0..db.len())].clone()));
        } else {
            let i = rng.gen_range(0..live.len());
            engine.queue_remove(live.swap_remove(i));
        }
        engine.apply_pending();
        // Drain the re-mine after every apply: triggers then fire at
        // exactly every `threshold` repairs, independent of wall time.
        engine.wait_remine_idle();
    }
    let (_, _) = engine.query_batch_obs(qs, QueryOptions::default(), 9, &registry);
    let stats = engine.maint_stats();
    let drained = registry.drain();

    let mut out = obs::MetricSet::new();
    for (name, v) in drained.counters() {
        if name.starts_with("funnel.") {
            out.add(name, v);
        }
    }
    out.add(obs::names::MAINT_QUEUED, stats.queued);
    out.add(obs::names::MAINT_APPLIED, stats.applied);
    out.add(obs::names::MAINT_APPLY_BATCHES, stats.apply_batches);
    out.add(obs::names::MAINT_SNAPSHOT_SWAPS, stats.snapshot_swaps);
    out.add(obs::names::MAINT_REMINE_TRIGGERS, stats.remine_triggers);
    out.add(obs::names::MAINT_REMINES, stats.remines_completed);
    out
}

/// One real mixed serve session: a querier streaming the workload over a
/// socket while a mutator inserts/removes over the same wire protocol and
/// the engine re-mines in the background. Returns (queries, elapsed,
/// arrival-deterministic serve counters).
fn serve_mixed_session(db: &[Graph], qs: &[Graph]) -> (u64, std::time::Duration, obs::MetricSet) {
    use serve::protocol::ResponseBody;
    const OPS: usize = 30;
    const ROUNDS: usize = 6;

    let server = serve::Server::bind(
        "127.0.0.1:0",
        serve::ServeConfig {
            batch_window: std::time::Duration::from_micros(200),
            ..serve::ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let index = treepi_index(db);
    let handle = std::thread::spawn(move || {
        let engine = Engine::with_remine(index, 2, 8);
        let registry = obs::Registry::new();
        let report = server.run(&engine, &registry).expect("serve");
        (report, registry.drain(), engine)
    });

    let mutator_addr = addr.clone();
    let donors: Vec<Graph> = db.iter().take(8).cloned().collect();
    let mutator = std::thread::spawn(move || {
        let mut client =
            serve::Client::connect_retry(&mutator_addr, std::time::Duration::from_secs(5))
                .expect("mutator connect");
        let mut live: Vec<u32> = Vec::new();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for _ in 0..OPS {
            if live.is_empty() || rng.gen_bool(0.5) {
                match client
                    .insert(&donors[rng.gen_range(0..donors.len())])
                    .expect("insert")
                    .body
                {
                    ResponseBody::Inserted(gid) => live.push(gid),
                    other => panic!("expected insert ack, got {other:?}"),
                }
            } else {
                let i = rng.gen_range(0..live.len());
                let gid = live.swap_remove(i);
                match client.remove(gid).expect("remove").body {
                    ResponseBody::Removed(was) => assert!(was),
                    other => panic!("expected remove ack, got {other:?}"),
                }
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    });

    let mut client =
        serve::Client::connect_retry(&addr, std::time::Duration::from_secs(5)).expect("connect");
    let t0 = std::time::Instant::now();
    let mut served = 0u64;
    for _ in 0..ROUNDS {
        for q in qs {
            match client.query(q).expect("query").body {
                ResponseBody::Matches(_) => served += 1,
                other => panic!("expected matches, got {other:?}"),
            }
        }
    }
    let elapsed = t0.elapsed();
    mutator.join().expect("mutator");
    client.shutdown().expect("shutdown");
    let (report, drained, engine) = handle.join().expect("server");
    engine.wait_remine_idle();
    assert_eq!(report.maintenance, OPS as u64);

    // Only the arrival-deterministic trio goes into the gated set; batch
    // counts, cache hit/miss splits, and span timings depend on wall-clock
    // batching and stay out (the full drained set is for humans).
    let mut out = obs::MetricSet::new();
    for name in [
        obs::names::SERVE_REQUESTS,
        obs::names::SERVE_QUERIES,
        obs::names::SERVE_MAINTENANCE,
    ] {
        out.add(name, drained.counter(name));
    }
    (served, elapsed, out)
}

/// Re-time the headline series standalone and write `BENCH_churn.json`
/// (schema `treepi.bench.churn/v1`) plus the curated gate metrics file.
fn emit_json() {
    let db = chem_db(db_size());
    let qs = workload(&db);
    const RUNS: usize = 5;

    let mut rows: Vec<(String, u64)> = Vec::new();
    for threads in [1usize, 2, 8] {
        let engine = Engine::new(treepi_index(&db), threads);
        rows.push((
            format!("query_only/{threads}"),
            median_ns(RUNS, || {
                let (r, _) = engine.query_batch(&qs, QueryOptions::default(), 9);
                criterion::black_box(r.len());
            }),
        ));
        let mut rng = ChaCha8Rng::seed_from_u64(2007);
        rows.push((
            format!("query_under_churn/{threads}"),
            median_ns(RUNS, || {
                churn_round(&engine, &db, &mut rng, 8);
                let (r, _) = engine.query_batch(&qs, QueryOptions::default(), 9);
                criterion::black_box(r.len());
            }),
        ));
    }

    let mut metrics = deterministic_churn_counters(&db, &qs);
    let (served, elapsed, serve_counters) = serve_mixed_session(&db, &qs);
    metrics.merge(&serve_counters);
    let throughput = served as f64 / elapsed.as_secs_f64();

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"treepi.bench.churn/v1\",\n");
    json.push_str(&format!(
        "  \"graphs\": {},\n  \"queries\": {},\n",
        db.len(),
        qs.len()
    ));
    json.push_str(&format!(
        "  \"serve_mixed\": {{\"queries\": {served}, \"queries_per_sec\": {throughput:.1}}},\n"
    ));
    json.push_str("  \"series\": [\n");
    for (i, (name, ns)) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"median_ns\": {ns}}}{sep}\n"
        ));
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_churn.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    let metrics_path = std::env::var("CHURN_METRICS_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_churn_metrics.json"
        )
        .to_string()
    });
    match std::fs::write(&metrics_path, metrics.render_json()) {
        Ok(()) => println!("wrote {metrics_path}"),
        Err(e) => eprintln!("could not write {metrics_path}: {e}"),
    }
}

fn main() {
    benches();
    // `cargo test` runs bench binaries with `--test` as a smoke test: never
    // overwrite the committed JSON with unmeasured garbage there.
    if !std::env::args().any(|a| a == "--test") {
        emit_json();
    }
}
