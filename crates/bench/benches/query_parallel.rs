//! Batch query engine scaling: throughput of the batch query entry points
//! at 1/2/4/8 workers over a fixed mixed-size workload, plus the gIndex
//! batch baseline. Determinism is test-enforced elsewhere
//! (`treepi::engine`, `crates/treepi/tests/pool_prop.rs`); this group
//! measures the speedup the determinism contract is not allowed to cost.
//!
//! Series:
//! - `treepi_batch`: the default entry point (transient pool per batch);
//! - `treepi_batch_metered`: same with an enabled `obs::Registry`, bounding
//!   instrumentation overhead;
//! - `treepi_batch_scoped`: the retired scoped-thread implementation
//!   (`treepi::scoped_ref`), the pre-pool baseline;
//! - `treepi_batch_pooled`: a persistent [`treepi::Engine`] reused across
//!   iterations — what a serving process pays per batch;
//! - `gindex_batch`: the gIndex baseline on the shared pool path.
//!
//! Besides the human-readable criterion report, a measurement run (not
//! `cargo test`'s `--test` smoke mode) re-times the scoped/pooled/gindex
//! series standalone and rewrites `BENCH_query_parallel.json` at the repo
//! root with per-series median ns/query, so pooled-vs-scoped numbers are
//! machine-checkable without parsing bench stdout.

use bench::{chem_db, gindex_index, queries, treepi_index};
use criterion::{criterion_group, BenchmarkId, Criterion};
use treepi::QueryOptions;

fn workload(db: &[graph_core::Graph]) -> Vec<graph_core::Graph> {
    // Mixed query sizes so workers see uneven per-query cost — the
    // self-scheduling counter, not static chunking, is what's measured.
    let mut qs = queries(db, 4, 16);
    qs.extend(queries(db, 8, 16));
    qs.extend(queries(db, 12, 8));
    qs
}

fn bench_query_parallel(c: &mut Criterion) {
    let db = chem_db(200);
    let mut tp = treepi_index(&db);
    let gi = gindex_index(&db);
    let qs = workload(&db);

    let mut group = c.benchmark_group("query_parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("treepi_batch", threads), &qs, |b, qs| {
            b.iter(|| {
                let (results, _) = tp.query_batch(qs, QueryOptions::default(), threads, 9);
                results.iter().map(|r| r.matches.len()).sum::<usize>()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("treepi_batch_metered", threads),
            &qs,
            |b, qs| {
                b.iter(|| {
                    let registry = obs::Registry::new();
                    let (results, _) =
                        tp.query_batch_obs(qs, QueryOptions::default(), threads, 9, &registry);
                    let set = registry.drain();
                    results.iter().map(|r| r.matches.len()).sum::<usize>()
                        + set.counter(obs::names::ANSWERS) as usize
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("treepi_batch_scoped", threads),
            &qs,
            |b, qs| {
                b.iter(|| {
                    let (results, _) = treepi::scoped_ref::query_batch_scoped(
                        &tp,
                        qs,
                        QueryOptions::default(),
                        threads,
                        9,
                    );
                    results.iter().map(|r| r.matches.len()).sum::<usize>()
                })
            },
        );
        // Persistent engine: pool threads spawned once, outside the timed
        // loop — the per-batch cost a long-lived serving process sees.
        let engine = treepi::Engine::new(tp, threads);
        group.bench_with_input(
            BenchmarkId::new("treepi_batch_pooled", threads),
            &qs,
            |b, qs| {
                b.iter(|| {
                    let (results, _) = engine.query_batch(qs, QueryOptions::default(), 9);
                    results.iter().map(|r| r.matches.len()).sum::<usize>()
                })
            },
        );
        tp = engine.into_index();
        group.bench_with_input(BenchmarkId::new("gindex_batch", threads), &qs, |b, qs| {
            b.iter(|| {
                gi.query_batch(qs, threads)
                    .iter()
                    .map(|r| r.matches.len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_parallel);

/// Median of `runs` timings of `f`, in ns per query.
fn median_ns_per_query(runs: usize, n_queries: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u128> = (0..runs)
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    (samples[samples.len() / 2] / n_queries as u128) as u64
}

/// Re-time the headline series and rewrite `BENCH_query_parallel.json` at
/// the repo root (schema `treepi.bench.query_parallel/v1`).
fn emit_json() {
    let db = chem_db(200);
    let mut tp = treepi_index(&db);
    let gi = gindex_index(&db);
    let qs = workload(&db);
    const RUNS: usize = 5;

    let mut rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        rows.push((
            "treepi_batch_scoped",
            threads,
            median_ns_per_query(RUNS, qs.len(), || {
                let (r, _) = treepi::scoped_ref::query_batch_scoped(
                    &tp,
                    &qs,
                    QueryOptions::default(),
                    threads,
                    9,
                );
                criterion::black_box(r.len());
            }),
        ));
        let engine = treepi::Engine::new(tp, threads);
        rows.push((
            "treepi_batch_pooled",
            threads,
            median_ns_per_query(RUNS, qs.len(), || {
                let (r, _) = engine.query_batch(&qs, QueryOptions::default(), 9);
                criterion::black_box(r.len());
            }),
        ));
        tp = engine.into_index();
        rows.push((
            "gindex_batch",
            threads,
            median_ns_per_query(RUNS, qs.len(), || {
                criterion::black_box(gi.query_batch(&qs, threads).len());
            }),
        ));
    }

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"treepi.bench.query_parallel/v1\",\n");
    json.push_str(&format!("  \"queries\": {},\n  \"series\": [\n", qs.len()));
    for (i, (name, threads, ns)) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"threads\": {threads}, \"median_ns_per_query\": {ns}}}{sep}\n"
        ));
    }
    json.push_str("  ]\n}\n");

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_query_parallel.json"
    );
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    benches();
    // `cargo test` runs bench binaries with `--test` as a smoke test: never
    // overwrite the committed JSON with unmeasured garbage there.
    if !std::env::args().any(|a| a == "--test") {
        emit_json();
    }
}
