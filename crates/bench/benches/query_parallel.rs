//! Batch query engine scaling: throughput of `TreePiIndex::query_batch`
//! at 1/2/4/8 worker threads over a fixed mixed-size workload, plus the
//! gIndex batch baseline. Determinism is test-enforced elsewhere
//! (`treepi::engine`, `crates/treepi/tests/prop.rs`); this group measures
//! the speedup the determinism contract is not allowed to cost.
//!
//! The `treepi_batch_metered` series runs the same batch with an enabled
//! `obs::Registry`: comparing it against `treepi_batch` at the same thread
//! count bounds the instrumentation overhead, and `treepi_batch` itself
//! (disabled registry on the default entry point) bounds the disabled-path
//! cost against the pre-obs baseline.

use bench::{chem_db, gindex_index, queries, treepi_index};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treepi::QueryOptions;

fn bench_query_parallel(c: &mut Criterion) {
    let db = chem_db(200);
    let tp = treepi_index(&db);
    let gi = gindex_index(&db);
    // Mixed query sizes so workers see uneven per-query cost — the
    // self-scheduling counter, not static chunking, is what's measured.
    let mut qs = queries(&db, 4, 16);
    qs.extend(queries(&db, 8, 16));
    qs.extend(queries(&db, 12, 8));

    let mut group = c.benchmark_group("query_parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("treepi_batch", threads), &qs, |b, qs| {
            b.iter(|| {
                let (results, _) = tp.query_batch(qs, QueryOptions::default(), threads, 9);
                results.iter().map(|r| r.matches.len()).sum::<usize>()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("treepi_batch_metered", threads),
            &qs,
            |b, qs| {
                b.iter(|| {
                    let registry = obs::Registry::new();
                    let (results, _) =
                        tp.query_batch_obs(qs, QueryOptions::default(), threads, 9, &registry);
                    let set = registry.drain();
                    results.iter().map(|r| r.matches.len()).sum::<usize>()
                        + set.counter(obs::names::ANSWERS) as usize
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("gindex_batch", threads), &qs, |b, qs| {
            b.iter(|| {
                gi.query_batch(qs, threads)
                    .iter()
                    .map(|r| r.matches.len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_parallel);
criterion_main!(benches);
