//! Figure 9 micro-companion: feature-count and memory scaling of both
//! indexes as the database grows (the `experiments fig9` binary produces
//! the full table; this bench tracks build-path regressions).

use bench::{chem_db, gindex_index, treepi_index};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_index_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_index_size");
    group.sample_size(10);
    for n in [30usize, 60, 120] {
        let db = chem_db(n);
        // One-shot memory report alongside the timing series: estimated heap
        // footprint of each index over the same database.
        let tp = treepi_index(&db);
        let gi = gindex_index(&db);
        println!(
            "fig9_index_size/heap_bytes n={n}: treepi={} (features {}), gindex={} (features {})",
            tp.heap_bytes(),
            tp.feature_count(),
            gi.heap_bytes(),
            gi.feature_count(),
        );
        group.bench_with_input(BenchmarkId::new("treepi_build", n), &db, |b, db| {
            b.iter(|| treepi_index(db).feature_count())
        });
        group.bench_with_input(BenchmarkId::new("gindex_build", n), &db, |b, db| {
            b.iter(|| gindex_index(db).feature_count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_size);
criterion_main!(benches);
