//! Figures 10–13(b) micro-companion: end-to-end query latency of TreePi and
//! gIndex per query size, plus the brute-force scan floor.

use bench::{bench_rng, chem_db, gindex_index, queries, treepi_index};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treepi::scan_support;

fn bench_query(c: &mut Criterion) {
    let db = chem_db(200);
    let tp = treepi_index(&db);
    let gi = gindex_index(&db);
    let mut group = c.benchmark_group("fig12b_query_time");
    group.sample_size(20);
    for m in [4usize, 8, 12, 16] {
        let qs = queries(&db, m, 10);
        group.bench_with_input(BenchmarkId::new("treepi", m), &qs, |b, qs| {
            let mut rng = bench_rng(9);
            b.iter(|| {
                qs.iter()
                    .map(|q| tp.query(q, &mut rng).matches.len())
                    .sum::<usize>()
            })
        });
        group.bench_with_input(BenchmarkId::new("gindex", m), &qs, |b, qs| {
            b.iter(|| qs.iter().map(|q| gi.query(q).matches.len()).sum::<usize>())
        });
        group.bench_with_input(BenchmarkId::new("full_scan", m), &qs, |b, qs| {
            b.iter(|| qs.iter().map(|q| scan_support(&tp, q).len()).sum::<usize>())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
