//! Figures 12(a)/13(a) micro-companion: index construction time on the two
//! dataset families, split into mining and shrinking phases for TreePi.

use bench::{chem_db, synthetic_db, treepi_index};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mining::{mine_frequent_trees, shrink_features, MiningLimits, SigmaFn};

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12a_13a_construction");
    group.sample_size(10);
    let chem = chem_db(100);
    let synth = synthetic_db(100, 5);
    group.bench_function(BenchmarkId::new("treepi_full_build", "chem100"), |b| {
        b.iter(|| treepi_index(&chem).feature_count())
    });
    group.bench_function(BenchmarkId::new("treepi_full_build", "synth100L5"), |b| {
        b.iter(|| treepi_index(&synth).feature_count())
    });
    group.bench_function(BenchmarkId::new("mine_only", "chem100"), |b| {
        b.iter(|| {
            mine_frequent_trees(&chem, &SigmaFn::paper_default(), &MiningLimits::default())
                .0
                .len()
        })
    });
    group.bench_function(BenchmarkId::new("mine_and_shrink", "chem100"), |b| {
        b.iter(|| {
            let (mined, _) =
                mine_frequent_trees(&chem, &SigmaFn::paper_default(), &MiningLimits::default());
            shrink_features(mined, 1.5).len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
