//! Microbenchmarks of the primitives whose asymptotics the paper argues
//! about: tree canonical strings (polynomial) vs general-graph canonical
//! codes (exponential worst case), center finding, subtree embedding, and
//! support-set intersection.

use bench::{bench_rng, chem_db};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph_core::{canonical_code, edge_subgraph, random_connected_edge_subgraph};
use mining::intersect;
use tree_core::{canonical_string, center, center_positions, Tree};

fn fixtures(m: usize) -> Vec<Tree> {
    let db = chem_db(50);
    let mut rng = bench_rng(31);
    let mut out = Vec::new();
    let mut attempts = 0;
    while out.len() < 20 && attempts < 10_000 {
        attempts += 1;
        let g = &db[attempts % db.len()];
        if g.edge_count() < m {
            continue;
        }
        if let Some(edges) = random_connected_edge_subgraph(g, m, &mut rng) {
            let sub = edge_subgraph(g, &edges);
            if let Ok(t) = Tree::from_graph(sub.graph) {
                out.push(t);
            }
        }
    }
    assert!(!out.is_empty(), "no tree fixtures of size {m}");
    out
}

fn bench_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_primitives");
    for m in [4usize, 8] {
        let trees = fixtures(m);
        group.bench_with_input(
            BenchmarkId::new("tree_canonical_string", m),
            &trees,
            |b, ts| {
                b.iter(|| {
                    ts.iter()
                        .map(|t| canonical_string(t).tokens().len())
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("graph_canonical_code", m),
            &trees,
            |b, ts| {
                b.iter(|| {
                    ts.iter()
                        .map(|t| canonical_code(t.graph()).0.len())
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("tree_center", m), &trees, |b, ts| {
            b.iter(|| ts.iter().filter(|t| center(t).is_edge()).count())
        });
    }
    let db = chem_db(20);
    let trees = fixtures(4);
    group.bench_function("center_positions_4edge_in_20mols", |b| {
        b.iter(|| {
            let mut n = 0;
            for t in &trees[..5] {
                for g in &db {
                    n += center_positions(t, g).len();
                }
            }
            n
        })
    });
    let a: Vec<u32> = (0..10_000).step_by(3).collect();
    let bv: Vec<u32> = (0..10_000).step_by(7).collect();
    group.bench_function("support_intersection_10k", |b| {
        b.iter(|| intersect(&a, &bv).len())
    });
    group.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
