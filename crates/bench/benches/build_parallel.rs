//! Index-construction scaling: wall time of `TreePiIndex::build_with_threads`
//! at 1/2/4/8 worker threads over a fixed synthetic database. The parallel
//! miner and center-extraction stage are bit-for-bit deterministic at any
//! thread count (test-enforced in `crates/treepi/tests/build_prop.rs`,
//! `crates/treepi/tests/pool_prop.rs`, and `crates/mining/tests/prop.rs`);
//! this group measures the speedup that determinism contract is not allowed
//! to cost — the ISSUE acceptance bar is ≥ 2× at 8 threads over 1.
//!
//! The `build_metered` series runs the same build with an enabled
//! `obs::Registry`, bounding the instrumentation overhead of the build
//! path; `build_pooled` reuses one persistent worker pool across
//! iterations, isolating the per-build thread spawn/join cost that the
//! threads entry point still pays.

use bench::synthetic_db;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treepi::{TreePiIndex, TreePiParams};

fn bench_build_parallel(c: &mut Criterion) {
    let db = synthetic_db(300, 4);

    let mut group = c.benchmark_group("build_parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("build", threads), &db, |b, db| {
            b.iter(|| {
                let idx =
                    TreePiIndex::build_with_threads(db.clone(), TreePiParams::default(), threads);
                idx.feature_count()
            })
        });
        group.bench_with_input(BenchmarkId::new("build_metered", threads), &db, |b, db| {
            b.iter(|| {
                let registry = obs::Registry::new();
                let shard = registry.shard();
                let idx = TreePiIndex::build_with_threads_obs(
                    db.clone(),
                    TreePiParams::default(),
                    threads,
                    &shard,
                );
                registry.absorb(shard);
                idx.feature_count() + registry.drain().counter("build.features") as usize
            })
        });
        let pool = graph_core::par::Pool::new(threads);
        group.bench_with_input(BenchmarkId::new("build_pooled", threads), &db, |b, db| {
            b.iter(|| {
                let idx = TreePiIndex::build_with_pool_obs(
                    db.clone(),
                    TreePiParams::default(),
                    &pool,
                    &obs::Shard::disabled(),
                );
                idx.feature_count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build_parallel);
criterion_main!(benches);
