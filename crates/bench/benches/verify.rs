//! Verification benchmark: what the neighborhood-signature kill stage
//! buys on hard queries, and what selectivity-ordered reconstruction
//! changes about verify-stage time.
//!
//! Series:
//! - `hard_on` vs `hard_off` at 1/2/8 workers: the same hard workload
//!   (large extracted subgraphs, preferring cyclic ones, plus
//!   label-perturbed near-misses) under the default full-enumeration
//!   filter with the signature stage on and off;
//! - `weakfilter_on` vs `weakfilter_off`: the same workload under the
//!   `SfMode::PartitionOnly` ablation filter. The full-enumeration
//!   filter subsumes most signature checks (every frequent star around
//!   a query vertex is already demanded by support intersection), so
//!   kills there come only from *infrequent* neighborhoods; the weak
//!   filter leaves the whole job to the signature stage, which is where
//!   its kill rate — and the time saved in CDC + reconstruction — shows.
//!
//! Answers are asserted identical on/off for both modes before anything
//! is timed.
//!
//! A measurement run (not `cargo test`'s `--test` smoke mode) also:
//! - rewrites `BENCH_verify.json` at the repo root with the medians and
//!   per-mode kill rates;
//! - writes a curated `treepi.obs/v1` metrics file (default
//!   `BENCH_verify_metrics.json`, override with `VERIFY_METRICS_OUT`)
//!   holding only counters that are deterministic for a fixed
//!   `VERIFY_BENCH_GRAPHS` (the funnel.* namespace plus the sig-gate
//!   kill counters, summed over one metered batch per mode) — CI's
//!   verify-filter leg gates it with `metrics-diff --include-exempt`
//!   against `ci/verify-metrics-baseline.json`.

use bench::{bench_rng, chem_db, queries, treepi_index};
use criterion::{criterion_group, BenchmarkId, Criterion};
use graph_core::{Graph, GraphBuilder, VLabel};
use rand::Rng;
use treepi::{Engine, QueryOptions, SfMode};

/// Database size; CI shrinks it via `VERIFY_BENCH_GRAPHS`.
fn db_size() -> usize {
    std::env::var("VERIFY_BENCH_GRAPHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Rebuild `g` with one vertex's label swapped to another label present
/// in the graph. The multiset of labels barely moves (support-set filters
/// often still pass) but the neighborhood around the swap changes — the
/// shape of candidate that survives the funnel yet cannot embed, which
/// is exactly what the signature stage is for.
fn perturb_labels(g: &Graph, rng: &mut impl Rng) -> Graph {
    let n = g.vertex_count();
    let mut labels: Vec<VLabel> = (0..n)
        .map(|v| g.vlabel(graph_core::VertexId(v as u32)))
        .collect();
    for _ in 0..16 {
        let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if labels[i] != labels[j] {
            labels[i] = labels[j];
            break;
        }
    }
    let mut b = GraphBuilder::new();
    for &l in &labels {
        b.add_vertex(l);
    }
    for e in g.edges() {
        b.add_edge(e.u, e.v, e.label).expect("edge copy");
    }
    b.build()
}

/// Hard workload: large extracted subgraphs (cyclic ones first), mid and
/// small sizes, plus a label-perturbed near-miss variant of each.
fn hard_workload(db: &[Graph]) -> Vec<Graph> {
    let mut rng = bench_rng(41);
    let big = queries(db, 10, 24);
    let mut qs: Vec<Graph> = big
        .iter()
        .filter(|q| q.edge_count() >= q.vertex_count())
        .cloned()
        .collect();
    qs.extend(big);
    qs.extend(queries(db, 8, 8));
    qs.extend(queries(db, 4, 16));
    let near_miss: Vec<Graph> = qs.iter().map(|q| perturb_labels(q, &mut rng)).collect();
    qs.extend(near_miss);
    qs
}

fn opts(sf: SfMode, sig: bool) -> QueryOptions {
    QueryOptions {
        sf_mode: sf,
        use_sig_filter: sig,
        ..QueryOptions::default()
    }
}

const MODES: [(&str, SfMode); 2] = [
    ("hard", SfMode::FullEnumeration),
    ("weakfilter", SfMode::PartitionOnly),
];

fn bench_verify(c: &mut Criterion) {
    let db = chem_db(db_size());
    let qs = hard_workload(&db);

    let mut group = c.benchmark_group("verify");
    group.sample_size(10);
    for threads in [1usize, 2, 8] {
        let engine = Engine::new(treepi_index(&db), threads);
        for (mode, sf) in MODES {
            // The filter is an optimization, never a semantics knob:
            // identical answers on and off, or the numbers mean nothing.
            let (on, _) = engine.query_batch(&qs, opts(sf, true), 9);
            let (off, _) = engine.query_batch(&qs, opts(sf, false), 9);
            for (i, (a, b)) in on.iter().zip(&off).enumerate() {
                assert_eq!(
                    a.matches, b.matches,
                    "{mode}, query {i}: filter changed answers"
                );
            }
            group.bench_with_input(
                BenchmarkId::new(format!("{mode}_on"), threads),
                &qs,
                |b, qs| {
                    b.iter(|| {
                        let (r, _) = engine.query_batch(qs, opts(sf, true), 9);
                        r.iter().map(|x| x.matches.len()).sum::<usize>()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{mode}_off"), threads),
                &qs,
                |b, qs| {
                    b.iter(|| {
                        let (r, _) = engine.query_batch(qs, opts(sf, false), 9);
                        r.iter().map(|x| x.matches.len()).sum::<usize>()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_verify);

/// Median of `runs` timings of `f`, in ns.
fn median_ns(runs: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u128> = (0..runs)
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    (samples[samples.len() / 2]) as u64
}

/// One metered filter-on batch per mode: the funnel counters
/// (thread-invariant by the determinism contract) plus the two
/// center-gate kill counters, summed across both modes for the gate
/// file; per-mode (killed, filtered) pairs for the kill rates.
fn deterministic_verify_counters(
    db: &[Graph],
    qs: &[Graph],
) -> (obs::MetricSet, Vec<(String, u64, u64)>) {
    let registry = obs::Registry::new();
    let engine = Engine::new(treepi_index(db), 2);
    let mut per_mode = Vec::new();
    let mut prev_killed = 0u64;
    let mut prev_filtered = 0u64;
    for (mode, sf) in MODES {
        let (_, _) = engine.query_batch_obs(qs, opts(sf, true), 9, &registry);
        let snap = registry.snapshot();
        let killed = snap.counter(obs::names::SIG_KILLED);
        let filtered = snap.counter(obs::names::FILTERED);
        per_mode.push((
            mode.to_string(),
            killed - prev_killed,
            filtered - prev_filtered,
        ));
        prev_killed = killed;
        prev_filtered = filtered;
    }
    let drained = registry.drain();

    let mut out = obs::MetricSet::new();
    for (name, v) in drained.counters() {
        if name.starts_with("funnel.") || name.ends_with("center_sig_kills") {
            out.add(name, v);
        }
    }
    (out, per_mode)
}

/// Re-time the headline series standalone and write `BENCH_verify.json`
/// (schema `treepi.bench.verify/v1`) plus the curated gate metrics file.
fn emit_json() {
    let db = chem_db(db_size());
    let qs = hard_workload(&db);
    const RUNS: usize = 5;

    let mut rows: Vec<(String, u64)> = Vec::new();
    for threads in [1usize, 2, 8] {
        let engine = Engine::new(treepi_index(&db), threads);
        for (mode, sf) in MODES {
            for (suffix, sig) in [("on", true), ("off", false)] {
                rows.push((
                    format!("{mode}_{suffix}/{threads}"),
                    median_ns(RUNS, || {
                        let (r, _) = engine.query_batch(&qs, opts(sf, sig), 9);
                        criterion::black_box(r.len());
                    }),
                ));
            }
        }
    }

    let (metrics, per_mode) = deterministic_verify_counters(&db, &qs);
    let total_killed: u64 = per_mode.iter().map(|(_, k, _)| k).sum();
    assert!(
        total_killed > 0,
        "hard workload produced zero signature kills — the stage is dead weight here"
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"treepi.bench.verify/v1\",\n");
    json.push_str(&format!(
        "  \"graphs\": {},\n  \"queries\": {},\n",
        db.len(),
        qs.len()
    ));
    json.push_str("  \"funnel\": [\n");
    for (i, (mode, killed, filtered)) in per_mode.iter().enumerate() {
        let rate = *killed as f64 / (*filtered).max(1) as f64;
        let sep = if i + 1 == per_mode.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"mode\": \"{mode}\", \"filtered\": {filtered}, \"sig_killed\": {killed}, \"kill_rate\": {rate:.4}}}{sep}\n"
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"series\": [\n");
    for (i, (name, ns)) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"median_ns\": {ns}}}{sep}\n"
        ));
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_verify.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    let metrics_path = std::env::var("VERIFY_METRICS_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_verify_metrics.json"
        )
        .to_string()
    });
    match std::fs::write(&metrics_path, metrics.render_json()) {
        Ok(()) => println!("wrote {metrics_path}"),
        Err(e) => eprintln!("could not write {metrics_path}: {e}"),
    }
}

fn main() {
    benches();
    // `cargo test` runs bench binaries with `--test` as a smoke test: never
    // overwrite the committed JSON with unmeasured garbage there.
    if !std::env::args().any(|a| a == "--test") {
        emit_json();
    }
}
