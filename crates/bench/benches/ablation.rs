//! Ablation benches for the design choices DESIGN.md calls out: Center
//! Distance pruning, reconstruction-based verification, the SF_q
//! construction policy, and δ.

use bench::{bench_rng, chem_db, queries, treepi_index};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use treepi::{QueryOptions, SfMode};

fn bench_ablation(c: &mut Criterion) {
    let db = chem_db(200);
    let tp = treepi_index(&db);
    let qs = queries(&db, 12, 10);
    let configs: Vec<(&str, QueryOptions)> = vec![
        ("full", QueryOptions::default()),
        (
            "no_cdc",
            QueryOptions {
                use_cdc: false,
                ..QueryOptions::default()
            },
        ),
        (
            "naive_verify",
            QueryOptions {
                use_reconstruction: false,
                ..QueryOptions::default()
            },
        ),
        (
            "sf_partition_only",
            QueryOptions {
                sf_mode: SfMode::PartitionOnly,
                ..QueryOptions::default()
            },
        ),
        (
            "delta_1",
            QueryOptions {
                delta_override: Some(1),
                ..QueryOptions::default()
            },
        ),
    ];
    let mut group = c.benchmark_group("ablation_query_pipeline");
    group.sample_size(20);
    for (name, cfg) in configs {
        group.bench_with_input(BenchmarkId::new("m12", name), &qs, |b, qs| {
            let mut rng = bench_rng(17);
            b.iter(|| {
                qs.iter()
                    .map(|q| tp.query_with(q, cfg, &mut rng).matches.len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
