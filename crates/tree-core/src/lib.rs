//! Free labeled trees: the feature class of the TreePi index.
//!
//! - [`tree`]: the validated [`Tree`] type;
//! - [`mod@center`]: tree centers by leaf peeling (paper Theorem 1);
//! - [`canonical`]: canonical strings computable in polynomial time
//!   (paper §4.2.2), the index keys;
//! - [`embed`]: embedding enumeration with center tracking — the location
//!   information that distinguishes TreePi from prior indexes.

#![warn(missing_docs)]

pub mod canonical;
pub mod center;
pub mod embed;
pub mod tree;

pub use canonical::{canonical_string, canonical_string_rooted, CanonString};
pub use center::{center, center_by_eccentricity, Center};
pub use embed::{
    center_positions, center_positions_obs, for_each_embedding_centered, is_subtree_of, CenterPos,
    CenteredMatcher,
};
pub use tree::{tree_from, NotATree, Tree};
