//! Embedding feature trees into database graphs, tracking where the
//! embeddings are *centered*.
//!
//! This is the location information TreePi stores (paper §4.2.1): for each
//! feature tree `t` and each graph `g` containing it, the set of vertices
//! (or edges, for bicentral `t`) of `g` at which some embedding of `t` is
//! centered. The pruning and verification stages never need full
//! embeddings, only these centers — which is what makes the location store
//! fit in memory where gIndex had to discard occurrence information.

use crate::center::{center, Center};
use crate::tree::Tree;
use graph_core::{for_each_embedding_pinned, for_each_embedding_rooted, EdgeId, Graph, VertexId};
use std::ops::ControlFlow;

/// A position in a *host graph* where a feature-tree embedding is centered.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CenterPos {
    /// Image of a vertex center.
    Vertex(VertexId),
    /// Image of an edge center.
    Edge(EdgeId),
}

impl CenterPos {
    /// Representative vertices of the position (1 for a vertex, the two
    /// endpoints for an edge). Distances between positions are measured
    /// between representatives.
    pub fn representatives(&self, g: &Graph) -> smallvec::SmallVec<[VertexId; 2]> {
        match *self {
            CenterPos::Vertex(v) => smallvec::smallvec![v],
            CenterPos::Edge(e) => {
                let edge = g.edge(e);
                smallvec::smallvec![edge.u, edge.v]
            }
        }
    }
}

/// All positions in `g` at which some embedding of `t` is centered.
///
/// Exhaustive (every position is found): soundness of Center Distance
/// Constraint pruning requires that the center of the *true* embedding of
/// each partitioned feature tree is among the stored positions.
pub fn center_positions(t: &Tree, g: &Graph) -> Vec<CenterPos> {
    center_positions_obs(t, g, &obs::Shard::disabled())
}

/// [`center_positions`] with the enumeration work tallied on `shard`:
/// `tree.embed.anchor_probes` counts label-matched anchor candidates whose
/// rooted search actually ran, `tree.embed.centers_found` counts positions
/// returned. Both are per-(tree, graph) work, independent of threading.
pub fn center_positions_obs(t: &Tree, g: &Graph, shard: &obs::Shard) -> Vec<CenterPos> {
    let mut out = Vec::new();
    let mut probes = 0u64;
    match center(t) {
        Center::Vertex(c) => {
            let want = t.graph().vlabel(c);
            for v in g.vertices() {
                if g.vlabel(v) != want {
                    continue;
                }
                probes += 1;
                let mut hit = false;
                let _ = for_each_embedding_rooted(t.graph(), g, c, v, |_| {
                    hit = true;
                    ControlFlow::Break(())
                });
                if hit {
                    out.push(CenterPos::Vertex(v));
                }
            }
        }
        Center::Edge(ce) => {
            let cedge = t.graph().edge(ce);
            for ge in g.edge_ids() {
                let gedge = g.edge(ge);
                if gedge.label != cedge.label {
                    continue;
                }
                probes += 1;
                let mut hit = false;
                // Try both orientations of the center edge onto the host
                // edge; the host edge is the center image either way.
                for (a, b) in [(gedge.u, gedge.v), (gedge.v, gedge.u)] {
                    let _ = for_each_embedding_pinned(
                        t.graph(),
                        g,
                        &[(cedge.u, a), (cedge.v, b)],
                        |_| {
                            hit = true;
                            ControlFlow::Break(())
                        },
                    );
                    if hit {
                        break;
                    }
                }
                if hit {
                    out.push(CenterPos::Edge(ge));
                }
            }
        }
    }
    shard.add("tree.embed.anchor_probes", probes);
    shard.add("tree.embed.centers_found", out.len() as u64);
    out
}

/// Enumerate embeddings of `t` into `g` whose center maps to `pos`,
/// invoking `f` with the vertex mapping (tree vertex i → `mapping[i]`).
///
/// For an edge position both orientations of the center edge are tried.
/// This is the verification stage's rooted retrieval (paper §5.3.2). Hot
/// callers probing one tree against many (graph, position) pairs should
/// hold a [`CenteredMatcher`] instead.
pub fn for_each_embedding_centered<F>(t: &Tree, g: &Graph, pos: CenterPos, f: F) -> ControlFlow<()>
where
    F: FnMut(&[VertexId]) -> ControlFlow<()>,
{
    CenteredMatcher::new(t).for_each_embedding_centered(g, pos, f)
}

/// A feature tree prepared for repeated centered-embedding retrieval: the
/// search plan (rooted at the tree's center) is computed once and reused
/// for every candidate graph and stored center position.
pub struct CenteredMatcher<'t> {
    tree: &'t Tree,
    center: Center,
    prepared: graph_core::iso::PreparedPattern<'t>,
}

impl<'t> CenteredMatcher<'t> {
    /// Prepare `t` for centered retrieval.
    pub fn new(t: &'t Tree) -> Self {
        let c = center(t);
        let root = match c {
            Center::Vertex(v) => v,
            Center::Edge(e) => t.graph().edge(e).u,
        };
        Self {
            tree: t,
            center: c,
            prepared: graph_core::iso::PreparedPattern::new(t.graph(), Some(root)),
        }
    }

    /// The prepared tree.
    pub fn tree(&self) -> &Tree {
        self.tree
    }

    /// Enumerate embeddings into `g` centered at `pos` (both orientations
    /// for edge centers).
    pub fn for_each_embedding_centered<F>(
        &self,
        g: &Graph,
        pos: CenterPos,
        mut f: F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&[VertexId]) -> ControlFlow<()>,
    {
        match (self.center, pos) {
            (Center::Vertex(c), CenterPos::Vertex(v)) => {
                self.prepared.for_each_embedding_pinned(g, &[(c, v)], f)
            }
            (Center::Edge(ce), CenterPos::Edge(ge)) => {
                let cedge = self.tree.graph().edge(ce);
                let gedge = g.edge(ge);
                if gedge.label != cedge.label {
                    return ControlFlow::Continue(());
                }
                for (a, b) in [(gedge.u, gedge.v), (gedge.v, gedge.u)] {
                    self.prepared.for_each_embedding_pinned(
                        g,
                        &[(cedge.u, a), (cedge.v, b)],
                        &mut f,
                    )?;
                }
                ControlFlow::Continue(())
            }
            // Mismatched kinds can never align a center onto the position.
            _ => ControlFlow::Continue(()),
        }
    }
}

/// Whether tree `a` is a subtree of tree `b` (used by index shrinking and
/// delete maintenance; the paper notes tree-in-tree tests are faster than
/// graph-in-graph).
pub fn is_subtree_of(a: &Tree, b: &Tree) -> bool {
    graph_core::is_subgraph_isomorphic(a.graph(), b.graph())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::tree_from;
    use graph_core::graph_from;

    #[test]
    fn vertex_center_positions_on_path() {
        // Feature: path a-b-a centered at b. Host: path a-b-a-b-a.
        let t = tree_from(&[1, 2, 1], &[(0, 1, 0), (1, 2, 0)]);
        let g = graph_from(
            &[1, 2, 1, 2, 1],
            &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 4, 0)],
        );
        let pos = center_positions(&t, &g);
        assert_eq!(
            pos,
            vec![
                CenterPos::Vertex(VertexId(1)),
                CenterPos::Vertex(VertexId(3))
            ]
        );
    }

    #[test]
    fn edge_center_positions() {
        // Feature: single edge a-b (bicentral). Host has two such edges.
        let t = tree_from(&[1, 2], &[(0, 1, 5)]);
        let g = graph_from(&[1, 2, 1, 2], &[(0, 1, 5), (1, 2, 6), (2, 3, 5)]);
        let pos = center_positions(&t, &g);
        assert_eq!(
            pos,
            vec![CenterPos::Edge(EdgeId(0)), CenterPos::Edge(EdgeId(2))]
        );
    }

    #[test]
    fn no_positions_when_absent() {
        let t = tree_from(&[9, 9], &[(0, 1, 0)]);
        let g = graph_from(&[1, 2], &[(0, 1, 0)]);
        assert!(center_positions(&t, &g).is_empty());
    }

    #[test]
    fn centered_embeddings_are_centered() {
        let t = tree_from(&[1, 2, 1], &[(0, 1, 0), (1, 2, 0)]);
        let g = graph_from(
            &[1, 2, 1, 2, 1],
            &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 4, 0)],
        );
        let mut count = 0;
        let _ = for_each_embedding_centered(&t, &g, CenterPos::Vertex(VertexId(1)), |m| {
            assert_eq!(m[1], VertexId(1)); // tree center is vertex 1
            count += 1;
            ControlFlow::Continue(())
        });
        // leaves 0 and 2 of the host flank vertex 1: two embeddings (swap)
        assert_eq!(count, 2);
    }

    #[test]
    fn centered_embeddings_edge_orientations() {
        // Bicentral path x-a-b-y with distinct ends; host identical.
        let t = tree_from(&[7, 1, 2, 8], &[(0, 1, 0), (1, 2, 3), (2, 3, 0)]);
        let g = graph_from(&[7, 1, 2, 8], &[(0, 1, 0), (1, 2, 3), (2, 3, 0)]);
        let pos = center_positions(&t, &g);
        assert_eq!(pos, vec![CenterPos::Edge(EdgeId(1))]);
        let mut count = 0;
        let _ = for_each_embedding_centered(&t, &g, pos[0], |_| {
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn symmetric_edge_center_counts_both_orientations() {
        // Symmetric single-edge pattern a-a on host edge a-a: both
        // orientations are distinct embeddings.
        let t = tree_from(&[1, 1], &[(0, 1, 0)]);
        let g = graph_from(&[1, 1], &[(0, 1, 0)]);
        let mut count = 0;
        let _ = for_each_embedding_centered(&t, &g, CenterPos::Edge(EdgeId(0)), |_| {
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn obs_variant_counts_probes_and_centers() {
        let t = tree_from(&[1, 2, 1], &[(0, 1, 0), (1, 2, 0)]);
        let g = graph_from(
            &[1, 2, 1, 2, 1],
            &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 4, 0)],
        );
        let shard = obs::Shard::detached(true);
        let pos = center_positions_obs(&t, &g, &shard);
        assert_eq!(pos.len(), 2);
        let set = shard.into_set();
        // Hosts 1 and 3 carry the center label 2.
        assert_eq!(set.counter("tree.embed.anchor_probes"), 2);
        assert_eq!(set.counter("tree.embed.centers_found"), 2);
    }

    #[test]
    fn subtree_check() {
        let small = tree_from(&[1, 2], &[(0, 1, 0)]);
        let big = tree_from(&[2, 1, 3], &[(1, 0, 0), (0, 2, 4)]);
        assert!(is_subtree_of(&small, &big));
        assert!(!is_subtree_of(&big, &small));
    }

    #[test]
    fn positions_in_cyclic_host() {
        // Star feature centered at hub; host is a wheel-ish graph.
        let t = tree_from(&[0, 1, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 0)]);
        let g = graph_from(
            &[0, 1, 1, 1, 0],
            &[(0, 1, 0), (0, 2, 0), (0, 3, 0), (1, 2, 0), (4, 1, 0)],
        );
        let pos = center_positions(&t, &g);
        assert_eq!(pos, vec![CenterPos::Vertex(VertexId(0))]);
    }
}
