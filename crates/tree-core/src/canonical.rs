//! Tree canonical form and string representation (paper §4.2.2).
//!
//! Every node of a rooted tree is represented by the 2-tuple `(Le, Lv)` —
//! the label of the edge to its parent and its own label (the root gets an
//! empty `Le`). Sibling subtrees are ordered by comparing `Le`, then `Lv`,
//! then recursively their children left-to-right; sorting every sibling
//! group by that order yields the canonical form, and a traversal emits a
//! unique string. Rooting at the tree's center (unique by Theorem 1) makes
//! the string a canonical form of the *free* tree, computable in polynomial
//! time — the property that makes tree features cheap to look up where
//! general graph features need exponential-time canonization.
//!
//! Bicentral trees are canonicalized as the ordered pair of half-trees
//! hanging off the center edge.

use crate::center::{center, Center};
use crate::tree::Tree;
use graph_core::VertexId;

/// Canonical string of a tree: equal iff the trees are isomorphic as free
/// labeled trees. Used as the feature-index key.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CanonString(pub Vec<u32>);

impl CanonString {
    /// Raw tokens (for serialization).
    pub fn tokens(&self) -> &[u32] {
        &self.0
    }

    /// Heap bytes held by the token vector (length-based).
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.0.len() * std::mem::size_of::<u32>()
    }
}

// Token tags. Labels are offset so they never collide with tags.
const OPEN: u32 = 0;
const CLOSE: u32 = 1;
const VERTEX_ROOTED: u32 = 2;
const EDGE_ROOTED: u32 = 3;
const LABEL_BASE: u32 = 4;

/// Recursive canonical encoding of the subtree rooted at `v`, entered via
/// edge label `le` (`None` for the root), excluding `parent`.
///
/// Encoding: `OPEN le lv <sorted child encodings...> CLOSE`, which realizes
/// the paper's order (compare `Le`, then `Lv`, then subtrees left-to-right)
/// because the encoding starts with `le, lv` and lexicographic comparison
/// of the flattened child encodings equals recursive subtree comparison.
fn encode(t: &Tree, v: VertexId, parent: Option<VertexId>, le: Option<u32>, out: &mut Vec<u32>) {
    let g = t.graph();
    out.push(OPEN);
    out.push(le.map_or(OPEN, |l| l + LABEL_BASE));
    out.push(g.vlabel(v).0 + LABEL_BASE);
    let mut kids: Vec<Vec<u32>> = Vec::new();
    for &(w, e) in g.neighbors(v) {
        if Some(w) == parent {
            continue;
        }
        let mut enc = Vec::new();
        encode(t, w, Some(v), Some(g.edge(e).label.0), &mut enc);
        kids.push(enc);
    }
    kids.sort();
    for k in kids {
        out.extend(k);
    }
    out.push(CLOSE);
}

/// Canonical string of the free tree `t`, rooted at its center.
pub fn canonical_string(t: &Tree) -> CanonString {
    let g = t.graph();
    let mut out = Vec::new();
    match center(t) {
        Center::Vertex(c) => {
            out.push(VERTEX_ROOTED);
            encode(t, c, None, None, &mut out);
        }
        Center::Edge(e) => {
            let edge = g.edge(e);
            let mut a = Vec::new();
            encode(t, edge.u, Some(edge.v), None, &mut a);
            let mut b = Vec::new();
            encode(t, edge.v, Some(edge.u), None, &mut b);
            if b < a {
                std::mem::swap(&mut a, &mut b);
            }
            out.push(EDGE_ROOTED);
            out.push(edge.label.0 + LABEL_BASE);
            out.extend(a);
            out.extend(b);
        }
    }
    CanonString(out)
}

/// Canonical string of `t` rooted at an arbitrary vertex `root` (not a free-
/// tree invariant; used by tests and by rooted deduplication).
pub fn canonical_string_rooted(t: &Tree, root: VertexId) -> CanonString {
    let mut out = vec![VERTEX_ROOTED];
    encode(t, root, None, None, &mut out);
    CanonString(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::tree_from;
    use graph_core::is_isomorphic;

    #[test]
    fn isomorphic_trees_share_string() {
        // Same labeled path, three vertex numberings.
        let a = tree_from(&[1, 2, 3], &[(0, 1, 7), (1, 2, 8)]);
        let b = tree_from(&[3, 2, 1], &[(0, 1, 8), (1, 2, 7)]);
        let c = tree_from(&[2, 1, 3], &[(1, 0, 7), (0, 2, 8)]);
        assert_eq!(canonical_string(&a), canonical_string(&b));
        assert_eq!(canonical_string(&a), canonical_string(&c));
    }

    #[test]
    fn different_trees_differ() {
        let path = tree_from(&[0, 0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 3, 0)]);
        let star = tree_from(&[0, 0, 0, 0], &[(0, 1, 0), (0, 2, 0), (0, 3, 0)]);
        assert_ne!(canonical_string(&path), canonical_string(&star));
    }

    #[test]
    fn edge_labels_distinguish() {
        let a = tree_from(&[0, 0], &[(0, 1, 1)]);
        let b = tree_from(&[0, 0], &[(0, 1, 2)]);
        assert_ne!(canonical_string(&a), canonical_string(&b));
    }

    #[test]
    fn vertex_labels_distinguish() {
        let a = tree_from(&[0, 1], &[(0, 1, 0)]);
        let b = tree_from(&[0, 2], &[(0, 1, 0)]);
        assert_ne!(canonical_string(&a), canonical_string(&b));
    }

    #[test]
    fn bicentral_orientation_invariant() {
        // Asymmetric bicentral tree: leaf-x — a — b — leaf-y, reversed.
        let a = tree_from(&[5, 1, 2, 6], &[(0, 1, 0), (1, 2, 9), (2, 3, 0)]);
        let b = tree_from(&[6, 2, 1, 5], &[(0, 1, 0), (1, 2, 9), (2, 3, 0)]);
        assert_eq!(canonical_string(&a), canonical_string(&b));
    }

    #[test]
    fn single_vertex_and_edge() {
        let v1 = tree_from(&[3], &[]);
        let v2 = tree_from(&[4], &[]);
        assert_ne!(canonical_string(&v1), canonical_string(&v2));
        let e1 = tree_from(&[1, 2], &[(0, 1, 0)]);
        let e2 = tree_from(&[2, 1], &[(0, 1, 0)]);
        assert_eq!(canonical_string(&e1), canonical_string(&e2));
    }

    #[test]
    fn rooted_string_depends_on_root() {
        let t = tree_from(&[1, 2, 3], &[(0, 1, 0), (1, 2, 0)]);
        let r0 = canonical_string_rooted(&t, VertexId(0));
        let r1 = canonical_string_rooted(&t, VertexId(1));
        assert_ne!(r0, r1);
    }

    /// Exhaustive cross-check on a family of small trees: equal canonical
    /// strings iff isomorphic.
    #[test]
    fn string_equality_matches_isomorphism() {
        let trees = vec![
            tree_from(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0)]),
            tree_from(&[0, 0, 0], &[(0, 1, 0), (0, 2, 0)]), // same as above (path)
            tree_from(&[0, 1, 0], &[(0, 1, 0), (1, 2, 0)]),
            tree_from(&[1, 0, 0], &[(0, 1, 0), (1, 2, 0)]),
            tree_from(&[0, 0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 3, 0)]),
            tree_from(&[0, 0, 0, 0], &[(0, 1, 0), (0, 2, 0), (0, 3, 0)]),
            tree_from(&[0, 0, 0, 0], &[(1, 0, 0), (1, 2, 0), (1, 3, 0)]),
            tree_from(&[0, 0], &[(0, 1, 1)]),
            tree_from(&[0, 0], &[(0, 1, 0)]),
        ];
        for (i, a) in trees.iter().enumerate() {
            for (j, b) in trees.iter().enumerate() {
                let same = canonical_string(a) == canonical_string(b);
                let iso = is_isomorphic(a.graph(), b.graph());
                assert_eq!(same, iso, "trees {i} vs {j}");
            }
        }
    }

    #[test]
    fn deep_symmetric_tree() {
        // Two isomorphic "H" shaped trees with swapped construction order.
        let a = tree_from(
            &[0, 0, 1, 1, 2, 2],
            &[(0, 1, 0), (0, 2, 0), (0, 3, 0), (1, 4, 0), (1, 5, 0)],
        );
        let b = tree_from(
            &[0, 0, 2, 2, 1, 1],
            &[(1, 0, 0), (1, 4, 0), (1, 5, 0), (0, 2, 0), (0, 3, 0)],
        );
        assert_eq!(canonical_string(&a), canonical_string(&b));
    }
}
