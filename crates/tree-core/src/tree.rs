//! The free labeled tree type.
//!
//! A [`Tree`] is a connected acyclic [`Graph`] — the index structure class
//! the paper argues for: rich enough to preserve most structural
//! information, yet with polynomial-time canonical forms and a unique
//! center (Theorem 1).

use graph_core::{Graph, VertexId};
use std::fmt;

/// Error returned when a graph is not a free tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NotATree;

impl fmt::Display for NotATree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph is not a free tree (must be connected and acyclic)"
        )
    }
}

impl std::error::Error for NotATree {}

/// A free labeled tree. Wraps a [`Graph`] with the tree invariant
/// (connected, |E| = |V| − 1, at least one vertex) checked at construction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Tree {
    graph: Graph,
}

impl Tree {
    /// Validate and wrap a graph.
    pub fn from_graph(graph: Graph) -> Result<Self, NotATree> {
        if graph.is_tree() {
            Ok(Self { graph })
        } else {
            Err(NotATree)
        }
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Number of edges ("size" in the paper's σ(s) function is edge count).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Vertices with degree ≤ 1 (the peeling seeds for center finding).
    pub fn leaves(&self) -> Vec<VertexId> {
        self.graph
            .vertices()
            .filter(|&v| self.graph.degree(v) <= 1)
            .collect()
    }

    /// Consume, returning the underlying graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Estimated heap bytes (see [`Graph::heap_bytes`]).
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.graph.heap_bytes()
    }
}

/// Convenience constructor mirroring [`graph_core::graph_from`].
///
/// # Panics
/// Panics if the described graph is not a tree.
pub fn tree_from(vlabels: &[u32], edges: &[(u32, u32, u32)]) -> Tree {
    Tree::from_graph(graph_core::graph_from(vlabels, edges)).expect("tree_from: not a tree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::graph_from;

    #[test]
    fn accepts_trees() {
        assert!(Tree::from_graph(graph_from(&[1], &[])).is_ok());
        assert!(Tree::from_graph(graph_from(&[1, 2], &[(0, 1, 0)])).is_ok());
        let path = graph_from(&[0, 0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 3, 0)]);
        assert!(Tree::from_graph(path).is_ok());
    }

    #[test]
    fn rejects_cycles_and_forests() {
        let cycle = graph_from(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 0, 0)]);
        assert_eq!(Tree::from_graph(cycle), Err(NotATree));
        let forest = graph_from(&[0, 0, 0, 0], &[(0, 1, 0), (2, 3, 0)]);
        assert_eq!(Tree::from_graph(forest), Err(NotATree));
        let empty = graph_from(&[], &[]);
        assert_eq!(Tree::from_graph(empty), Err(NotATree));
    }

    #[test]
    fn leaves_of_star() {
        let star = tree_from(&[0, 1, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 0)]);
        let mut ls = star.leaves();
        ls.sort();
        assert_eq!(ls, vec![VertexId(1), VertexId(2), VertexId(3)]);
    }

    #[test]
    fn single_vertex_is_its_own_leaf() {
        let t = tree_from(&[5], &[]);
        assert_eq!(t.leaves(), vec![VertexId(0)]);
        assert_eq!(t.edge_count(), 0);
    }
}
