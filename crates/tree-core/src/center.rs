//! Tree centers (paper Theorem 1 and §4.2.1).
//!
//! *The center of a tree consists of one vertex or two adjacent vertices,
//! i.e. it can be represented by a vertex or an edge.* It is found by
//! repeatedly removing leaves in rounds until one vertex or one edge
//! remains — O(n), demonstrated in the paper's Figure 4.

use crate::tree::Tree;
use graph_core::{EdgeId, VertexId};

/// The center of a tree: a single vertex or a single edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Center {
    /// Unicentral tree.
    Vertex(VertexId),
    /// Bicentral tree; the center is the edge between the two central
    /// vertices.
    Edge(EdgeId),
}

impl Center {
    /// Whether the center is an edge.
    pub fn is_edge(&self) -> bool {
        matches!(self, Center::Edge(_))
    }
}

/// Compute the center of `t` by leaf peeling.
pub fn center(t: &Tree) -> Center {
    let g = t.graph();
    let n = g.vertex_count();
    if n == 1 {
        return Center::Vertex(VertexId(0));
    }
    let mut degree: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut layer: Vec<VertexId> = g.vertices().filter(|&v| degree[v.idx()] == 1).collect();
    let mut remaining = n;
    while remaining > 2 {
        let mut next = Vec::new();
        for &v in &layer {
            removed[v.idx()] = true;
            remaining -= 1;
            for &(w, _) in g.neighbors(v) {
                if !removed[w.idx()] {
                    degree[w.idx()] -= 1;
                    if degree[w.idx()] == 1 {
                        next.push(w);
                    }
                }
            }
        }
        layer = next;
    }
    let survivors: Vec<VertexId> = g.vertices().filter(|&v| !removed[v.idx()]).collect();
    match survivors.as_slice() {
        [c] => Center::Vertex(*c),
        [a, b] => Center::Edge(
            g.edge_between(*a, *b)
                .expect("two peeling survivors of a tree are adjacent (Theorem 1)"),
        ),
        _ => unreachable!("peeling a tree leaves one or two vertices"),
    }
}

/// Eccentricity-based center check, used as a test oracle: the center
/// vertices are exactly those of minimum eccentricity.
pub fn center_by_eccentricity(t: &Tree) -> Vec<VertexId> {
    let g = t.graph();
    let eccs: Vec<u32> = g
        .vertices()
        .map(|v| graph_core::eccentricity(g, v))
        .collect();
    let min = *eccs.iter().min().expect("tree is nonempty");
    g.vertices().filter(|v| eccs[v.idx()] == min).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::tree_from;

    #[test]
    fn path_even_length_has_vertex_center() {
        // 5 vertices: center is the middle vertex 2
        let t = tree_from(&[0; 5], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 4, 0)]);
        assert_eq!(center(&t), Center::Vertex(VertexId(2)));
    }

    #[test]
    fn path_odd_length_has_edge_center() {
        // 4 vertices: center is the middle edge (1,2) = edge id 1
        let t = tree_from(&[0; 4], &[(0, 1, 0), (1, 2, 0), (2, 3, 0)]);
        assert_eq!(center(&t), Center::Edge(EdgeId(1)));
        assert!(center(&t).is_edge());
    }

    #[test]
    fn single_vertex_and_single_edge() {
        let v = tree_from(&[7], &[]);
        assert_eq!(center(&v), Center::Vertex(VertexId(0)));
        let e = tree_from(&[1, 2], &[(0, 1, 0)]);
        assert_eq!(center(&e), Center::Edge(EdgeId(0)));
    }

    #[test]
    fn star_center_is_hub() {
        let t = tree_from(
            &[9, 0, 0, 0, 0],
            &[(0, 1, 0), (0, 2, 0), (0, 3, 0), (0, 4, 0)],
        );
        assert_eq!(center(&t), Center::Vertex(VertexId(0)));
    }

    #[test]
    fn caterpillar_center() {
        // spine 0-1-2-3-4 with legs on 1 and 3; center stays at 2
        let t = tree_from(
            &[0; 7],
            &[
                (0, 1, 0),
                (1, 2, 0),
                (2, 3, 0),
                (3, 4, 0),
                (1, 5, 0),
                (3, 6, 0),
            ],
        );
        assert_eq!(center(&t), Center::Vertex(VertexId(2)));
    }

    #[test]
    fn peeling_matches_eccentricity_oracle() {
        let trees = vec![
            tree_from(&[0; 5], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 4, 0)]),
            tree_from(&[0; 4], &[(0, 1, 0), (1, 2, 0), (2, 3, 0)]),
            tree_from(
                &[0; 6],
                &[(0, 1, 0), (0, 2, 0), (2, 3, 0), (2, 4, 0), (4, 5, 0)],
            ),
            tree_from(&[0; 2], &[(0, 1, 0)]),
            tree_from(&[0], &[]),
        ];
        for t in &trees {
            let oracle = center_by_eccentricity(t);
            match center(t) {
                Center::Vertex(v) => assert_eq!(oracle, vec![v]),
                Center::Edge(e) => {
                    let edge = t.graph().edge(e);
                    let mut pair = vec![edge.u, edge.v];
                    pair.sort();
                    let mut o = oracle.clone();
                    o.sort();
                    assert_eq!(o, pair);
                }
            }
        }
    }
}
