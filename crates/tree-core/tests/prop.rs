//! Property tests for the tree layer: canonical strings are complete free-
//! tree invariants, centers are permutation invariant and minimize
//! eccentricity, centered retrieval is exhaustive.

use graph_core::{ELabel, GraphBuilder, VLabel, VertexId};
use proptest::prelude::*;
use std::ops::ControlFlow;
use tree_core::*;

/// Strategy: a random labeled free tree with 1..=nmax vertices (random
/// attachment).
fn arb_tree(nmax: usize) -> impl Strategy<Value = Tree> {
    (1..=nmax).prop_flat_map(move |n| {
        let vlabels = proptest::collection::vec(0u32..4, n);
        let parents =
            proptest::collection::vec((0usize..nmax.max(1), 0u32..3), n.saturating_sub(1));
        (vlabels, parents).prop_map(move |(vl, ps)| {
            let mut b = GraphBuilder::new();
            for l in &vl {
                b.add_vertex(VLabel(*l));
            }
            for (i, (p, el)) in ps.iter().enumerate() {
                let child = VertexId((i + 1) as u32);
                let parent = VertexId((p % (i + 1)) as u32);
                b.add_edge(child, parent, ELabel(*el)).expect("tree edge");
            }
            Tree::from_graph(b.build()).expect("random attachment builds a tree")
        })
    })
}

fn permute_tree(t: &Tree, perm: &[u32]) -> Tree {
    let g = t.graph();
    let mut inv = vec![0u32; perm.len()];
    for (old, &new) in perm.iter().enumerate() {
        inv[new as usize] = old as u32;
    }
    let mut b = GraphBuilder::new();
    for &old in &inv {
        b.add_vertex(g.vlabel(VertexId(old)));
    }
    for e in g.edges() {
        b.add_edge(
            VertexId(perm[e.u.idx()]),
            VertexId(perm[e.v.idx()]),
            e.label,
        )
        .expect("permutation preserves simplicity");
    }
    Tree::from_graph(b.build()).expect("permutation preserves treeness")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn canonical_string_is_permutation_invariant(t in arb_tree(9), seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut perm: Vec<u32> = (0..t.vertex_count() as u32).collect();
        perm.shuffle(&mut rng);
        let u = permute_tree(&t, &perm);
        prop_assert_eq!(canonical_string(&t), canonical_string(&u));
    }

    #[test]
    fn canonical_string_equality_iff_isomorphic(a in arb_tree(6), b in arb_tree(6)) {
        let same = canonical_string(&a) == canonical_string(&b);
        let iso = graph_core::is_isomorphic(a.graph(), b.graph());
        prop_assert_eq!(same, iso);
    }

    #[test]
    fn center_is_permutation_equivariant(t in arb_tree(9), seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut perm: Vec<u32> = (0..t.vertex_count() as u32).collect();
        perm.shuffle(&mut rng);
        let u = permute_tree(&t, &perm);
        // the center maps under the permutation
        match (center(&t), center(&u)) {
            (Center::Vertex(a), Center::Vertex(b)) => {
                prop_assert_eq!(VertexId(perm[a.idx()]), b);
            }
            (Center::Edge(ea), Center::Edge(eb)) => {
                let (a, b) = {
                    let e = t.graph().edge(ea);
                    (perm[e.u.idx()], perm[e.v.idx()])
                };
                let e2 = u.graph().edge(eb);
                let mut x = [a, b];
                x.sort_unstable();
                let mut y = [e2.u.0, e2.v.0];
                y.sort_unstable();
                prop_assert_eq!(x, y);
            }
            (a, b) => prop_assert!(false, "center kind changed: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn center_minimizes_eccentricity(t in arb_tree(9)) {
        let oracle = center_by_eccentricity(&t);
        match center(&t) {
            Center::Vertex(v) => prop_assert_eq!(oracle, vec![v]),
            Center::Edge(e) => {
                let edge = t.graph().edge(e);
                let mut pair = vec![edge.u, edge.v];
                pair.sort();
                let mut o = oracle;
                o.sort();
                prop_assert_eq!(o, pair);
            }
        }
    }

    #[test]
    fn center_positions_complete_and_sound(t in arb_tree(4), host in arb_tree(8)) {
        prop_assume!(t.edge_count() >= 1);
        let g = host.graph();
        let positions = center_positions(&t, g);
        // sound: every reported position admits a centered embedding
        for &pos in &positions {
            let mut hit = false;
            let _ = for_each_embedding_centered(&t, g, pos, |_| {
                hit = true;
                ControlFlow::Break(())
            });
            prop_assert!(hit, "position {pos:?} has no embedding");
        }
        // complete: total embeddings found through positions equals the
        // total number of embeddings whose center lands anywhere
        let total_direct = graph_core::all_embeddings(t.graph(), g, None).len();
        let mut total_via_centers = 0usize;
        for &pos in &positions {
            let _ = for_each_embedding_centered(&t, g, pos, |_| {
                total_via_centers += 1;
                ControlFlow::Continue(())
            });
        }
        prop_assert_eq!(total_via_centers, total_direct);
    }
}
