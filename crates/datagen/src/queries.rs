//! Query-set construction (paper §6.1).
//!
//! "We randomly select 1,000 graphs from the antiviral screen dataset and
//! then extract a connected m edge subgraph from each graph randomly. These
//! 1,000 subgraphs are taken as query set, denoted by Q_m."

use graph_core::{edge_subgraph, random_connected_edge_subgraph, Graph};
use rand::Rng;

/// Extract `count` random connected `m`-edge query graphs from `db`.
///
/// Each query is cut from a randomly chosen database graph, so every query
/// has support ≥ 1 by construction. Graphs with fewer than `m` edges are
/// skipped (resampled).
pub fn extract_queries<R: Rng>(db: &[Graph], m: usize, count: usize, rng: &mut R) -> Vec<Graph> {
    assert!(m >= 1, "queries need at least one edge");
    assert!(!db.is_empty(), "empty database");
    let mut out = Vec::with_capacity(count);
    let mut failures = 0usize;
    while out.len() < count {
        let g = &db[rng.gen_range(0..db.len())];
        if g.edge_count() < m {
            failures += 1;
            if failures > count * 100 {
                panic!("database has too few graphs with >= {m} edges");
            }
            continue;
        }
        match random_connected_edge_subgraph(g, m, rng) {
            Some(edges) => out.push(edge_subgraph(g, &edges).graph),
            None => failures += 1,
        }
        if failures > count * 100 {
            panic!("could not extract enough {m}-edge connected subgraphs");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chem::{generate_chem, ChemParams};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn queries_have_exact_size_and_connectivity() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let db = generate_chem(&ChemParams::sized(50), &mut rng);
        for m in [1, 4, 8, 12] {
            let qs = extract_queries(&db, m, 25, &mut rng);
            assert_eq!(qs.len(), 25);
            for q in &qs {
                assert_eq!(q.edge_count(), m);
                assert!(q.is_connected());
            }
        }
    }

    #[test]
    fn queries_are_contained_in_some_db_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let db = generate_chem(&ChemParams::sized(30), &mut rng);
        let qs = extract_queries(&db, 6, 10, &mut rng);
        for q in &qs {
            assert!(
                db.iter().any(|g| graph_core::is_subgraph_isomorphic(q, g)),
                "query not supported by its own database"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn zero_edge_queries_rejected() {
        let db = vec![graph_core::graph_from(&[0, 0], &[(0, 1, 0)])];
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        extract_queries(&db, 0, 1, &mut rng);
    }
}
