//! Synthetic graph generator in the style of Kuramochi & Karypis
//! (*Frequent subgraph discovery*, ICDE 2001), the generator the paper's
//! §6.2 uses.
//!
//! A pool of `seed_count` seed fragments is generated, each a random
//! connected graph whose edge size is Poisson with mean `seed_size` (the
//! paper's `I`). Each database graph has a target edge size Poisson with
//! mean `graph_size` (`T`); seeds are drawn randomly and overlaid onto the
//! graph — merging one seed vertex with an existing vertex — until the
//! target size is reached. Labels are drawn uniformly from `vertex_labels`
//! (`L`) and `edge_labels` alphabets.
//!
//! Dataset names follow the paper: `D8kI10T20S1kL4` = 8000 graphs, seed
//! mean 10, graph mean 20, 1000 seeds, 4 labels.

use crate::rand_util::poisson;
use graph_core::{ELabel, Graph, GraphBuilder, VLabel, VertexId};
use rand::Rng;

/// Parameters of the synthetic generator.
#[derive(Clone, Debug)]
pub struct SyntheticParams {
    /// Number of graphs to generate (`D`).
    pub n_graphs: usize,
    /// Mean seed-fragment edge count (`I`).
    pub seed_size: f64,
    /// Mean graph edge count (`T`).
    pub graph_size: f64,
    /// Number of seed fragments in the pool (`S`).
    pub seed_count: usize,
    /// Number of distinct vertex labels (`L`).
    pub vertex_labels: u32,
    /// Number of distinct edge labels.
    pub edge_labels: u32,
}

impl SyntheticParams {
    /// The paper's "typical dataset": `D8kI10T20S1kL40`.
    pub fn typical() -> Self {
        Self {
            n_graphs: 8000,
            seed_size: 10.0,
            graph_size: 20.0,
            seed_count: 1000,
            vertex_labels: 40,
            edge_labels: 3,
        }
    }

    /// Paper-style name, e.g. `D8kI10T20S1kL40`.
    pub fn name(&self) -> String {
        fn k(n: usize) -> String {
            if n.is_multiple_of(1000) && n >= 1000 {
                format!("{}k", n / 1000)
            } else {
                n.to_string()
            }
        }
        format!(
            "D{}I{}T{}S{}L{}",
            k(self.n_graphs),
            self.seed_size as usize,
            self.graph_size as usize,
            k(self.seed_count),
            self.vertex_labels
        )
    }
}

/// A random connected graph with `edges` edges: a random labeled tree plus
/// random extra edges.
fn random_connected_graph<R: Rng>(edges: usize, vlabels: u32, elabels: u32, rng: &mut R) -> Graph {
    let edges = edges.max(1);
    // Vertex count: trees use e+1 vertices; allow some cycles by using
    // fewer vertices occasionally.
    let n = (edges + 1)
        .saturating_sub(rng.gen_range(0..=(edges / 4)))
        .max(2);
    let mut b = GraphBuilder::with_capacity(n, edges);
    for _ in 0..n {
        b.add_vertex(VLabel(rng.gen_range(0..vlabels)));
    }
    // Random spanning tree.
    for i in 1..n {
        let parent = VertexId(rng.gen_range(0..i) as u32);
        b.add_edge(
            VertexId(i as u32),
            parent,
            ELabel(rng.gen_range(0..elabels)),
        )
        .expect("spanning tree edges are fresh");
    }
    // Extra edges to reach the target (graph may saturate on small n).
    let mut attempts = 0;
    while b.edge_count() < edges && attempts < edges * 20 {
        attempts += 1;
        let u = VertexId(rng.gen_range(0..n) as u32);
        let v = VertexId(rng.gen_range(0..n) as u32);
        if u == v || b.has_edge(u, v) {
            continue;
        }
        let _ = b.add_edge(u, v, ELabel(rng.gen_range(0..elabels)));
    }
    b.build()
}

/// Generate the seed-fragment pool.
pub fn generate_seeds<R: Rng>(p: &SyntheticParams, rng: &mut R) -> Vec<Graph> {
    (0..p.seed_count)
        .map(|_| {
            let sz = poisson(rng, p.seed_size).max(1);
            random_connected_graph(sz, p.vertex_labels, p.edge_labels, rng)
        })
        .collect()
}

/// Overlay `seed` onto the graph under construction, merging one seed
/// vertex with an existing vertex when the graph is nonempty.
fn overlay_seed<R: Rng>(b: &mut GraphBuilder, seed: &Graph, rng: &mut R) {
    let mut map: Vec<Option<VertexId>> = vec![None; seed.vertex_count()];
    if b.vertex_count() > 0 && seed.vertex_count() > 0 {
        let sv = rng.gen_range(0..seed.vertex_count());
        let gv = VertexId(rng.gen_range(0..b.vertex_count()) as u32);
        // Merge on the host vertex (its label wins; fragments overlap
        // imperfectly, which keeps supports below 100%).
        map[sv] = Some(gv);
    }
    for v in seed.vertices() {
        if map[v.idx()].is_none() {
            map[v.idx()] = Some(b.add_vertex(seed.vlabel(v)));
        }
    }
    for e in seed.edges() {
        let u = map[e.u.idx()].expect("mapped above");
        let v = map[e.v.idx()].expect("mapped above");
        if u != v && !b.has_edge(u, v) {
            let _ = b.add_edge(u, v, e.label);
        }
    }
}

/// Generate one database graph from the seed pool.
fn generate_graph<R: Rng>(p: &SyntheticParams, seeds: &[Graph], rng: &mut R) -> Graph {
    let target = poisson(rng, p.graph_size).max(1);
    let mut b = GraphBuilder::new();
    while b.edge_count() < target {
        let seed = &seeds[rng.gen_range(0..seeds.len())];
        overlay_seed(&mut b, seed, rng);
    }
    b.build()
}

/// Generate a full synthetic database.
pub fn generate_synthetic<R: Rng>(p: &SyntheticParams, rng: &mut R) -> Vec<Graph> {
    let seeds = generate_seeds(p, rng);
    (0..p.n_graphs)
        .map(|_| generate_graph(p, &seeds, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_params() -> SyntheticParams {
        SyntheticParams {
            n_graphs: 50,
            seed_size: 5.0,
            graph_size: 15.0,
            seed_count: 20,
            vertex_labels: 4,
            edge_labels: 2,
        }
    }

    #[test]
    fn generates_requested_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let db = generate_synthetic(&small_params(), &mut rng);
        assert_eq!(db.len(), 50);
        for g in &db {
            assert!(g.vertex_count() > 0);
            assert!(g.edge_count() > 0);
        }
    }

    #[test]
    fn labels_within_alphabet() {
        let p = small_params();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for g in generate_synthetic(&p, &mut rng) {
            for v in g.vertices() {
                assert!(g.vlabel(v).0 < p.vertex_labels);
            }
            for e in g.edges() {
                assert!(e.label.0 < p.edge_labels);
            }
        }
    }

    #[test]
    fn mean_size_near_target() {
        let mut p = small_params();
        p.n_graphs = 300;
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let db = generate_synthetic(&p, &mut rng);
        let mean = db.iter().map(|g| g.edge_count()).sum::<usize>() as f64 / db.len() as f64;
        // Overlaying overshoots the Poisson target by up to one seed.
        assert!(
            mean >= p.graph_size * 0.8 && mean <= p.graph_size * 2.0,
            "mean {mean}"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let p = small_params();
        let a = generate_synthetic(&p, &mut ChaCha8Rng::seed_from_u64(11));
        let b = generate_synthetic(&p, &mut ChaCha8Rng::seed_from_u64(11));
        assert_eq!(a, b);
        let c = generate_synthetic(&p, &mut ChaCha8Rng::seed_from_u64(12));
        assert_ne!(a, c);
    }

    #[test]
    fn dataset_naming() {
        assert_eq!(SyntheticParams::typical().name(), "D8kI10T20S1kL40");
        let p = SyntheticParams {
            n_graphs: 500,
            ..SyntheticParams::typical()
        };
        assert_eq!(p.name(), "D500I10T20S1kL40");
    }

    #[test]
    fn seeds_are_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for s in generate_seeds(&small_params(), &mut rng) {
            assert!(s.is_connected());
        }
    }
}
