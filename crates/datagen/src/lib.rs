//! Dataset generators for the TreePi reproduction.
//!
//! - [`synthetic`]: the Kuramochi–Karypis-style generator the paper's §6.2
//!   uses (`DnkIiTtSskLl` datasets);
//! - [`chem`]: an AIDS-antiviral-screen surrogate (see DESIGN.md for the
//!   substitution rationale);
//! - [`queries`]: random connected m-edge query extraction (the paper's
//!   `Q_m` query sets).

#![warn(missing_docs)]

pub mod chem;
pub mod queries;
pub mod rand_util;
pub mod synthetic;

pub use chem::{
    generate_chem, generate_fragment_pool, generate_molecule, ChemParams, ATOMS, BONDS, MAX_DEGREE,
};
pub use queries::extract_queries;
pub use synthetic::{generate_seeds, generate_synthetic, SyntheticParams};
