//! Small sampling helpers shared by the generators.

use rand::Rng;

/// Sample a Poisson random variable with mean `lambda` (Knuth's method —
/// fine for the small means used here: seed size ~10, graph size ~20).
pub fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> usize {
    debug_assert!(lambda > 0.0);
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // Numerical guard for very unlikely long tails.
        if k > (lambda * 20.0 + 50.0) as usize {
            return k;
        }
    }
}

/// Sample an index from a weighted discrete distribution. Weights need not
/// be normalized.
pub fn weighted_index<R: Rng>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0);
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn poisson_mean_close() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let sum: usize = (0..n).map(|_| poisson(&mut rng, 10.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean {mean} too far from 10");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let w = [0.7, 0.2, 0.1];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[weighted_index(&mut rng, &w)] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
        let f0 = counts[0] as f64 / 10_000.0;
        assert!((f0 - 0.7).abs() < 0.05);
    }

    #[test]
    fn weighted_index_single() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(weighted_index(&mut rng, &[1.0]), 0);
    }
}
