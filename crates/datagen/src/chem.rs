//! AIDS-surrogate molecular graph generator.
//!
//! The paper's real dataset is the NCI DTP AIDS antiviral screen (43,905
//! molecules). That file is not available offline, so this module generates
//! graphs with the structural statistics TreePi is actually sensitive to
//! (see DESIGN.md, substitution 1):
//!
//! - a **skewed vertex-label distribution** — carbon dominates, a long tail
//!   of heteroatoms (this drives feature-tree frequency skew);
//! - **degree ≤ 4** and sparsity (|E| ≈ 1.05·|V|), so graphs are mostly
//!   tree-like with a controlled number of rings (benzene-like 5/6-rings);
//! - sizes matching the screen data: ~25 vertices on average, long-tailed;
//! - **recurring substructures**: real molecules are assembled from a
//!   bounded vocabulary of functional groups and scaffolds, which is what
//!   makes frequent-pattern indexes work and what keeps the feature count
//!   stable as the sample Γ_N grows (paper Figure 9). We reproduce this by
//!   growing every molecule from a fixed, seeded pool of fragments, with a
//!   small per-atom label perturbation for residual novelty.

use crate::rand_util::{poisson, weighted_index};
use graph_core::{bfs_distances, ELabel, Graph, GraphBuilder, VLabel, VertexId};
use rand::Rng;

/// Atom alphabet with screen-like frequencies. Index = vertex label.
pub const ATOMS: &[(&str, f64)] = &[
    ("C", 0.72),
    ("O", 0.10),
    ("N", 0.09),
    ("S", 0.03),
    ("Cl", 0.02),
    ("F", 0.015),
    ("P", 0.01),
    ("Br", 0.006),
    ("I", 0.004),
    ("Si", 0.005),
];

/// Bond alphabet with frequencies. Index = edge label.
pub const BONDS: &[(&str, f64)] = &[("single", 0.82), ("double", 0.13), ("aromatic", 0.05)];

/// Maximum atom degree (valence cap).
pub const MAX_DEGREE: usize = 4;

/// Parameters of the molecular generator.
#[derive(Clone, Debug)]
pub struct ChemParams {
    /// Number of molecules.
    pub n_graphs: usize,
    /// Mean vertex count (Poisson, floored at 2).
    pub mean_vertices: f64,
    /// Expected ring closures as a fraction of vertex count.
    pub ring_rate: f64,
    /// Size of the functional-group fragment pool shared by all molecules.
    pub fragment_pool: usize,
    /// Mean fragment vertex count.
    pub fragment_size: f64,
    /// Per-atom probability of a label perturbation (residual novelty).
    pub perturb: f64,
}

impl Default for ChemParams {
    fn default() -> Self {
        Self {
            n_graphs: 1000,
            mean_vertices: 25.0,
            ring_rate: 0.01,
            fragment_pool: 80,
            fragment_size: 6.0,
            perturb: 0.005,
        }
    }
}

impl ChemParams {
    /// Default parameters with a specific graph count (the paper's Γ_N
    /// test sets are size-N random samples of the screen data).
    pub fn sized(n_graphs: usize) -> Self {
        Self {
            n_graphs,
            ..Self::default()
        }
    }
}

fn sample_atom<R: Rng>(rng: &mut R) -> VLabel {
    let weights: Vec<f64> = ATOMS.iter().map(|&(_, w)| w).collect();
    VLabel(weighted_index(rng, &weights) as u32)
}

fn sample_bond<R: Rng>(rng: &mut R) -> ELabel {
    let weights: Vec<f64> = BONDS.iter().map(|&(_, w)| w).collect();
    ELabel(weighted_index(rng, &weights) as u32)
}

/// A functional-group fragment: a small tree with a chain bias, sometimes
/// closed into a ring (rings are recurring scaffold structure — benzene
/// and friends — not random per-molecule rewiring).
fn generate_fragment<R: Rng>(p: &ChemParams, rng: &mut R) -> Graph {
    let n = poisson(rng, p.fragment_size).clamp(2, 12);
    let mut b = GraphBuilder::with_capacity(n, n);
    let first = b.add_vertex(sample_atom(rng));
    let mut tip = first;
    for _ in 1..n {
        let attach = if rng.gen::<f64>() < 0.7 && b.degree(tip) < MAX_DEGREE {
            tip
        } else {
            let mut pick = None;
            for _ in 0..8 {
                let cand = VertexId(rng.gen_range(0..b.vertex_count()) as u32);
                if b.degree(cand) < MAX_DEGREE {
                    pick = Some(cand);
                    break;
                }
            }
            match pick {
                Some(v) => v,
                None if b.degree(tip) < MAX_DEGREE => tip,
                None => break,
            }
        };
        let v = b.add_vertex(sample_atom(rng));
        b.add_edge(attach, v, sample_bond(rng))
            .expect("fresh vertex cannot duplicate an edge");
        tip = v;
    }
    // Scaffold ring: close one cycle inside ~40% of fragments.
    if b.vertex_count() >= 4 && rng.gen::<f64>() < 0.4 {
        let snapshot = b.clone().build();
        let u = VertexId(rng.gen_range(0..snapshot.vertex_count()) as u32);
        if b.degree(u) < MAX_DEGREE {
            let dist = bfs_distances(&snapshot, u);
            let targets: Vec<VertexId> = snapshot
                .vertices()
                .filter(|&v| {
                    (3..=5).contains(&dist[v.idx()])
                        && b.degree(v) < MAX_DEGREE
                        && !b.has_edge(u, v)
                })
                .collect();
            if !targets.is_empty() {
                let v = targets[rng.gen_range(0..targets.len())];
                let _ = b.add_edge(u, v, sample_bond(rng));
            }
        }
    }
    b.build()
}

/// The shared fragment pool (the "functional group vocabulary").
pub fn generate_fragment_pool<R: Rng>(p: &ChemParams, rng: &mut R) -> Vec<Graph> {
    (0..p.fragment_pool.max(1))
        .map(|_| generate_fragment(p, rng))
        .collect()
}

/// Attach `frag` to the molecule under construction by merging one fragment
/// atom onto an existing atom with spare valence (or starting fresh).
///
/// The fragment (a tree) is walked breadth-first from the merge atom and
/// materialized lazily: a fragment atom only exists in the molecule once
/// its connecting bond fits under the valence cap, so the molecule always
/// stays connected.
fn attach_fragment<R: Rng>(b: &mut GraphBuilder, frag: &Graph, p: &ChemParams, rng: &mut R) {
    // Functional groups attach through a fixed attachment atom (vertex 0),
    // the way real substituents bond through a specific site — this keeps
    // the vocabulary of junction substructures bounded.
    let root_frag = VertexId(0);
    let root_host = if b.vertex_count() == 0 {
        b.add_vertex(frag.vlabel(root_frag))
    } else {
        // Merge point: an existing atom with spare valence.
        let mut host = None;
        for _ in 0..16 {
            let cand = VertexId(rng.gen_range(0..b.vertex_count()) as u32);
            if b.degree(cand) < MAX_DEGREE {
                host = Some(cand);
                break;
            }
        }
        let Some(host) = host else { return }; // saturated molecule
        host
    };
    let mut map: Vec<Option<VertexId>> = vec![None; frag.vertex_count()];
    map[root_frag.idx()] = Some(root_host);
    let mut queue = std::collections::VecDeque::from([root_frag]);
    while let Some(fv) = queue.pop_front() {
        let hv = map[fv.idx()].expect("queued vertices are mapped");
        for &(fw, fe) in frag.neighbors(fv) {
            if map[fw.idx()].is_some() || b.degree(hv) >= MAX_DEGREE {
                continue;
            }
            // Residual novelty: occasionally perturb the atom label.
            let label = if rng.gen::<f64>() < p.perturb {
                sample_atom(rng)
            } else {
                frag.vlabel(fw)
            };
            let hw = b.add_vertex(label);
            b.add_edge(hv, hw, frag.edge(fe).label)
                .expect("fresh vertex cannot duplicate an edge");
            map[fw.idx()] = Some(hw);
            queue.push_back(fw);
        }
    }
    // Close the fragment's ring edges (edges between two mapped atoms that
    // the spanning walk skipped).
    for e in frag.edges() {
        if let (Some(u), Some(v)) = (map[e.u.idx()], map[e.v.idx()]) {
            if u != v && !b.has_edge(u, v) && b.degree(u) < MAX_DEGREE && b.degree(v) < MAX_DEGREE {
                let _ = b.add_edge(u, v, e.label);
            }
        }
    }
}

/// Generate one molecule from the shared pool.
pub fn generate_molecule<R: Rng>(p: &ChemParams, pool: &[Graph], rng: &mut R) -> Graph {
    let target = poisson(rng, p.mean_vertices).max(2);
    let mut b = GraphBuilder::with_capacity(target + 4, target + 6);
    let mut stall = 0;
    while b.vertex_count() < target && stall < 32 {
        let before = b.vertex_count();
        let frag = &pool[rng.gen_range(0..pool.len())];
        attach_fragment(&mut b, frag, p, rng);
        if b.vertex_count() == before {
            stall += 1;
        }
    }
    if b.vertex_count() < 2 {
        // Degenerate fallback: a single bond.
        let u = b.add_vertex(sample_atom(rng));
        let v = b.add_vertex(sample_atom(rng));
        let _ = b.add_edge(u, v, sample_bond(rng));
    }
    // Ring closures between skeleton vertices at distance 2..=5 (5- and
    // 6-rings dominate in molecules).
    let n_rings = poisson(rng, p.ring_rate * b.vertex_count() as f64);
    if n_rings > 0 {
        let snapshot = b.clone().build();
        for _ in 0..n_rings {
            let u = VertexId(rng.gen_range(0..snapshot.vertex_count()) as u32);
            if b.degree(u) >= MAX_DEGREE {
                continue;
            }
            let dist = bfs_distances(&snapshot, u);
            let targets: Vec<VertexId> = snapshot
                .vertices()
                .filter(|&v| {
                    (2..=5).contains(&dist[v.idx()])
                        && b.degree(v) < MAX_DEGREE
                        && !b.has_edge(u, v)
                })
                .collect();
            if targets.is_empty() {
                continue;
            }
            let v = targets[rng.gen_range(0..targets.len())];
            let _ = b.add_edge(u, v, sample_bond(rng));
        }
    }
    b.build()
}

/// Generate a molecule database (the paper's Γ_N samples). The fragment
/// pool is derived from the same RNG, so for a fixed seed, Γ_N is a prefix
/// of Γ_M for N < M — mirroring the paper's sampling from one fixed screen
/// universe.
pub fn generate_chem<R: Rng>(p: &ChemParams, rng: &mut R) -> Vec<Graph> {
    let pool = generate_fragment_pool(p, rng);
    (0..p.n_graphs)
        .map(|_| generate_molecule(p, &pool, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn db(n: usize, seed: u64) -> Vec<Graph> {
        generate_chem(&ChemParams::sized(n), &mut ChaCha8Rng::seed_from_u64(seed))
    }

    #[test]
    fn molecules_are_connected_and_sparse() {
        for g in db(200, 1) {
            assert!(g.is_connected(), "disconnected molecule {g:?}");
            assert!(g.edge_count() >= g.vertex_count() - 1);
            // sparse: within 30% extra edges
            assert!(g.edge_count() as f64 <= g.vertex_count() as f64 * 1.3);
        }
    }

    #[test]
    fn valence_respected() {
        for g in db(200, 2) {
            for v in g.vertices() {
                assert!(g.degree(v) <= MAX_DEGREE, "degree {} > 4", g.degree(v));
            }
        }
    }

    #[test]
    fn carbon_dominates() {
        let graphs = db(300, 3);
        let mut counts = vec![0usize; ATOMS.len()];
        let mut total = 0usize;
        for g in &graphs {
            for v in g.vertices() {
                counts[g.vlabel(v).0 as usize] += 1;
                total += 1;
            }
        }
        let carbon = counts[0] as f64 / total as f64;
        assert!((0.55..0.9).contains(&carbon), "carbon fraction {carbon}");
        // heteroatoms present
        assert!(counts[1] > 0 && counts[2] > 0);
    }

    #[test]
    fn sizes_match_screen_statistics() {
        let graphs = db(500, 4);
        let mean_v =
            graphs.iter().map(|g| g.vertex_count()).sum::<usize>() as f64 / graphs.len() as f64;
        assert!((18.0..34.0).contains(&mean_v), "mean vertices {mean_v}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(db(20, 5), db(20, 5));
        assert_ne!(db(20, 5), db(20, 6));
    }

    #[test]
    fn prefix_property_mirrors_fixed_universe_sampling() {
        // Γ_20 is a prefix of Γ_50 under the same seed.
        let small = db(20, 7);
        let large = db(50, 7);
        assert_eq!(&large[..20], &small[..]);
    }

    #[test]
    fn some_rings_exist() {
        let graphs = db(200, 8);
        let ringy = graphs
            .iter()
            .filter(|g| g.edge_count() > g.vertex_count() - 1)
            .count();
        assert!(ringy > 20, "only {ringy} molecules have rings");
    }

    #[test]
    fn fragments_recur_across_molecules() {
        // The pool vocabulary must make common substructures frequent:
        // check that some 3-edge subtree occurs in a large share of
        // molecules (this is what frequent-pattern indexing relies on).
        use graph_core::{edge_subgraph, random_connected_edge_subgraph};
        let graphs = db(100, 9);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut best_share = 0.0f64;
        for _ in 0..20 {
            let g = &graphs[rng.gen_range(0..graphs.len())];
            if g.edge_count() < 3 {
                continue;
            }
            let Some(edges) = random_connected_edge_subgraph(g, 3, &mut rng) else {
                continue;
            };
            let pat = edge_subgraph(g, &edges).graph;
            let share = graphs
                .iter()
                .filter(|h| graph_core::is_subgraph_isomorphic(&pat, h))
                .count() as f64
                / graphs.len() as f64;
            best_share = best_share.max(share);
        }
        assert!(
            best_share > 0.3,
            "no recurring substructure (best {best_share})"
        );
    }
}
