//! Minimal dependency-free HTTP/1.0 GET responder for the monitoring
//! surface (`/metrics`, `/healthz`, `/slowz`).
//!
//! This is deliberately not a web server: one request per connection,
//! `Connection: close`, no keep-alive, no chunked encoding, no request
//! bodies. A scrape agent (Prometheus, curl, a load-balancer health
//! check) sends one GET line plus headers; we parse the request line,
//! ignore the headers, write one `Content-Length`-framed response, and
//! close. That shape slots directly into the existing event loop: the
//! response is queued on the connection's ordinary write buffer and the
//! socket is torn down once it drains.
//!
//! Parsing is incremental — [`parse_request`] is called with whatever
//! bytes have arrived so far and reports [`Parse::Incomplete`] until the
//! blank line terminating the header block shows up. A header block that
//! exceeds [`MAX_HEAD`] without terminating is a malformed client and is
//! rejected rather than buffered forever (mirroring the wire protocol's
//! `MAX_FRAME` bound).

/// Upper bound on the request head (request line + headers). Real
/// monitoring clients send a few hundred bytes; 8 KiB matches the
/// conventional default of mainstream HTTP servers.
pub const MAX_HEAD: usize = 8 << 10;

/// A parsed request line. Headers are intentionally discarded — nothing
/// in the monitoring surface is content-negotiated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    /// The request method, verbatim (`GET`, `HEAD`, …).
    pub method: String,
    /// The path component of the request target, query string stripped.
    pub path: String,
}

/// Outcome of one incremental parse attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Parse {
    /// The header block has not fully arrived; call again with more bytes.
    Incomplete,
    /// The bytes cannot be an acceptable request (malformed request line,
    /// or the head outgrew [`MAX_HEAD`]). The connection should get a 400
    /// and close.
    Bad(&'static str),
    /// A complete request head: the parsed request line plus the number
    /// of buffered bytes it consumed (through the terminating blank line).
    Ok(HttpRequest, usize),
}

/// Incrementally parse an HTTP/1.x request head from `buf`.
pub fn parse_request(buf: &[u8]) -> Parse {
    let Some(head_end) = find_head_end(buf) else {
        return if buf.len() > MAX_HEAD {
            Parse::Bad("request head exceeds MAX_HEAD")
        } else {
            Parse::Incomplete
        };
    };
    if head_end > MAX_HEAD {
        return Parse::Bad("request head exceeds MAX_HEAD");
    }
    let head = &buf[..head_end];
    let line_end = head
        .windows(2)
        .position(|w| w == b"\r\n")
        .unwrap_or(head.len());
    let Ok(line) = std::str::from_utf8(&head[..line_end]) else {
        return Parse::Bad("request line is not UTF-8");
    };
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Parse::Bad("malformed request line");
    };
    if parts.next().is_some() || !version.starts_with("HTTP/") {
        return Parse::Bad("malformed request line");
    }
    let path = target.split(['?', '#']).next().unwrap_or(target);
    Parse::Ok(
        HttpRequest {
            method: method.to_string(),
            path: path.to_string(),
        },
        head_end,
    )
}

/// Position one past the `\r\n\r\n` (or bare `\n\n`) terminating the
/// request head, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4);
    let lf = buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2);
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Build one complete HTTP/1.0 response: status line, `Content-Type`,
/// `Content-Length`, `Connection: close`, then `body`.
pub fn response(status: u16, reason: &str, content_type: &str, body: &[u8]) -> Vec<u8> {
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_get() {
        let buf = b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\ntrailing";
        let Parse::Ok(req, used) = parse_request(buf) else {
            panic!("expected complete parse");
        };
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(used, buf.len() - "trailing".len());
    }

    #[test]
    fn strips_query_strings_and_accepts_bare_lf() {
        let Parse::Ok(req, _) = parse_request(b"GET /healthz?verbose=1 HTTP/1.1\n\n") else {
            panic!("expected complete parse");
        };
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn incomplete_until_blank_line() {
        assert_eq!(parse_request(b""), Parse::Incomplete);
        assert_eq!(parse_request(b"GET / HTTP/1.0\r\nHost:"), Parse::Incomplete);
    }

    #[test]
    fn rejects_malformed_and_oversized_heads() {
        assert!(matches!(parse_request(b"GARBAGE\r\n\r\n"), Parse::Bad(_)));
        assert!(matches!(
            parse_request(b"GET /x NOTHTTP\r\n\r\n"),
            Parse::Bad(_)
        ));
        let huge = vec![b'a'; MAX_HEAD + 1];
        assert!(matches!(parse_request(&huge), Parse::Bad(_)));
    }

    #[test]
    fn response_is_length_framed() {
        let r = response(200, "OK", "text/plain", b"hello");
        let text = String::from_utf8(r).unwrap();
        assert!(text.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));
    }
}
