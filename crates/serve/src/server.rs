//! The serving event loop: micro-batching, backpressure, cache.
//!
//! One thread owns every socket (accepted connections are registered
//! with the vendored level-triggered `minipoll` selector) while the
//! engine's persistent worker pool provides the parallelism that
//! matters — executing micro-batches. The loop:
//!
//! 1. **Admission.** Each decoded query is answered from the result
//!    cache when possible; otherwise it enters a **bounded** queue. A
//!    full queue means an immediate `Busy` response (`serve.shed`) —
//!    overload degrades into explicit sheds, never into unbounded
//!    buffering. Per-connection read/write buffers are capped too, so
//!    total memory is `O(max_conns · buffer caps + queue_cap · query)`.
//! 2. **Micro-batching.** Queued queries are dispatched to
//!    [`treepi::Engine::query_batch_obs`] as soon as the batch fills
//!    ([`ServeConfig::max_batch`]) or the oldest entry has waited
//!    [`ServeConfig::batch_window`] — the latency budget a query may be
//!    held in exchange for batching efficiency. The poll timeout is the
//!    oldest entry's remaining budget, so a sleepy server still honors
//!    the window.
//! 3. **Maintenance.** Insert/remove requests are *queued* on the engine
//!    ([`treepi::Engine::queue_insert`] / `queue_remove`) and acked
//!    immediately from its shadow view — no index copy, no epoch bump,
//!    no stall of in-flight batches. Queued ops are folded into one
//!    copy-on-write snapshot ([`treepi::Engine::apply_pending`], the
//!    `maint.apply` span) at the next query admission and at batch
//!    dispatch, so a run of N registration ops costs one snapshot, and
//!    read-your-writes holds: a query admitted after an op's ack always
//!    sees it. The cache compares epochs on every publication (applies
//!    and background re-mine swaps alike) and drops its entries, so no
//!    answer computed against an old snapshot can be served afterwards.
//!    Queued queries observe the snapshot current at *execution* time.
//!
//! Determinism caveat: which queries share a batch depends on arrival
//! timing, so `serve.*` / `cache.*` metrics (and batch seeds) are
//! timing-dependent — exempted namespaces. The *answers* are not:
//! every query is answered against the current database regardless of
//! batch shape.
//!
//! **Monitoring surface.** An optional second listener
//! ([`ServeConfig::http_addr`]) rides the same poll loop and answers
//! plain HTTP/1.0 GETs: `/metrics` (the live snapshot as Prometheus
//! text), `/healthz` (`ok` / `degraded` / `draining`), `/slowz` (the
//! slow-query ring as Chrome trace JSON). Every query is stamped at
//! decode, admission, dispatch, and response-enqueue, decomposing its
//! latency into the `serve.queue_wait` / `serve.batch_wait` /
//! `serve.exec_share` histograms (with `serve.write_wait` covering
//! enqueue-to-socket-flush), and a [`crate::telemetry::LoopWatchdog`]
//! trips when one loop iteration holds the thread past
//! [`ServeConfig::stall_threshold`].

use crate::cache::QueryCache;
use crate::http;
use crate::protocol::{self, Request, RequestBody, Response, ResponseBody, MAX_FRAME};
use crate::telemetry::{AccessRecord, AccessStages, LoopWatchdog, ServeTelemetry};
use graph_core::{canonical_code, CanonCode, Graph};
use minipoll::{Events, Interest, Poll, Token};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};
use treepi::{Engine, QueryOptions};

const LISTENER: Token = Token(0);
/// Token of the optional HTTP monitoring listener.
const HTTP_LISTENER: Token = Token(1);
/// Connection slot `idx` registers as `Token(idx + CONN_BASE)`.
const CONN_BASE: usize = 2;
/// Per-connection cap on retained write-flush markers; responses beyond
/// it (an already-pathological backlog) simply skip the
/// `serve.write_wait` observation.
const WMARK_CAP: usize = 1024;

fn dur_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

fn dur_us(d: Duration) -> u64 {
    d.as_micros().min(u64::MAX as u128) as u64
}
/// Stop draining a connection after this many bytes per readable event;
/// level triggering re-notifies, and the cap keeps one firehose client
/// from growing `rbuf` without bound inside a single event.
const READ_QUANTUM: usize = 256 << 10;
/// A connection whose client stops reading is dropped once this many
/// unsent response bytes pile up.
const WBUF_CAP: usize = 8 << 20;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Latency budget a queued query may wait for its batch to fill.
    pub batch_window: Duration,
    /// Maximum queries per engine micro-batch.
    pub max_batch: usize,
    /// Admission queue bound; beyond it queries are shed with `Busy`.
    pub queue_cap: usize,
    /// Result-cache capacity in entries (0 disables the cache).
    pub cache_cap: usize,
    /// Maximum simultaneously open connections; excess accepts are
    /// dropped immediately.
    pub max_conns: usize,
    /// Base seed for batch RNGs (batch `b` runs with `seed + b`).
    pub seed: u64,
    /// Stop after decoding this many request frames (0 = run until a
    /// shutdown request). A safety valve for scripted runs.
    pub max_requests: u64,
    /// Address for the HTTP monitoring listener (`/metrics`, `/healthz`,
    /// `/slowz`); `None` disables it.
    pub http_addr: Option<String>,
    /// Event-loop stall threshold: one poll-to-poll work period at or
    /// beyond it counts a `serve.loop.stall_count` trip and flips
    /// `/healthz` to degraded. `None` disables the watchdog.
    pub stall_threshold: Option<Duration>,
    /// Query pipeline options used for every batch.
    pub opts: QueryOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_window: Duration::from_millis(1),
            max_batch: 64,
            queue_cap: 1024,
            cache_cap: 4096,
            max_conns: 1024,
            seed: 2007,
            max_requests: 0,
            http_addr: None,
            stall_threshold: Some(Duration::from_millis(100)),
            opts: QueryOptions::default(),
        }
    }
}

/// Totals of one server run, returned by [`Server::run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeReport {
    /// Request frames decoded.
    pub requests: u64,
    /// Query requests (cache hits, batched, and shed included).
    pub queries: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries executed inside micro-batches.
    pub served: u64,
    /// Queries refused with `Busy` (admission queue full).
    pub shed: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Maintenance operations (insert/remove) accepted into the engine's
    /// pending queue (no-op removes of inactive gids excluded). Every
    /// accepted op is applied by the time [`Server::run`] returns.
    pub maintenance: u64,
    /// Malformed frames answered with an error.
    pub errors: u64,
    /// Connections dropped for a wire-protocol violation (oversized
    /// declared frame length). A subset of `errors`.
    pub proto_errors: u64,
    /// HTTP monitoring requests served.
    pub http_requests: u64,
    /// Event-loop stall-watchdog trips.
    pub stalls: u64,
    /// Peak admission-queue depth (≤ `queue_cap` by construction).
    pub queue_peak: usize,
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requests={} queries={} cache_hits={} served={} shed={} \
             batches={} maintenance={} errors={} proto_errors={} \
             http_requests={} stalls={} queue_peak={}",
            self.requests,
            self.queries,
            self.cache_hits,
            self.served,
            self.shed,
            self.batches,
            self.maintenance,
            self.errors,
            self.proto_errors,
            self.http_requests,
            self.stalls,
            self.queue_peak
        )
    }
}

/// Which protocol a connection speaks, decided by the listener that
/// accepted it.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ConnKind {
    /// The length-prefixed wire protocol ([`crate::protocol`]).
    Wire,
    /// One-shot HTTP monitoring requests ([`crate::http`]).
    Http,
}

struct Conn {
    stream: TcpStream,
    kind: ConnKind,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    writable_interest: bool,
    /// Close once the write buffer drains (HTTP responses are one-shot).
    close_after_flush: bool,
    /// Bytes ever enqueued on `wbuf` (monotone — survives the buffer's
    /// clear-on-drain reset, unlike `wbuf.len()`).
    wtotal: u64,
    /// Bytes ever flushed to the socket (monotone, ≤ `wtotal`).
    wflushed: u64,
    /// `(wtotal watermark, enqueue instant)` per response still in
    /// flight; popped into `serve.write_wait` as flushes pass them.
    wmarks: VecDeque<(u64, Instant)>,
}

impl Conn {
    fn new(stream: TcpStream, kind: ConnKind) -> Conn {
        Conn {
            stream,
            kind,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            writable_interest: false,
            close_after_flush: false,
            wtotal: 0,
            wflushed: 0,
            wmarks: VecDeque::new(),
        }
    }

    fn unsent(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Append `data` to the write buffer and drop a flush marker on it.
    fn enqueue(&mut self, data: &[u8]) {
        self.wbuf.extend_from_slice(data);
        self.wtotal += data.len() as u64;
        if self.wmarks.len() < WMARK_CAP {
            self.wmarks.push_back((self.wtotal, Instant::now()));
        }
    }
}

struct PendingQuery {
    conn: usize,
    tag: u32,
    key: Option<CanonCode>,
    graph: Graph,
    /// When the request frame was decoded off the socket.
    recv: Instant,
    /// When the query entered the admission queue.
    admitted: Instant,
    /// Request frame size (length prefix included), for the access log.
    bytes_in: u64,
}

/// A bound-but-not-yet-running server. [`Server::bind`] then
/// [`Server::run`].
pub struct Server {
    listener: TcpListener,
    http_listener: Option<TcpListener>,
    poll: Poll,
    config: ServeConfig,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:7878`; port 0 picks an ephemeral
    /// port — read it back with [`Server::local_addr`]). When
    /// [`ServeConfig::http_addr`] is set, the HTTP monitoring listener is
    /// bound here too ([`Server::http_local_addr`]).
    pub fn bind(addr: &str, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let poll = Poll::new()?;
        poll.register(&listener, LISTENER, Interest::READABLE)?;
        let http_listener = match &config.http_addr {
            None => None,
            Some(http_addr) => {
                let l = TcpListener::bind(http_addr.as_str())?;
                l.set_nonblocking(true)?;
                poll.register(&l, HTTP_LISTENER, Interest::READABLE)?;
                Some(l)
            }
        };
        Ok(Server {
            listener,
            http_listener,
            poll,
            config,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound HTTP monitoring address, when one was configured.
    pub fn http_local_addr(&self) -> Option<std::net::SocketAddr> {
        self.http_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// Run the event loop until a shutdown request (or `max_requests`)
    /// arrives, then drain the queue, flush responses, and return the
    /// run's totals. Latency histograms (`serve.request`,
    /// `serve.batch_exec`) and the `serve.*` / `cache.*` counters are
    /// recorded into `registry`.
    pub fn run(self, engine: &Engine, registry: &obs::Registry) -> io::Result<ServeReport> {
        let mut telemetry = ServeTelemetry::disabled();
        self.run_with_telemetry(engine, registry, &mut telemetry)
    }

    /// [`Server::run`] with live telemetry attached: `telemetry.sampler`
    /// is ticked once per poll iteration (recording queue depth, shed
    /// count, cache hits, and live heap bytes), and queries whose verify
    /// stage meets the slow-query threshold are captured into
    /// `telemetry.slow`. Both outlive the run — the caller renders them
    /// after the server exits.
    pub fn run_with_telemetry(
        self,
        engine: &Engine,
        registry: &obs::Registry,
        telemetry: &mut ServeTelemetry,
    ) -> io::Result<ServeReport> {
        let epoch = engine.epoch();
        let watchdog = LoopWatchdog::new(self.config.stall_threshold);
        let mut lp = EventLoop {
            listener: self.listener,
            http_listener: self.http_listener,
            poll: self.poll,
            cache: QueryCache::new(self.config.cache_cap, epoch),
            config: self.config,
            engine,
            shard: registry.shard(),
            telemetry,
            watchdog,
            conns: Vec::new(),
            free: Vec::new(),
            pending: VecDeque::new(),
            report: ServeReport::default(),
            shutdown: false,
        };
        let result = lp.serve(registry);
        // Fold any ops still queued at shutdown so the engine's final
        // state reflects every acked maintenance request, then surface the
        // run's maint.* totals alongside the cache's.
        lp.apply_ready();
        lp.record_maint_metrics(registry);
        lp.cache.record_metrics(registry);
        registry.set_gauge(
            obs::names::GAUGE_SERVE_QUEUE_PEAK,
            lp.report.queue_peak as u64,
        );
        registry.set_gauge(
            obs::names::GAUGE_SERIES_DROPPED,
            lp.telemetry.sampler.dropped(),
        );
        lp.report.cache_hits = lp.cache.hits();
        lp.report.stalls = lp.watchdog.stalls();
        if let Some(access) = lp.telemetry.access.as_mut() {
            access.flush();
        }
        registry.absorb(lp.shard);
        result.map(|()| lp.report)
    }
}

struct EventLoop<'e> {
    listener: TcpListener,
    http_listener: Option<TcpListener>,
    poll: Poll,
    cache: QueryCache,
    config: ServeConfig,
    engine: &'e Engine,
    shard: obs::Shard,
    telemetry: &'e mut ServeTelemetry,
    watchdog: LoopWatchdog,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    pending: VecDeque<PendingQuery>,
    report: ServeReport,
    shutdown: bool,
}

impl EventLoop<'_> {
    fn serve(&mut self, registry: &obs::Registry) -> io::Result<()> {
        let mut events = Events::with_capacity(256);
        self.watchdog.begin_work();
        loop {
            while self.batch_due() {
                self.run_batch(registry);
            }
            if self.telemetry.sampler.due() {
                self.sample_tick();
            }
            if self.shutdown && self.pending.is_empty() {
                break;
            }
            let timeout = self.pending.front().map(|p| {
                (p.admitted + self.config.batch_window).saturating_duration_since(Instant::now())
            });
            self.note_loop_stall();
            self.poll.poll(&mut events, timeout)?;
            self.watchdog.begin_work();
            for ev in &events {
                match ev.token() {
                    LISTENER => self.accept_ready(ConnKind::Wire),
                    HTTP_LISTENER => self.accept_ready(ConnKind::Http),
                    Token(t) => {
                        let idx = t - CONN_BASE;
                        if ev.is_writable() {
                            self.flush_conn(idx);
                        }
                        if ev.is_readable() {
                            self.handle_readable(idx, registry);
                        }
                    }
                }
            }
        }
        self.note_loop_stall();
        self.drain_writes();
        Ok(())
    }

    /// Close out the current watchdog work period (called right before
    /// blocking in `poll`), recording a trip when it stalled.
    fn note_loop_stall(&mut self) {
        if self.watchdog.end_work().is_some() {
            self.shard.add(obs::names::SERVE_LOOP_STALLS, 1);
            self.shard.set_gauge(
                obs::names::GAUGE_SERVE_LOOP_MAX_STALL,
                self.watchdog.max_stall().as_micros().min(u64::MAX as u128) as u64,
            );
        }
    }

    /// Record one periodic time-series sample: instantaneous queue and
    /// cache occupancy plus the run's counters so far (and live heap
    /// bytes when the tracking allocator is installed).
    fn sample_tick(&mut self) {
        let mut values: Vec<(&str, u64)> = vec![
            (
                obs::names::GAUGE_SERVE_QUEUE_DEPTH,
                self.pending.len() as u64,
            ),
            (
                obs::names::GAUGE_SERVE_QUEUE_PEAK,
                self.report.queue_peak as u64,
            ),
            (obs::names::SERVE_REQUESTS, self.report.requests),
            (obs::names::SERVE_SHED, self.report.shed),
            (obs::names::SERVE_LOOP_STALLS, self.watchdog.stalls()),
            (obs::names::CACHE_HIT, self.cache.hits()),
            (obs::names::GAUGE_CACHE_ENTRIES, self.cache.len() as u64),
            (
                obs::names::GAUGE_MAINT_PENDING,
                self.engine.maint_stats().pending,
            ),
        ];
        if obs::alloc::installed() {
            values.push((obs::names::GAUGE_ALLOC_LIVE, obs::alloc::live_bytes()));
        }
        self.telemetry.sampler.sample(None, &values);
    }

    /// Assemble the live metrics snapshot served by the `STATS` op: the
    /// registry's absorbed totals, this loop's not-yet-absorbed shard
    /// (peeked, not drained — shutdown accounting is untouched), the live
    /// cache counters, and on-demand occupancy gauges.
    fn live_snapshot(&self, registry: &obs::Registry) -> obs::MetricSet {
        let mut set = registry.snapshot();
        set.merge(&self.shard.peek());
        let mut live = obs::MetricSet::new();
        live.add(obs::names::CACHE_HIT, self.cache.hits());
        live.add(obs::names::CACHE_MISS, self.cache.misses());
        live.add(obs::names::CACHE_EVICTIONS, self.cache.evictions());
        live.add(obs::names::CACHE_INVALIDATIONS, self.cache.invalidations());
        live.set_gauge(obs::names::GAUGE_CACHE_ENTRIES, self.cache.len() as u64);
        live.set_gauge(
            obs::names::GAUGE_SERVE_QUEUE_PEAK,
            self.report.queue_peak as u64,
        );
        live.set_gauge(
            obs::names::GAUGE_SERVE_QUEUE_DEPTH,
            self.pending.len() as u64,
        );
        live.set_gauge(
            obs::names::GAUGE_SERIES_DROPPED,
            self.telemetry.sampler.dropped(),
        );
        if obs::alloc::installed() {
            live.set_gauge(obs::names::GAUGE_ALLOC_LIVE, obs::alloc::live_bytes());
            live.set_gauge(obs::names::GAUGE_ALLOC_PEAK, obs::alloc::peak_bytes());
        }
        let maint = self.engine.maint_stats();
        live.add(obs::names::MAINT_QUEUED, maint.queued);
        live.add(obs::names::MAINT_APPLIED, maint.applied);
        live.add(obs::names::MAINT_APPLY_BATCHES, maint.apply_batches);
        live.add(obs::names::MAINT_SNAPSHOT_SWAPS, maint.snapshot_swaps);
        live.add(obs::names::MAINT_REMINE_TRIGGERS, maint.remine_triggers);
        live.add(obs::names::MAINT_REMINES, maint.remines_completed);
        live.set_gauge(obs::names::GAUGE_MAINT_PENDING, maint.pending);
        live.set_gauge(obs::names::GAUGE_MAINT_REPAIRS, maint.repairs_since_mine);
        set.merge(&live);
        set
    }

    /// Dispatch when the batch is full, the oldest query's latency budget
    /// is spent, or the server is draining for shutdown.
    fn batch_due(&self) -> bool {
        match self.pending.front() {
            None => false,
            Some(_) if self.shutdown => true,
            Some(_) if self.pending.len() >= self.config.max_batch.max(1) => true,
            Some(p) => p.admitted.elapsed() >= self.config.batch_window,
        }
    }

    fn run_batch(&mut self, registry: &obs::Registry) {
        // Fold queued maintenance first: one snapshot for however many ops
        // accumulated since the last publication, then the whole batch
        // runs against that pinned version.
        self.apply_ready();
        let n = self.pending.len().min(self.config.max_batch.max(1));
        let (metas, graphs): (Vec<_>, Vec<Graph>) = self
            .pending
            .drain(..n)
            .map(|p| {
                (
                    (p.conn, p.tag, p.key, p.recv, p.admitted, p.bytes_in),
                    p.graph,
                )
            })
            .unzip();
        let dispatched = Instant::now();
        let seed = self.config.seed.wrapping_add(self.report.batches);
        let (results, epoch) = {
            let _span = self.shard.span(obs::names::SPAN_SERVE_BATCH);
            let (results, _, epoch) =
                self.engine
                    .query_batch_pinned(&graphs, self.config.opts, seed, registry);
            (results, epoch)
        };
        let batch_end = Instant::now();
        let residence = batch_end.saturating_duration_since(dispatched);
        let seq_base = self.report.served;
        self.report.batches += 1;
        self.report.served += n as u64;
        self.shard.add(obs::names::SERVE_BATCHES, 1);
        self.shard.add(obs::names::SERVE_BATCHED, n as u64);
        // Cache admission: results belong to the batch's pinned epoch. A
        // background re-mine may have published a newer snapshot while the
        // batch ran — then these answers are already stale and must not be
        // cached (the sync below has moved the cache past their epoch).
        let cacheable = !self.cache.sync_epoch(self.engine.epoch()) && epoch == self.engine.epoch();
        for (i, ((conn, tag, key, recv, admitted, bytes_in), r)) in
            metas.into_iter().zip(results).enumerate()
        {
            // Latency decomposition. Admission→dispatch is queue wait, the
            // query's own stage total is its execution share, and the rest
            // of its batch residence is time spent waiting on co-batched
            // siblings. By construction `queue_wait + batch_wait +
            // exec_share ≤ serve.request`, whose clock keeps running
            // through respond-side bookkeeping below.
            let queue_wait = dispatched.saturating_duration_since(admitted);
            let exec_share = r.stats.total();
            let batch_wait = residence.saturating_sub(exec_share);
            self.shard
                .observe(obs::names::SPAN_SERVE_QUEUE_WAIT, queue_wait);
            self.shard
                .observe(obs::names::SPAN_SERVE_BATCH_WAIT, batch_wait);
            self.shard
                .observe(obs::names::SPAN_SERVE_EXEC_SHARE, exec_share);
            if self.telemetry.slow.is_enabled()
                && self.telemetry.slow.record(
                    seq_base + i as u64,
                    &r.stats,
                    batch_end,
                    &[
                        ("serve.queue_wait_ns", dur_ns(queue_wait)),
                        ("serve.batch_wait_ns", dur_ns(batch_wait)),
                    ],
                )
            {
                self.shard.add(obs::names::SERVE_SLOW_QUERIES, 1);
            }
            if cacheable {
                if let Some(key) = key {
                    self.cache.insert(key, r.matches.clone());
                }
            }
            self.shard
                .observe(obs::names::SPAN_SERVE_REQUEST, admitted.elapsed());
            let bytes_out = self.respond(
                conn,
                Response {
                    tag,
                    body: ResponseBody::Matches(r.matches),
                },
            );
            self.log_access(AccessRecord {
                conn,
                tag,
                op: "query",
                outcome: "ok",
                bytes_in,
                bytes_out,
                cache_hit: Some(false),
                epoch,
                stages: Some(AccessStages {
                    admit_us: dur_us(admitted.saturating_duration_since(recv)),
                    queue_wait_us: dur_us(queue_wait),
                    batch_wait_us: dur_us(batch_wait),
                    exec_us: dur_us(exec_share),
                }),
            });
        }
    }

    fn log_access(&mut self, rec: AccessRecord<'_>) {
        if let Some(access) = self.telemetry.access.as_mut() {
            access.log(&rec);
        }
    }

    fn accept_ready(&mut self, kind: ConnKind) {
        loop {
            let accepted = match kind {
                ConnKind::Wire => self.listener.accept(),
                ConnKind::Http => match &self.http_listener {
                    Some(l) => l.accept(),
                    None => return,
                },
            };
            match accepted {
                Ok((stream, _)) => {
                    let open = self.conns.iter().filter(|c| c.is_some()).count();
                    if open >= self.config.max_conns || stream.set_nonblocking(true).is_err() {
                        continue; // dropped: accept backlog is the only wait
                    }
                    let _ = stream.set_nodelay(true);
                    let idx = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    match self
                        .poll
                        .register(&stream, Token(idx + CONN_BASE), Interest::READABLE)
                    {
                        Ok(()) => self.conns[idx] = Some(Conn::new(stream, kind)),
                        Err(_) => self.free.push(idx),
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn close_conn(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].take() {
            let _ = self.poll.deregister(&conn.stream);
            self.free.push(idx);
        }
        // Pending queries from this connection still execute; their
        // responses are silently dropped by `respond`.
    }

    fn handle_readable(&mut self, idx: usize, registry: &obs::Registry) {
        let mut dead = false;
        {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            let mut tmp = [0u8; 16 << 10];
            let mut taken = 0usize;
            loop {
                if taken >= READ_QUANTUM {
                    break; // level triggering re-notifies for the rest
                }
                match conn.stream.read(&mut tmp) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&tmp[..n]);
                        taken += n;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        let kind = self.conns.get(idx).and_then(Option::as_ref).map(|c| c.kind);
        match kind {
            Some(ConnKind::Wire) => self.parse_frames(idx, registry),
            Some(ConnKind::Http) => self.parse_http(idx, registry),
            None => {}
        }
        if dead {
            self.close_conn(idx);
        }
    }

    /// Parse and answer one HTTP monitoring request buffered on `idx`.
    /// One-shot semantics: the response closes the connection once its
    /// bytes drain.
    fn parse_http(&mut self, idx: usize, registry: &obs::Registry) {
        let parsed = {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            if conn.close_after_flush {
                return; // response already queued; ignore trailing bytes
            }
            match http::parse_request(&conn.rbuf) {
                http::Parse::Incomplete => return,
                done => {
                    conn.rbuf.clear();
                    done
                }
            }
        };
        self.report.http_requests += 1;
        self.shard.add(obs::names::SERVE_HTTP_REQUESTS, 1);
        let data = match parsed {
            http::Parse::Incomplete => unreachable!("handled above"),
            http::Parse::Bad(why) => http::response(
                400,
                "Bad Request",
                "text/plain; charset=utf-8",
                format!("{why}\n").as_bytes(),
            ),
            http::Parse::Ok(req, _) if req.method != "GET" && req.method != "HEAD" => {
                http::response(
                    405,
                    "Method Not Allowed",
                    "text/plain; charset=utf-8",
                    b"only GET is supported\n",
                )
            }
            http::Parse::Ok(req, _) => match req.path.as_str() {
                "/metrics" => http::response(
                    200,
                    "OK",
                    obs::prom::CONTENT_TYPE,
                    obs::prom::render(&self.live_snapshot(registry)).as_bytes(),
                ),
                "/healthz" => {
                    let (status, reason, body) = self.health();
                    http::response(status, reason, "application/json", body.as_bytes())
                }
                "/slowz" => http::response(
                    200,
                    "OK",
                    "application/json",
                    self.telemetry.slow.render_chrome_json().as_bytes(),
                ),
                _ => http::response(
                    404,
                    "Not Found",
                    "text/plain; charset=utf-8",
                    b"not found (try /metrics, /healthz, /slowz)\n",
                ),
            },
        };
        self.send_http(idx, &data);
    }

    /// The `/healthz` verdict: `draining` once shutdown has begun,
    /// `degraded` while the watchdog's most recent stall is fresh, `ok`
    /// otherwise. Non-`ok` states use 503 so load-balancer checks fail
    /// without parsing the body.
    fn health(&self) -> (u16, &'static str, String) {
        let (status, reason, state) = if self.shutdown {
            (503, "Service Unavailable", "draining")
        } else if self.watchdog.degraded(Instant::now()) {
            (503, "Service Unavailable", "degraded")
        } else {
            (200, "OK", "ok")
        };
        let open = self.conns.iter().filter(|c| c.is_some()).count();
        let body = format!(
            "{{\"status\": \"{state}\", \"epoch\": {}, \"queue_depth\": {}, \
             \"queue_cap\": {}, \"conns\": {open}, \"stall_count\": {}, \
             \"max_stall_us\": {}}}\n",
            self.engine.epoch(),
            self.pending.len(),
            self.config.queue_cap,
            self.watchdog.stalls(),
            dur_us(self.watchdog.max_stall()),
        );
        (status, reason, body)
    }

    /// Queue one HTTP response on `idx` and arrange for the connection
    /// to close once it drains.
    fn send_http(&mut self, idx: usize, data: &[u8]) {
        let overflow = {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            conn.enqueue(data);
            conn.close_after_flush = true;
            conn.unsent() > WBUF_CAP
        };
        if overflow {
            self.shard.add(obs::names::SERVE_SLOW_CONSUMER_DROP, 1);
            self.close_conn(idx);
        } else {
            self.flush_conn(idx);
        }
    }

    /// Decode and handle every complete frame buffered on `idx`. The
    /// leftover is bounded: `take_frame` rejects declared lengths beyond
    /// [`MAX_FRAME`], so at most `4 + MAX_FRAME` partial bytes linger.
    fn parse_frames(&mut self, idx: usize, registry: &obs::Registry) {
        loop {
            let step = {
                let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                    return;
                };
                match protocol::take_frame(&conn.rbuf) {
                    Err(_) => None,
                    Ok(None) => return,
                    Ok(Some((payload, used))) => {
                        let recv = Instant::now(); // read-complete stamp
                        let tag = payload
                            .get(..4)
                            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
                            .unwrap_or(0);
                        let req = protocol::decode_request(payload);
                        conn.rbuf.drain(..used);
                        Some((tag, req, used as u64, recv))
                    }
                }
            };
            let epoch = self.engine.epoch();
            match step {
                None => {
                    // Oversized frame: protocol violation, drop the link —
                    // counted under its own name so the operator can tell
                    // a misbehaving client from a malformed-but-framed
                    // request.
                    self.report.errors += 1;
                    self.report.proto_errors += 1;
                    self.shard.add(obs::names::SERVE_ERRORS, 1);
                    self.shard.add(obs::names::SERVE_PROTO_ERROR, 1);
                    self.log_access(AccessRecord {
                        conn: idx,
                        tag: 0,
                        op: "frame",
                        outcome: "proto_error",
                        bytes_in: 0,
                        bytes_out: 0,
                        cache_hit: None,
                        epoch,
                        stages: None,
                    });
                    self.close_conn(idx);
                    return;
                }
                Some((tag, Err(msg), bytes_in, _)) => {
                    self.report.errors += 1;
                    self.shard.add(obs::names::SERVE_ERRORS, 1);
                    let bytes_out = self.respond(
                        idx,
                        Response {
                            tag,
                            body: ResponseBody::Error(msg),
                        },
                    );
                    self.log_access(AccessRecord {
                        conn: idx,
                        tag,
                        op: "invalid",
                        outcome: "error",
                        bytes_in,
                        bytes_out,
                        cache_hit: None,
                        epoch,
                        stages: None,
                    });
                }
                Some((_, Ok(req), bytes_in, recv)) => {
                    self.report.requests += 1;
                    self.shard.add(obs::names::SERVE_REQUESTS, 1);
                    self.handle_request(idx, req, recv, bytes_in, registry);
                    if self.config.max_requests > 0
                        && self.report.requests >= self.config.max_requests
                    {
                        self.shutdown = true;
                    }
                }
            }
        }
    }

    fn handle_request(
        &mut self,
        idx: usize,
        req: Request,
        recv: Instant,
        bytes_in: u64,
        registry: &obs::Registry,
    ) {
        let tag = req.tag;
        // Immediate (non-queued) outcomes share one access-record shape.
        let mut immediate: Option<(&'static str, &'static str, Option<bool>)> = None;
        let mut bytes_out = 0u64;
        match req.body {
            RequestBody::Query(g) => {
                self.report.queries += 1;
                self.shard.add(obs::names::SERVE_QUERIES, 1);
                if g.edge_count() == 0 {
                    self.report.errors += 1;
                    self.shard.add(obs::names::SERVE_ERRORS, 1);
                    bytes_out = self.respond(
                        idx,
                        Response {
                            tag,
                            body: ResponseBody::Error(
                                "query must contain at least one edge".into(),
                            ),
                        },
                    );
                    immediate = Some(("query", "error", None));
                } else {
                    // Read-your-writes: fold any acked-but-unapplied
                    // maintenance before consulting the cache or queueing,
                    // so this query observes every op acked before it.
                    self.apply_ready();
                    let key = (self.config.cache_cap > 0).then(|| canonical_code(&g));
                    let mut hit_ids = None;
                    if let Some(key) = &key {
                        // Belt and braces: the cache is synced on every
                        // publication (apply_ready above), but admission
                        // re-checks so a background re-mine landing between
                        // that sync and this lookup can't serve stale
                        // answers.
                        self.cache.sync_epoch(self.engine.epoch());
                        hit_ids = self.cache.get(key).map(|hit| hit.to_vec());
                    }
                    if let Some(ids) = hit_ids {
                        bytes_out = self.respond(
                            idx,
                            Response {
                                tag,
                                body: ResponseBody::Matches(ids),
                            },
                        );
                        immediate = Some(("query", "ok", Some(true)));
                    } else if self.pending.len() >= self.config.queue_cap {
                        self.report.shed += 1;
                        self.shard.add(obs::names::SERVE_SHED, 1);
                        bytes_out = self.respond(
                            idx,
                            Response {
                                tag,
                                body: ResponseBody::Busy,
                            },
                        );
                        immediate = Some(("query", "busy", None));
                    } else {
                        self.pending.push_back(PendingQuery {
                            conn: idx,
                            tag,
                            key,
                            graph: g,
                            recv,
                            admitted: Instant::now(),
                            bytes_in,
                        });
                        self.report.queue_peak = self.report.queue_peak.max(self.pending.len());
                        // Logged from run_batch, stage timings included.
                    }
                }
            }
            RequestBody::Insert(g) => {
                // Queued, not applied: the gid comes from the engine's
                // shadow view, the snapshot is untouched, and in-flight
                // batches keep their pinned version. The op is folded in
                // (with any siblings) at the next query admission or batch
                // dispatch — see `apply_ready`.
                let gid = self.engine.queue_insert(g);
                self.note_maintenance();
                bytes_out = self.respond(
                    idx,
                    Response {
                        tag,
                        body: ResponseBody::Inserted(gid),
                    },
                );
                immediate = Some(("insert", "ok", None));
            }
            RequestBody::Remove(gid) => {
                let was_active = self.engine.queue_remove(gid);
                if was_active {
                    self.note_maintenance();
                }
                bytes_out = self.respond(
                    idx,
                    Response {
                        tag,
                        body: ResponseBody::Removed(was_active),
                    },
                );
                immediate = Some(("remove", "ok", None));
            }
            RequestBody::Stats => {
                // Answered inline — no queueing, no engine, no pause. The
                // snapshot layers the loop's live state over the registry's
                // absorbed totals, so mid-load counters are visible.
                self.shard.add(obs::names::SERVE_STATS, 1);
                let json = self.live_snapshot(registry).render_json();
                let (body, outcome) = if json.len() <= MAX_FRAME - 5 {
                    (ResponseBody::Stats(json), "ok")
                } else {
                    // Practically unreachable (a snapshot is a few KB), but
                    // a truncated JSON document would be worse than an error.
                    (
                        ResponseBody::Error("stats snapshot exceeds MAX_FRAME".into()),
                        "error",
                    )
                };
                bytes_out = self.respond(idx, Response { tag, body });
                immediate = Some(("stats", outcome, None));
            }
            RequestBody::Shutdown => {
                self.shutdown = true;
                bytes_out = self.respond(
                    idx,
                    Response {
                        tag,
                        body: ResponseBody::ShuttingDown,
                    },
                );
                immediate = Some(("shutdown", "ok", None));
            }
        }
        if let Some((op, outcome, cache_hit)) = immediate {
            // Re-read: insert/remove bump the epoch they are served under.
            let epoch = self.engine.epoch();
            self.log_access(AccessRecord {
                conn: idx,
                tag,
                op,
                outcome,
                bytes_in,
                bytes_out,
                cache_hit,
                epoch,
                stages: Some(AccessStages {
                    admit_us: dur_us(recv.elapsed()),
                    ..AccessStages::default()
                }),
            });
        }
    }

    fn note_maintenance(&mut self) {
        self.report.maintenance += 1;
        self.shard.add(obs::names::SERVE_MAINTENANCE, 1);
    }

    /// Fold every queued maintenance op into one published snapshot (the
    /// batching point: N acked ops cost one copy) and absorb background
    /// re-mine completions. Both publication kinds re-sync the cache, so
    /// an entry computed against a retired snapshot can never be served
    /// after this returns.
    fn apply_ready(&mut self) {
        if let Some(out) = self.engine.apply_pending() {
            self.shard
                .observe(obs::names::SPAN_MAINT_APPLY, out.duration);
            self.cache.sync_epoch(out.epoch);
        }
        for rep in self.engine.drain_remine_reports() {
            self.shard
                .observe(obs::names::SPAN_MAINT_REMINE, rep.duration);
            self.cache.sync_epoch(rep.epoch);
        }
    }

    /// Record the engine's cumulative `maint.*` counters and gauges into
    /// `registry` (end-of-run counterpart of the live values merged by
    /// `live_snapshot`).
    fn record_maint_metrics(&self, registry: &obs::Registry) {
        let s = self.engine.maint_stats();
        let shard = registry.shard();
        shard.add(obs::names::MAINT_QUEUED, s.queued);
        shard.add(obs::names::MAINT_APPLIED, s.applied);
        shard.add(obs::names::MAINT_APPLY_BATCHES, s.apply_batches);
        shard.add(obs::names::MAINT_SNAPSHOT_SWAPS, s.snapshot_swaps);
        shard.add(obs::names::MAINT_REMINE_TRIGGERS, s.remine_triggers);
        shard.add(obs::names::MAINT_REMINES, s.remines_completed);
        registry.absorb(shard);
        registry.set_gauge(obs::names::GAUGE_MAINT_PENDING, s.pending);
        registry.set_gauge(obs::names::GAUGE_MAINT_REPAIRS, s.repairs_since_mine);
    }

    /// Queue `resp` on connection `idx` and try to flush. Returns the
    /// encoded frame size in bytes (0 when the client is already gone).
    fn respond(&mut self, idx: usize, resp: Response) -> u64 {
        let frame = protocol::encode_response(&resp);
        debug_assert!(frame.len() <= 4 + MAX_FRAME);
        let overflow = {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return 0; // client already gone
            };
            conn.enqueue(&frame);
            conn.unsent() > WBUF_CAP
        };
        if overflow {
            // Slow consumer: the peer stopped reading and its unsent
            // responses hit the cap. Count the drop — a silent disconnect
            // here looks like a network failure to the operator.
            self.shard.add(obs::names::SERVE_SLOW_CONSUMER_DROP, 1);
            self.close_conn(idx);
        } else {
            self.flush_conn(idx);
        }
        frame.len() as u64
    }

    fn flush_conn(&mut self, idx: usize) {
        let mut dead = false;
        let mut done = false;
        {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            loop {
                if conn.wpos >= conn.wbuf.len() {
                    conn.wbuf.clear();
                    conn.wpos = 0;
                    done = conn.close_after_flush;
                    break;
                }
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.wpos += n;
                        conn.wflushed += n as u64;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            // Responses fully on the wire: their enqueue→flush latency is
            // the write-wait component of the decomposition. The shard and
            // conns are disjoint fields, so observing here is fine.
            while let Some(&(mark, at)) = conn.wmarks.front() {
                if mark > conn.wflushed {
                    break;
                }
                conn.wmarks.pop_front();
                self.shard
                    .observe(obs::names::SPAN_SERVE_WRITE_WAIT, at.elapsed());
            }
        }
        if dead || done {
            self.close_conn(idx);
        } else {
            self.update_interest(idx);
        }
    }

    fn update_interest(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        let want_write = conn.wpos < conn.wbuf.len();
        if want_write != conn.writable_interest {
            conn.writable_interest = want_write;
            let interest = if want_write {
                Interest::READABLE | Interest::WRITABLE
            } else {
                Interest::READABLE
            };
            let _ = self
                .poll
                .reregister(&conn.stream, Token(idx + CONN_BASE), interest);
        }
    }

    /// Best-effort post-shutdown flush so drained-queue answers and the
    /// shutdown ack reach their clients before the sockets drop.
    fn drain_writes(&mut self) {
        let deadline = Instant::now() + Duration::from_secs(1);
        loop {
            let unsent: Vec<usize> = (0..self.conns.len())
                .filter(|&i| self.conns[i].as_ref().is_some_and(|c| c.unsent() > 0))
                .collect();
            if unsent.is_empty() || Instant::now() >= deadline {
                break;
            }
            for idx in unsent {
                self.flush_conn(idx);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}
