//! The serving event loop: micro-batching, backpressure, cache.
//!
//! One thread owns every socket (accepted connections are registered
//! with the vendored level-triggered `minipoll` selector) while the
//! engine's persistent worker pool provides the parallelism that
//! matters — executing micro-batches. The loop:
//!
//! 1. **Admission.** Each decoded query is answered from the result
//!    cache when possible; otherwise it enters a **bounded** queue. A
//!    full queue means an immediate `Busy` response (`serve.shed`) —
//!    overload degrades into explicit sheds, never into unbounded
//!    buffering. Per-connection read/write buffers are capped too, so
//!    total memory is `O(max_conns · buffer caps + queue_cap · query)`.
//! 2. **Micro-batching.** Queued queries are dispatched to
//!    [`treepi::Engine::query_batch_obs`] as soon as the batch fills
//!    ([`ServeConfig::max_batch`]) or the oldest entry has waited
//!    [`ServeConfig::batch_window`] — the latency budget a query may be
//!    held in exchange for batching efficiency. The poll timeout is the
//!    oldest entry's remaining budget, so a sleepy server still honors
//!    the window.
//! 3. **Maintenance.** Insert/remove requests apply immediately via the
//!    engine's epoch-bumping API; the cache compares epochs and drops
//!    its entries, so no answer computed against the old database can
//!    be served afterwards. Queued queries always observe the database
//!    state at *execution* time.
//!
//! Determinism caveat: which queries share a batch depends on arrival
//! timing, so `serve.*` / `cache.*` metrics (and batch seeds) are
//! timing-dependent — exempted namespaces. The *answers* are not:
//! every query is answered against the current database regardless of
//! batch shape.

use crate::cache::QueryCache;
use crate::protocol::{self, Request, RequestBody, Response, ResponseBody, MAX_FRAME};
use crate::telemetry::ServeTelemetry;
use graph_core::{canonical_code, CanonCode, Graph};
use minipoll::{Events, Interest, Poll, Token};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};
use treepi::{Engine, QueryOptions};

const LISTENER: Token = Token(0);
/// Stop draining a connection after this many bytes per readable event;
/// level triggering re-notifies, and the cap keeps one firehose client
/// from growing `rbuf` without bound inside a single event.
const READ_QUANTUM: usize = 256 << 10;
/// A connection whose client stops reading is dropped once this many
/// unsent response bytes pile up.
const WBUF_CAP: usize = 8 << 20;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Latency budget a queued query may wait for its batch to fill.
    pub batch_window: Duration,
    /// Maximum queries per engine micro-batch.
    pub max_batch: usize,
    /// Admission queue bound; beyond it queries are shed with `Busy`.
    pub queue_cap: usize,
    /// Result-cache capacity in entries (0 disables the cache).
    pub cache_cap: usize,
    /// Maximum simultaneously open connections; excess accepts are
    /// dropped immediately.
    pub max_conns: usize,
    /// Base seed for batch RNGs (batch `b` runs with `seed + b`).
    pub seed: u64,
    /// Stop after decoding this many request frames (0 = run until a
    /// shutdown request). A safety valve for scripted runs.
    pub max_requests: u64,
    /// Query pipeline options used for every batch.
    pub opts: QueryOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_window: Duration::from_millis(1),
            max_batch: 64,
            queue_cap: 1024,
            cache_cap: 4096,
            max_conns: 1024,
            seed: 2007,
            max_requests: 0,
            opts: QueryOptions::default(),
        }
    }
}

/// Totals of one server run, returned by [`Server::run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeReport {
    /// Request frames decoded.
    pub requests: u64,
    /// Query requests (cache hits, batched, and shed included).
    pub queries: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries executed inside micro-batches.
    pub served: u64,
    /// Queries refused with `Busy` (admission queue full).
    pub shed: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Maintenance operations (insert/remove) applied.
    pub maintenance: u64,
    /// Malformed frames answered with an error.
    pub errors: u64,
    /// Peak admission-queue depth (≤ `queue_cap` by construction).
    pub queue_peak: usize,
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requests={} queries={} cache_hits={} served={} shed={} \
             batches={} maintenance={} errors={} queue_peak={}",
            self.requests,
            self.queries,
            self.cache_hits,
            self.served,
            self.shed,
            self.batches,
            self.maintenance,
            self.errors,
            self.queue_peak
        )
    }
}

struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    writable_interest: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            writable_interest: false,
        }
    }

    fn unsent(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

struct PendingQuery {
    conn: usize,
    tag: u32,
    key: Option<CanonCode>,
    graph: Graph,
    admitted: Instant,
}

/// A bound-but-not-yet-running server. [`Server::bind`] then
/// [`Server::run`].
pub struct Server {
    listener: TcpListener,
    poll: Poll,
    config: ServeConfig,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:7878`; port 0 picks an ephemeral
    /// port — read it back with [`Server::local_addr`]).
    pub fn bind(addr: &str, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let poll = Poll::new()?;
        poll.register(&listener, LISTENER, Interest::READABLE)?;
        Ok(Server {
            listener,
            poll,
            config,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Run the event loop until a shutdown request (or `max_requests`)
    /// arrives, then drain the queue, flush responses, and return the
    /// run's totals. Latency histograms (`serve.request`,
    /// `serve.batch_exec`) and the `serve.*` / `cache.*` counters are
    /// recorded into `registry`.
    pub fn run(self, engine: &mut Engine, registry: &obs::Registry) -> io::Result<ServeReport> {
        let mut telemetry = ServeTelemetry::disabled();
        self.run_with_telemetry(engine, registry, &mut telemetry)
    }

    /// [`Server::run`] with live telemetry attached: `telemetry.sampler`
    /// is ticked once per poll iteration (recording queue depth, shed
    /// count, cache hits, and live heap bytes), and queries whose verify
    /// stage meets the slow-query threshold are captured into
    /// `telemetry.slow`. Both outlive the run — the caller renders them
    /// after the server exits.
    pub fn run_with_telemetry(
        self,
        engine: &mut Engine,
        registry: &obs::Registry,
        telemetry: &mut ServeTelemetry,
    ) -> io::Result<ServeReport> {
        let epoch = engine.epoch();
        let mut lp = EventLoop {
            listener: self.listener,
            poll: self.poll,
            cache: QueryCache::new(self.config.cache_cap, epoch),
            config: self.config,
            engine,
            shard: registry.shard(),
            telemetry,
            conns: Vec::new(),
            free: Vec::new(),
            pending: VecDeque::new(),
            report: ServeReport::default(),
            shutdown: false,
        };
        let result = lp.serve(registry);
        lp.cache.record_metrics(registry);
        registry.set_gauge(
            obs::names::GAUGE_SERVE_QUEUE_PEAK,
            lp.report.queue_peak as u64,
        );
        lp.report.cache_hits = lp.cache.hits();
        registry.absorb(lp.shard);
        result.map(|()| lp.report)
    }
}

struct EventLoop<'e> {
    listener: TcpListener,
    poll: Poll,
    cache: QueryCache,
    config: ServeConfig,
    engine: &'e mut Engine,
    shard: obs::Shard,
    telemetry: &'e mut ServeTelemetry,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    pending: VecDeque<PendingQuery>,
    report: ServeReport,
    shutdown: bool,
}

impl EventLoop<'_> {
    fn serve(&mut self, registry: &obs::Registry) -> io::Result<()> {
        let mut events = Events::with_capacity(256);
        loop {
            while self.batch_due() {
                self.run_batch(registry);
            }
            if self.telemetry.sampler.due() {
                self.sample_tick();
            }
            if self.shutdown && self.pending.is_empty() {
                break;
            }
            let timeout = self.pending.front().map(|p| {
                (p.admitted + self.config.batch_window).saturating_duration_since(Instant::now())
            });
            self.poll.poll(&mut events, timeout)?;
            for ev in &events {
                match ev.token() {
                    LISTENER => self.accept_ready(),
                    Token(t) => {
                        let idx = t - 1;
                        if ev.is_writable() {
                            self.flush_conn(idx);
                        }
                        if ev.is_readable() {
                            self.handle_readable(idx, registry);
                        }
                    }
                }
            }
        }
        self.drain_writes();
        Ok(())
    }

    /// Record one periodic time-series sample: instantaneous queue and
    /// cache occupancy plus the run's counters so far (and live heap
    /// bytes when the tracking allocator is installed).
    fn sample_tick(&mut self) {
        let mut values: Vec<(&str, u64)> = vec![
            (
                obs::names::GAUGE_SERVE_QUEUE_DEPTH,
                self.pending.len() as u64,
            ),
            (
                obs::names::GAUGE_SERVE_QUEUE_PEAK,
                self.report.queue_peak as u64,
            ),
            (obs::names::SERVE_REQUESTS, self.report.requests),
            (obs::names::SERVE_SHED, self.report.shed),
            (obs::names::CACHE_HIT, self.cache.hits()),
            (obs::names::GAUGE_CACHE_ENTRIES, self.cache.len() as u64),
        ];
        if obs::alloc::installed() {
            values.push((obs::names::GAUGE_ALLOC_LIVE, obs::alloc::live_bytes()));
        }
        self.telemetry.sampler.sample(None, &values);
    }

    /// Assemble the live metrics snapshot served by the `STATS` op: the
    /// registry's absorbed totals, this loop's not-yet-absorbed shard
    /// (peeked, not drained — shutdown accounting is untouched), the live
    /// cache counters, and on-demand occupancy gauges.
    fn live_snapshot(&self, registry: &obs::Registry) -> obs::MetricSet {
        let mut set = registry.snapshot();
        set.merge(&self.shard.peek());
        let mut live = obs::MetricSet::new();
        live.add(obs::names::CACHE_HIT, self.cache.hits());
        live.add(obs::names::CACHE_MISS, self.cache.misses());
        live.add(obs::names::CACHE_EVICTIONS, self.cache.evictions());
        live.add(obs::names::CACHE_INVALIDATIONS, self.cache.invalidations());
        live.set_gauge(obs::names::GAUGE_CACHE_ENTRIES, self.cache.len() as u64);
        live.set_gauge(
            obs::names::GAUGE_SERVE_QUEUE_PEAK,
            self.report.queue_peak as u64,
        );
        live.set_gauge(
            obs::names::GAUGE_SERVE_QUEUE_DEPTH,
            self.pending.len() as u64,
        );
        if obs::alloc::installed() {
            live.set_gauge(obs::names::GAUGE_ALLOC_LIVE, obs::alloc::live_bytes());
            live.set_gauge(obs::names::GAUGE_ALLOC_PEAK, obs::alloc::peak_bytes());
        }
        set.merge(&live);
        set
    }

    /// Dispatch when the batch is full, the oldest query's latency budget
    /// is spent, or the server is draining for shutdown.
    fn batch_due(&self) -> bool {
        match self.pending.front() {
            None => false,
            Some(_) if self.shutdown => true,
            Some(_) if self.pending.len() >= self.config.max_batch.max(1) => true,
            Some(p) => p.admitted.elapsed() >= self.config.batch_window,
        }
    }

    fn run_batch(&mut self, registry: &obs::Registry) {
        let n = self.pending.len().min(self.config.max_batch.max(1));
        let (metas, graphs): (Vec<_>, Vec<Graph>) = self
            .pending
            .drain(..n)
            .map(|p| ((p.conn, p.tag, p.key, p.admitted), p.graph))
            .unzip();
        let seed = self.config.seed.wrapping_add(self.report.batches);
        let results = {
            let _span = self.shard.span(obs::names::SPAN_SERVE_BATCH);
            let (results, _) =
                self.engine
                    .query_batch_obs(&graphs, self.config.opts, seed, registry);
            results
        };
        let batch_end = Instant::now();
        let seq_base = self.report.served;
        self.report.batches += 1;
        self.report.served += n as u64;
        self.shard.add(obs::names::SERVE_BATCHES, 1);
        self.shard.add(obs::names::SERVE_BATCHED, n as u64);
        for (i, ((conn, tag, key, admitted), r)) in metas.into_iter().zip(results).enumerate() {
            if self.telemetry.slow.is_enabled()
                && self
                    .telemetry
                    .slow
                    .record(seq_base + i as u64, &r.stats, batch_end)
            {
                self.shard.add(obs::names::SERVE_SLOW_QUERIES, 1);
            }
            if let Some(key) = key {
                self.cache.insert(key, r.matches.clone());
            }
            self.shard
                .observe(obs::names::SPAN_SERVE_REQUEST, admitted.elapsed());
            self.respond(
                conn,
                Response {
                    tag,
                    body: ResponseBody::Matches(r.matches),
                },
            );
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let open = self.conns.iter().filter(|c| c.is_some()).count();
                    if open >= self.config.max_conns || stream.set_nonblocking(true).is_err() {
                        continue; // dropped: accept backlog is the only wait
                    }
                    let _ = stream.set_nodelay(true);
                    let idx = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    match self
                        .poll
                        .register(&stream, Token(idx + 1), Interest::READABLE)
                    {
                        Ok(()) => self.conns[idx] = Some(Conn::new(stream)),
                        Err(_) => self.free.push(idx),
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn close_conn(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].take() {
            let _ = self.poll.deregister(&conn.stream);
            self.free.push(idx);
        }
        // Pending queries from this connection still execute; their
        // responses are silently dropped by `respond`.
    }

    fn handle_readable(&mut self, idx: usize, registry: &obs::Registry) {
        let mut dead = false;
        {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            let mut tmp = [0u8; 16 << 10];
            let mut taken = 0usize;
            loop {
                if taken >= READ_QUANTUM {
                    break; // level triggering re-notifies for the rest
                }
                match conn.stream.read(&mut tmp) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&tmp[..n]);
                        taken += n;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        self.parse_frames(idx, registry);
        if dead {
            self.close_conn(idx);
        }
    }

    /// Decode and handle every complete frame buffered on `idx`. The
    /// leftover is bounded: `take_frame` rejects declared lengths beyond
    /// [`MAX_FRAME`], so at most `4 + MAX_FRAME` partial bytes linger.
    fn parse_frames(&mut self, idx: usize, registry: &obs::Registry) {
        loop {
            let step = {
                let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                    return;
                };
                match protocol::take_frame(&conn.rbuf) {
                    Err(_) => None,
                    Ok(None) => return,
                    Ok(Some((payload, used))) => {
                        let tag = payload
                            .get(..4)
                            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
                            .unwrap_or(0);
                        let req = protocol::decode_request(payload);
                        conn.rbuf.drain(..used);
                        Some((tag, req))
                    }
                }
            };
            match step {
                None => {
                    // Oversized frame: protocol violation, drop the link.
                    self.report.errors += 1;
                    self.shard.add(obs::names::SERVE_ERRORS, 1);
                    self.close_conn(idx);
                    return;
                }
                Some((tag, Err(msg))) => {
                    self.report.errors += 1;
                    self.shard.add(obs::names::SERVE_ERRORS, 1);
                    self.respond(
                        idx,
                        Response {
                            tag,
                            body: ResponseBody::Error(msg),
                        },
                    );
                }
                Some((_, Ok(req))) => {
                    self.report.requests += 1;
                    self.shard.add(obs::names::SERVE_REQUESTS, 1);
                    self.handle_request(idx, req, registry);
                    if self.config.max_requests > 0
                        && self.report.requests >= self.config.max_requests
                    {
                        self.shutdown = true;
                    }
                }
            }
        }
    }

    fn handle_request(&mut self, idx: usize, req: Request, registry: &obs::Registry) {
        let tag = req.tag;
        match req.body {
            RequestBody::Query(g) => {
                self.report.queries += 1;
                self.shard.add(obs::names::SERVE_QUERIES, 1);
                if g.edge_count() == 0 {
                    self.report.errors += 1;
                    self.shard.add(obs::names::SERVE_ERRORS, 1);
                    self.respond(
                        idx,
                        Response {
                            tag,
                            body: ResponseBody::Error(
                                "query must contain at least one edge".into(),
                            ),
                        },
                    );
                    return;
                }
                let key = (self.config.cache_cap > 0).then(|| canonical_code(&g));
                if let Some(key) = &key {
                    // Belt and braces: the cache is also synced at every
                    // maintenance op, but admission re-checks so a future
                    // out-of-loop mutation path can't serve stale answers.
                    self.cache.sync_epoch(self.engine.epoch());
                    if let Some(hit) = self.cache.get(key) {
                        let ids = hit.to_vec();
                        self.respond(
                            idx,
                            Response {
                                tag,
                                body: ResponseBody::Matches(ids),
                            },
                        );
                        return;
                    }
                }
                if self.pending.len() >= self.config.queue_cap {
                    self.report.shed += 1;
                    self.shard.add(obs::names::SERVE_SHED, 1);
                    self.respond(
                        idx,
                        Response {
                            tag,
                            body: ResponseBody::Busy,
                        },
                    );
                    return;
                }
                self.pending.push_back(PendingQuery {
                    conn: idx,
                    tag,
                    key,
                    graph: g,
                    admitted: Instant::now(),
                });
                self.report.queue_peak = self.report.queue_peak.max(self.pending.len());
            }
            RequestBody::Insert(g) => {
                let gid = self.engine.insert(g);
                self.apply_maintenance();
                self.respond(
                    idx,
                    Response {
                        tag,
                        body: ResponseBody::Inserted(gid),
                    },
                );
            }
            RequestBody::Remove(gid) => {
                let was_active = self.engine.remove(gid);
                self.apply_maintenance();
                self.respond(
                    idx,
                    Response {
                        tag,
                        body: ResponseBody::Removed(was_active),
                    },
                );
            }
            RequestBody::Stats => {
                // Answered inline — no queueing, no engine, no pause. The
                // snapshot layers the loop's live state over the registry's
                // absorbed totals, so mid-load counters are visible.
                self.shard.add(obs::names::SERVE_STATS, 1);
                let json = self.live_snapshot(registry).render_json();
                let body = if json.len() <= MAX_FRAME - 5 {
                    ResponseBody::Stats(json)
                } else {
                    // Practically unreachable (a snapshot is a few KB), but
                    // a truncated JSON document would be worse than an error.
                    ResponseBody::Error("stats snapshot exceeds MAX_FRAME".into())
                };
                self.respond(idx, Response { tag, body });
            }
            RequestBody::Shutdown => {
                self.shutdown = true;
                self.respond(
                    idx,
                    Response {
                        tag,
                        body: ResponseBody::ShuttingDown,
                    },
                );
            }
        }
    }

    fn apply_maintenance(&mut self) {
        self.report.maintenance += 1;
        self.shard.add(obs::names::SERVE_MAINTENANCE, 1);
        self.cache.sync_epoch(self.engine.epoch());
    }

    fn respond(&mut self, idx: usize, resp: Response) {
        let frame = protocol::encode_response(&resp);
        debug_assert!(frame.len() <= 4 + MAX_FRAME);
        let overflow = {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return; // client already gone
            };
            conn.wbuf.extend_from_slice(&frame);
            conn.unsent() > WBUF_CAP
        };
        if overflow {
            // Slow consumer: the peer stopped reading and its unsent
            // responses hit the cap. Count the drop — a silent disconnect
            // here looks like a network failure to the operator.
            self.shard.add(obs::names::SERVE_SLOW_CONSUMER_DROP, 1);
            self.close_conn(idx);
        } else {
            self.flush_conn(idx);
        }
    }

    fn flush_conn(&mut self, idx: usize) {
        let mut dead = false;
        {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            loop {
                if conn.wpos >= conn.wbuf.len() {
                    conn.wbuf.clear();
                    conn.wpos = 0;
                    break;
                }
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => conn.wpos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.close_conn(idx);
        } else {
            self.update_interest(idx);
        }
    }

    fn update_interest(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        let want_write = conn.wpos < conn.wbuf.len();
        if want_write != conn.writable_interest {
            conn.writable_interest = want_write;
            let interest = if want_write {
                Interest::READABLE | Interest::WRITABLE
            } else {
                Interest::READABLE
            };
            let _ = self.poll.reregister(&conn.stream, Token(idx + 1), interest);
        }
    }

    /// Best-effort post-shutdown flush so drained-queue answers and the
    /// shutdown ack reach their clients before the sockets drop.
    fn drain_writes(&mut self) {
        let deadline = Instant::now() + Duration::from_secs(1);
        loop {
            let unsent: Vec<usize> = (0..self.conns.len())
                .filter(|&i| self.conns[i].as_ref().is_some_and(|c| c.unsent() > 0))
                .collect();
            if unsent.is_empty() || Instant::now() >= deadline {
                break;
            }
            for idx in unsent {
                self.flush_conn(idx);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}
