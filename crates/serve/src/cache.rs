//! Canonical-form query result cache with epoch invalidation.
//!
//! Keyed on [`graph_core::CanonCode`], so isomorphic queries share an
//! entry — two clients sending differently-labeled-but-isomorphic
//! gSpan bodies hit the same cached answer, which is sound because
//! containment is isomorphism-invariant.
//!
//! **Invalidation is wholesale, by epoch.** The cache remembers the
//! [`treepi::TreePiIndex::maintenance_epoch`] its entries were computed
//! under; [`QueryCache::sync_epoch`] drops everything the moment the
//! index's epoch moves (any §7.1 insert/remove). Per-entry invalidation
//! would need to know which cached answers the new graph *could* appear
//! in — exactly the containment problem being served — so correctness
//! comes from the cheap global version check instead.
//!
//! Bounded by an exact LRU: a doubly-linked list threaded through a slot
//! arena, O(1) hit/insert/evict, never more than `capacity` entries.

use graph_core::CanonCode;
use rustc_hash::FxHashMap;

const NIL: usize = usize::MAX;

struct Slot {
    key: CanonCode,
    value: Vec<u32>,
    prev: usize,
    next: usize,
}

/// LRU cache of query answers, versioned by the index maintenance epoch.
pub struct QueryCache {
    map: FxHashMap<CanonCode, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    epoch: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

impl QueryCache {
    /// An empty cache holding at most `capacity` entries, valid for
    /// `epoch`. Capacity 0 disables caching (every lookup misses).
    pub fn new(capacity: usize, epoch: u64) -> Self {
        QueryCache {
            map: FxHashMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            epoch,
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidations: 0,
        }
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The epoch the resident entries were computed under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted by LRU capacity pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Whole-cache drops caused by epoch bumps.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Compare against the index's current maintenance epoch; if it moved,
    /// drop every entry (they were computed against an older database).
    /// Returns whether an invalidation happened.
    pub fn sync_epoch(&mut self, epoch: u64) -> bool {
        if epoch == self.epoch {
            return false;
        }
        self.epoch = epoch;
        if self.map.is_empty() {
            return false;
        }
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.invalidations += 1;
        true
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Look up a query's cached answer, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CanonCode) -> Option<&[u32]> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.hits += 1;
                if self.head != i {
                    self.unlink(i);
                    self.push_front(i);
                }
                Some(&self.slots[i].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store an answer computed under the cache's current epoch, evicting
    /// the least recently used entry when at capacity.
    pub fn insert(&mut self, key: CanonCode, value: Vec<u32>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL, "non-empty cache has a tail");
            self.unlink(lru);
            self.map.remove(&self.slots[lru].key);
            self.free.push(lru);
            self.evictions += 1;
        }
        let slot = Slot {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
    }

    /// Record the cache counters and resident-size gauge into `registry`.
    pub fn record_metrics(&self, registry: &obs::Registry) {
        let s = registry.shard();
        s.add(obs::names::CACHE_HIT, self.hits);
        s.add(obs::names::CACHE_MISS, self.misses);
        s.add(obs::names::CACHE_EVICTIONS, self.evictions);
        s.add(obs::names::CACHE_INVALIDATIONS, self.invalidations);
        registry.absorb(s);
        registry.set_gauge(obs::names::GAUGE_CACHE_ENTRIES, self.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::{canonical_code, graph_from};

    fn key(n: u32) -> CanonCode {
        canonical_code(&graph_from(&[n, n + 1], &[(0, 1, 0)]))
    }

    #[test]
    fn hit_miss_and_isomorphism_invariance() {
        let mut c = QueryCache::new(4, 0);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), vec![3, 5]);
        assert_eq!(c.get(&key(1)), Some(&[3, 5][..]));
        // An isomorphic graph (relabeled vertex order) shares the key.
        let iso = canonical_code(&graph_from(&[2, 1], &[(0, 1, 0)]));
        assert_eq!(c.get(&iso), Some(&[3, 5][..]));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = QueryCache::new(2, 0);
        c.insert(key(1), vec![1]);
        c.insert(key(2), vec![2]);
        assert!(c.get(&key(1)).is_some()); // 1 is now most recent
        c.insert(key(3), vec![3]); // evicts 2
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.get(&key(2)).is_none());
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
    }

    #[test]
    fn capacity_is_a_hard_bound_under_churn() {
        let mut c = QueryCache::new(3, 0);
        for round in 0..5u32 {
            for k in 0..10 {
                c.insert(key(round * 10 + k), vec![k]);
                assert!(c.len() <= 3, "LRU exceeded capacity");
            }
        }
        // The arena never grows past capacity either.
        assert!(c.slots.len() <= 3);
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let mut c = QueryCache::new(2, 0);
        c.insert(key(1), vec![1]);
        c.insert(key(2), vec![2]);
        c.insert(key(1), vec![9, 9]); // refresh 1
        c.insert(key(3), vec![3]); // evicts 2, not 1
        assert_eq!(c.get(&key(1)), Some(&[9, 9][..]));
        assert!(c.get(&key(2)).is_none());
    }

    #[test]
    fn epoch_bump_drops_everything_once() {
        let mut c = QueryCache::new(4, 7);
        c.insert(key(1), vec![1]);
        c.insert(key(2), vec![2]);
        assert!(!c.sync_epoch(7), "same epoch is a no-op");
        assert!(c.sync_epoch(8), "bump invalidates");
        assert!(c.is_empty());
        assert_eq!(c.epoch(), 8);
        assert_eq!(c.invalidations(), 1);
        // Empty-cache epoch moves don't count as invalidations.
        assert!(!c.sync_epoch(9));
        assert_eq!(c.invalidations(), 1);
        // Usable again at the new epoch.
        c.insert(key(1), vec![5]);
        assert_eq!(c.get(&key(1)), Some(&[5][..]));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = QueryCache::new(0, 0);
        c.insert(key(1), vec![1]);
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.len(), 0);
    }
}
