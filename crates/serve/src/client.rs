//! Blocking client for the serve wire protocol.

use crate::protocol::{decode_response, encode_request, Request, RequestBody, Response, MAX_FRAME};
use graph_core::Graph;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A blocking connection speaking the length-prefixed protocol.
///
/// [`Client::request`] is strict request-response; [`Client::send`] /
/// [`Client::recv`] are split out for pipelining tests (responses are
/// correlated by tag, not order — see [`crate::protocol`]).
pub struct Client {
    stream: TcpStream,
    next_tag: u32,
}

impl Client {
    /// Connect to `addr`.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            next_tag: 0,
        })
    }

    /// Connect, retrying until `timeout` elapses — for scripts that race
    /// the server's startup (CI starts both concurrently).
    pub fn connect_retry(addr: &str, timeout: Duration) -> io::Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    fn fresh_tag(&mut self) -> u32 {
        let t = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        t
    }

    /// Send one request frame; returns the tag to correlate the response.
    pub fn send(&mut self, body: RequestBody) -> io::Result<u32> {
        let tag = self.fresh_tag();
        let frame = encode_request(&Request { tag, body });
        self.stream.write_all(&frame)?;
        Ok(tag)
    }

    /// Read one response frame (blocking).
    pub fn recv(&mut self) -> io::Result<Response> {
        let mut len = [0u8; 4];
        self.stream.read_exact(&mut len)?;
        let len = u32::from_le_bytes(len) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response frame exceeds MAX_FRAME",
            ));
        }
        let mut payload = vec![0u8; len];
        self.stream.read_exact(&mut payload)?;
        decode_response(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Send a request and block for its response, checking the tag.
    pub fn request(&mut self, body: RequestBody) -> io::Result<Response> {
        let tag = self.send(body)?;
        let resp = self.recv()?;
        if resp.tag != tag {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response tag {} for request {tag}", resp.tag),
            ));
        }
        Ok(resp)
    }

    /// Containment query for `g`.
    pub fn query(&mut self, g: &Graph) -> io::Result<Response> {
        self.request(RequestBody::Query(g.clone()))
    }

    /// Insert `g` into the served database (§7.1).
    pub fn insert(&mut self, g: &Graph) -> io::Result<Response> {
        self.request(RequestBody::Insert(g.clone()))
    }

    /// Remove graph `gid` from the served database (§7.1).
    pub fn remove(&mut self, gid: u32) -> io::Result<Response> {
        self.request(RequestBody::Remove(gid))
    }

    /// Fetch a live metrics snapshot (`treepi.obs/v1` JSON).
    pub fn stats(&mut self) -> io::Result<Response> {
        self.request(RequestBody::Stats)
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.request(RequestBody::Shutdown)
    }
}
