//! Wire protocol: length-prefixed frames over a byte stream.
//!
//! Every frame is `u32 LE payload_len` followed by `payload_len` bytes,
//! capped at [`MAX_FRAME`]. Payloads open with a caller-chosen `u32 LE`
//! tag that the server echoes in the response — responses to pipelined
//! requests on one connection are correlated by tag, not by order (a
//! shed Busy answer can overtake an earlier query still sitting in a
//! micro-batch).
//!
//! Request payload: `tag u32 LE`, op `u8`, body.
//!
//! | op  | body                         | meaning                     |
//! |-----|------------------------------|-----------------------------|
//! | `Q` | one graph, gSpan text (utf8) | containment query           |
//! | `I` | one graph, gSpan text (utf8) | §7.1 insert                 |
//! | `R` | `u32 LE` graph id            | §7.1 remove                 |
//! | `S` | empty                        | live metrics snapshot (admin) |
//! | `X` | empty                        | drain queue and shut down   |
//!
//! Response payload: `tag u32 LE`, status `u8`, body.
//!
//! | status | body                            | meaning                |
//! |--------|---------------------------------|------------------------|
//! | `M`    | `u32 LE` count, count× `u32 LE` | matching graph ids     |
//! | `B`    | empty                           | shed: admission queue full |
//! | `I`    | `u32 LE` new graph id           | insert applied         |
//! | `R`    | `u8` (1 = was active)           | remove applied         |
//! | `S`    | utf8 `treepi.obs/v1` JSON       | live metrics snapshot  |
//! | `X`    | empty                           | shutdown acknowledged  |
//! | `E`    | utf8 message                    | protocol/query error   |

use graph_core::io::{parse_graphs, write_graphs};
use graph_core::Graph;

/// Hard cap on one frame's payload, requests and responses alike. A
/// declared length beyond this is a protocol error and closes the
/// connection — the cap is what bounds per-connection read memory.
pub const MAX_FRAME: usize = 1 << 20;

/// One client request: an echo tag plus the operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Opaque tag echoed verbatim in the response.
    pub tag: u32,
    /// The operation.
    pub body: RequestBody,
}

/// The operation carried by a [`Request`].
#[derive(Clone, Debug, PartialEq)]
pub enum RequestBody {
    /// Containment query: which database graphs contain this one?
    Query(Graph),
    /// Insert a graph (§7.1 maintenance).
    Insert(Graph),
    /// Remove a graph by id (§7.1 maintenance).
    Remove(u32),
    /// Admin: snapshot the server's live metrics as `treepi.obs/v1` JSON.
    /// Answered inline from the event loop — never queued, never shed.
    Stats,
    /// Drain pending queries, answer them, then shut the server down.
    Shutdown,
}

/// One server response: the request's tag plus the outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The tag of the request this answers.
    pub tag: u32,
    /// The outcome.
    pub body: ResponseBody,
}

/// The outcome carried by a [`Response`].
#[derive(Clone, Debug, PartialEq)]
pub enum ResponseBody {
    /// Sorted ids of database graphs containing the query.
    Matches(Vec<u32>),
    /// Shed under overload: the admission queue was full. Retry later.
    Busy,
    /// Insert applied; the new graph's id.
    Inserted(u32),
    /// Remove applied; whether the graph was active.
    Removed(bool),
    /// Live metrics snapshot: a `treepi.obs/v1` JSON document.
    Stats(String),
    /// Shutdown acknowledged; the server exits after draining.
    ShuttingDown,
    /// The request was malformed or unanswerable.
    Error(String),
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], at: usize) -> Option<u32> {
    buf.get(at..at + 4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
}

fn encode_frame(payload: Vec<u8>) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME, "frame exceeds MAX_FRAME");
    let mut out = Vec::with_capacity(4 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

/// Encode a request as one frame (length prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut p = Vec::new();
    put_u32(&mut p, req.tag);
    match &req.body {
        RequestBody::Query(g) => {
            p.push(b'Q');
            p.extend_from_slice(write_graphs(std::slice::from_ref(g)).as_bytes());
        }
        RequestBody::Insert(g) => {
            p.push(b'I');
            p.extend_from_slice(write_graphs(std::slice::from_ref(g)).as_bytes());
        }
        RequestBody::Remove(gid) => {
            p.push(b'R');
            put_u32(&mut p, *gid);
        }
        RequestBody::Stats => p.push(b'S'),
        RequestBody::Shutdown => p.push(b'X'),
    }
    encode_frame(p)
}

/// Encode a response as one frame (length prefix included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut p = Vec::new();
    put_u32(&mut p, resp.tag);
    match &resp.body {
        ResponseBody::Matches(ids) => {
            p.push(b'M');
            put_u32(&mut p, ids.len() as u32);
            for id in ids {
                put_u32(&mut p, *id);
            }
        }
        ResponseBody::Busy => p.push(b'B'),
        ResponseBody::Inserted(gid) => {
            p.push(b'I');
            put_u32(&mut p, *gid);
        }
        ResponseBody::Removed(was_active) => {
            p.push(b'R');
            p.push(*was_active as u8);
        }
        ResponseBody::Stats(json) => {
            p.push(b'S');
            let cap = MAX_FRAME - 5;
            let json = if json.len() > cap { &json[..cap] } else { json };
            p.extend_from_slice(json.as_bytes());
        }
        ResponseBody::ShuttingDown => p.push(b'X'),
        ResponseBody::Error(msg) => {
            p.push(b'E');
            let cap = MAX_FRAME - 5;
            let msg = if msg.len() > cap { &msg[..cap] } else { msg };
            p.extend_from_slice(msg.as_bytes());
        }
    }
    encode_frame(p)
}

fn parse_one_graph(body: &[u8]) -> Result<Graph, String> {
    let text = std::str::from_utf8(body).map_err(|_| "graph body is not utf8".to_string())?;
    let graphs = parse_graphs(text).map_err(|e| e.to_string())?;
    match graphs.len() {
        1 => Ok(graphs.into_iter().next().expect("len checked")),
        n => Err(format!("expected exactly 1 graph per frame, got {n}")),
    }
}

/// Decode a request payload (the bytes after the length prefix).
pub fn decode_request(payload: &[u8]) -> Result<Request, String> {
    let tag = get_u32(payload, 0).ok_or("payload shorter than its tag")?;
    let op = *payload.get(4).ok_or("payload missing op byte")?;
    let body = &payload[5..];
    let body = match op {
        b'Q' => RequestBody::Query(parse_one_graph(body)?),
        b'I' => RequestBody::Insert(parse_one_graph(body)?),
        b'R' => RequestBody::Remove(get_u32(body, 0).ok_or("remove body missing graph id")?),
        b'S' => RequestBody::Stats,
        b'X' => RequestBody::Shutdown,
        other => return Err(format!("unknown request op 0x{other:02x}")),
    };
    Ok(Request { tag, body })
}

/// Decode a response payload (the bytes after the length prefix).
pub fn decode_response(payload: &[u8]) -> Result<Response, String> {
    let tag = get_u32(payload, 0).ok_or("payload shorter than its tag")?;
    let status = *payload.get(4).ok_or("payload missing status byte")?;
    let body = &payload[5..];
    let parsed = match status {
        b'M' => {
            let n = get_u32(body, 0).ok_or("matches body missing count")? as usize;
            let mut ids = Vec::with_capacity(n);
            for i in 0..n {
                ids.push(get_u32(body, 4 + 4 * i).ok_or("matches body truncated")?);
            }
            ResponseBody::Matches(ids)
        }
        b'B' => ResponseBody::Busy,
        b'I' => ResponseBody::Inserted(get_u32(body, 0).ok_or("insert body missing id")?),
        b'R' => ResponseBody::Removed(*body.first().ok_or("remove body missing flag")? != 0),
        b'S' => ResponseBody::Stats(String::from_utf8_lossy(body).into_owned()),
        b'X' => ResponseBody::ShuttingDown,
        b'E' => ResponseBody::Error(String::from_utf8_lossy(body).into_owned()),
        other => return Err(format!("unknown response status 0x{other:02x}")),
    };
    Ok(Response { tag, body: parsed })
}

/// Try to slice one complete frame's payload out of `buf`.
///
/// Returns `Ok(None)` when more bytes are needed, `Ok(Some((payload,
/// consumed)))` when a frame is complete, and `Err` when the declared
/// length exceeds [`MAX_FRAME`] (the caller should drop the connection).
pub fn take_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, String> {
    let Some(len) = get_u32(buf, 0) else {
        return Ok(None);
    };
    let len = len as usize;
    if len > MAX_FRAME {
        return Err(format!("frame of {len} bytes exceeds cap {MAX_FRAME}"));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    Ok(Some((&buf[4..4 + len], 4 + len)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::graph_from;

    fn sample() -> Graph {
        graph_from(&[0, 1, 1], &[(0, 1, 0), (1, 2, 2)])
    }

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request {
                tag: 7,
                body: RequestBody::Query(sample()),
            },
            Request {
                tag: u32::MAX,
                body: RequestBody::Insert(sample()),
            },
            Request {
                tag: 0,
                body: RequestBody::Remove(42),
            },
            Request {
                tag: 8,
                body: RequestBody::Stats,
            },
            Request {
                tag: 9,
                body: RequestBody::Shutdown,
            },
        ];
        for req in &reqs {
            let frame = encode_request(req);
            let (payload, used) = take_frame(&frame).unwrap().expect("complete frame");
            assert_eq!(used, frame.len());
            let back = decode_request(payload).unwrap();
            assert_eq!(back.tag, req.tag);
            match (&back.body, &req.body) {
                (RequestBody::Query(a), RequestBody::Query(b))
                | (RequestBody::Insert(a), RequestBody::Insert(b)) => {
                    assert_eq!(graph_core::canonical_code(a), graph_core::canonical_code(b));
                }
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = [
            Response {
                tag: 1,
                body: ResponseBody::Matches(vec![0, 3, 17]),
            },
            Response {
                tag: 2,
                body: ResponseBody::Matches(vec![]),
            },
            Response {
                tag: 3,
                body: ResponseBody::Busy,
            },
            Response {
                tag: 4,
                body: ResponseBody::Inserted(8),
            },
            Response {
                tag: 5,
                body: ResponseBody::Removed(true),
            },
            Response {
                tag: 6,
                body: ResponseBody::ShuttingDown,
            },
            Response {
                tag: 7,
                body: ResponseBody::Error("nope".into()),
            },
            Response {
                tag: 8,
                body: ResponseBody::Stats("{\"schema\": \"treepi.obs/v1\"}".into()),
            },
        ];
        for resp in &resps {
            let frame = encode_response(resp);
            let (payload, _) = take_frame(&frame).unwrap().expect("complete frame");
            assert_eq!(&decode_response(payload).unwrap(), resp);
        }
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let frame = encode_request(&Request {
            tag: 5,
            body: RequestBody::Query(sample()),
        });
        for cut in 0..frame.len() {
            assert!(take_frame(&frame[..cut]).unwrap().is_none(), "cut {cut}");
        }
        // Two frames back to back: the first slices cleanly.
        let mut two = frame.clone();
        two.extend_from_slice(&frame);
        let (_, used) = take_frame(&two).unwrap().expect("first frame");
        assert_eq!(used, frame.len());
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, (MAX_FRAME + 1) as u32);
        assert!(take_frame(&buf).is_err());
    }

    #[test]
    fn garbage_decodes_to_errors_not_panics() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[1, 2, 3, 4]).is_err());
        assert!(decode_request(&[0, 0, 0, 0, b'Z']).is_err());
        assert!(decode_request(&[0, 0, 0, 0, b'Q', 0xFF, 0xFE]).is_err());
        assert!(decode_request(&[0, 0, 0, 0, b'R']).is_err());
        assert!(decode_response(&[0, 0, 0, 0, b'M', 9, 0, 0, 0]).is_err());
        // A frame claiming 2 graphs is rejected.
        let g = sample();
        let text = write_graphs(&[g.clone(), g]);
        let mut p = vec![0, 0, 0, 0, b'Q'];
        p.extend_from_slice(text.as_bytes());
        assert!(decode_request(&p).is_err());
    }
}
