//! Live serving telemetry: the time-series sampler tick and the
//! slow-query forensics log.
//!
//! Both pieces ride inside the event loop thread (no synchronization):
//! the [`obs::series::Sampler`] is ticked once per poll iteration and
//! records queue/cache/heap gauges when its interval elapses, and the
//! [`SlowQueryLog`] captures the filter-funnel counters plus a
//! reconstructed per-stage timeline for every query whose verify stage
//! exceeded the configured threshold. The log is a bounded ring — under a
//! pathological query mix it keeps the most recent captures and counts
//! the rest — and dumps as Chrome trace-event JSON
//! ([`SlowQueryLog::render_chrome_json`]) loadable in Perfetto, with the
//! funnel counters attached as per-slice `args`.

use obs::json::escape_string;
use obs::series::Sampler;
use obs::trace::TraceEvent;
use std::collections::VecDeque;
use std::io::Write;
use std::time::{Duration, Instant};
use treepi::QueryStats;

/// Default capacity of the slow-query ring.
pub const SLOW_LOG_CAP: usize = 256;

/// Telemetry state owned by one server run: the periodic sampler, the
/// slow-query log, and the optional structured access log. Construct
/// with real settings for live observability or
/// [`ServeTelemetry::disabled`] for the zero-overhead default.
#[derive(Debug)]
pub struct ServeTelemetry {
    /// Periodic sampler, ticked by the event loop.
    pub sampler: Sampler,
    /// Slow-query captures.
    pub slow: SlowQueryLog,
    /// Structured per-request JSONL access log (`None` disables it).
    pub access: Option<AccessLog>,
}

impl ServeTelemetry {
    /// Telemetry that records nothing: the sampler never fires, no query
    /// is slow enough to capture, and no access log is written.
    pub fn disabled() -> Self {
        Self {
            sampler: Sampler::disabled(),
            slow: SlowQueryLog::new(None, SLOW_LOG_CAP),
            access: None,
        }
    }
}

/// Detector for the single-threaded event loop's worst failure mode: one
/// iteration holding the thread long enough that every queued client
/// stalls behind it.
///
/// The watchdog times the **work period** — the span from one
/// `poll(2)` return to the next `poll` entry, i.e. batch execution,
/// frame parsing, and socket shuffling — and trips when it exceeds the
/// threshold. Time blocked *inside* `poll` is idleness, not a stall, and
/// is deliberately excluded. Trips maintain `serve.loop.stall_count` /
/// `serve.loop.max_stall_us` and flip `/healthz` to `degraded` while the
/// most recent stall is younger than [`LoopWatchdog::DEGRADED_WINDOW`].
#[derive(Debug)]
pub struct LoopWatchdog {
    threshold: Option<Duration>,
    work_start: Option<Instant>,
    stalls: u64,
    max_stall: Duration,
    last_stall: Option<Instant>,
}

impl LoopWatchdog {
    /// How long after the most recent stall `/healthz` keeps reporting
    /// `degraded`: long enough for a scraper on a typical 5–15 s interval
    /// to observe it, short enough to self-clear once the loop recovers.
    pub const DEGRADED_WINDOW: Duration = Duration::from_secs(30);

    /// A watchdog tripping on work periods ≥ `threshold` (`None`
    /// disables measurement entirely).
    pub fn new(threshold: Option<Duration>) -> Self {
        Self {
            threshold,
            work_start: None,
            stalls: 0,
            max_stall: Duration::ZERO,
            last_stall: None,
        }
    }

    /// A permanently disabled watchdog.
    pub fn disabled() -> Self {
        Self::new(None)
    }

    /// Mark the start of a work period (call right after `poll` returns).
    #[inline]
    pub fn begin_work(&mut self) {
        if self.threshold.is_some() {
            self.work_start = Some(Instant::now());
        }
    }

    /// Mark the end of a work period (call right before re-entering
    /// `poll`). Returns the period's duration when it tripped the
    /// threshold.
    #[inline]
    pub fn end_work(&mut self) -> Option<Duration> {
        let threshold = self.threshold?;
        let gap = self.work_start.take()?.elapsed();
        if gap < threshold {
            return None;
        }
        self.stalls += 1;
        self.max_stall = self.max_stall.max(gap);
        self.last_stall = Some(Instant::now());
        Some(gap)
    }

    /// Total threshold trips so far.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Longest work period observed among the trips.
    pub fn max_stall(&self) -> Duration {
        self.max_stall
    }

    /// Whether the loop should be reported as degraded at `now`: a stall
    /// happened within the last [`LoopWatchdog::DEGRADED_WINDOW`].
    pub fn degraded(&self, now: Instant) -> bool {
        self.last_stall
            .is_some_and(|at| now.saturating_duration_since(at) < Self::DEGRADED_WINDOW)
    }
}

/// Per-request stage timings attached to executed-query access records.
#[derive(Clone, Copy, Debug, Default)]
pub struct AccessStages {
    /// Decode-to-admission time (canonicalization + cache probe), µs.
    pub admit_us: u64,
    /// Admission-to-dispatch wait in the bounded queue, µs.
    pub queue_wait_us: u64,
    /// Batch residence beyond the query's own execution, µs.
    pub batch_wait_us: u64,
    /// The query's own pipeline execution time, µs.
    pub exec_us: u64,
}

/// One access-log record, borrowed from the event loop's state at the
/// moment the response is enqueued.
#[derive(Clone, Copy, Debug)]
pub struct AccessRecord<'a> {
    /// Connection slot index.
    pub conn: usize,
    /// Client-chosen request tag.
    pub tag: u32,
    /// Operation name (`query`, `insert`, `remove`, `stats`, `shutdown`,
    /// `invalid`).
    pub op: &'a str,
    /// Outcome (`ok`, `busy`, `error`).
    pub outcome: &'a str,
    /// Request frame size in bytes (length prefix included).
    pub bytes_in: u64,
    /// Response frame size in bytes (length prefix included).
    pub bytes_out: u64,
    /// `Some(true)` for cache hits, `Some(false)` for executed queries,
    /// `None` where the cache does not apply.
    pub cache_hit: Option<bool>,
    /// Maintenance epoch the request was served under.
    pub epoch: u64,
    /// Stage decomposition. Executed queries carry the full breakdown;
    /// immediately-answered requests (cache hits, admin ops, errors)
    /// carry only the admit time, with the wait/exec fields zero.
    pub stages: Option<AccessStages>,
}

/// Structured JSONL access log: one self-describing JSON object per
/// request, written at response-enqueue time.
///
/// Writes are best-effort — a full disk must degrade the log, never the
/// serving path — so I/O errors are counted ([`AccessLog::write_errors`])
/// and otherwise swallowed. The writer is boxed so tests can capture
/// records in memory while the CLI hands in a buffered file.
pub struct AccessLog {
    out: Box<dyn Write + Send>,
    epoch: Instant,
    lines: u64,
    write_errors: u64,
}

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessLog")
            .field("lines", &self.lines)
            .field("write_errors", &self.write_errors)
            .finish_non_exhaustive()
    }
}

impl AccessLog {
    /// An access log writing JSONL records to `out`.
    pub fn to_writer(out: Box<dyn Write + Send>) -> Self {
        Self {
            out,
            epoch: Instant::now(),
            lines: 0,
            write_errors: 0,
        }
    }

    /// An access log appending to the file at `path` (created if absent,
    /// truncated if present), buffered.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(Self::to_writer(Box::new(std::io::BufWriter::new(f))))
    }

    /// Append one record.
    pub fn log(&mut self, rec: &AccessRecord<'_>) {
        let mut line = String::with_capacity(192);
        line.push_str(&format!(
            "{{\"t_ns\": {}, \"conn\": {}, \"tag\": {}, \"op\": {}, \"outcome\": {}, \
             \"bytes_in\": {}, \"bytes_out\": {}, \"epoch\": {}",
            self.epoch.elapsed().as_nanos().min(u64::MAX as u128),
            rec.conn,
            rec.tag,
            escape_string(rec.op),
            escape_string(rec.outcome),
            rec.bytes_in,
            rec.bytes_out,
            rec.epoch,
        ));
        if let Some(hit) = rec.cache_hit {
            line.push_str(&format!(", \"cache_hit\": {hit}"));
        }
        if let Some(s) = rec.stages {
            line.push_str(&format!(
                ", \"admit_us\": {}, \"queue_wait_us\": {}, \"batch_wait_us\": {}, \"exec_us\": {}",
                s.admit_us, s.queue_wait_us, s.batch_wait_us, s.exec_us
            ));
        }
        line.push_str("}\n");
        match self.out.write_all(line.as_bytes()) {
            Ok(()) => self.lines += 1,
            Err(_) => self.write_errors += 1,
        }
    }

    /// Records successfully written.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Records lost to writer I/O errors.
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }

    /// Flush the underlying writer (the event loop exits through this).
    pub fn flush(&mut self) {
        if self.out.flush().is_err() {
            self.write_errors += 1;
        }
    }
}

/// Bounded ring of slow-query captures.
///
/// A query is captured when its verify-stage time meets `threshold`
/// (`None` disables capture entirely). Each capture stores six trace
/// events: an umbrella `serve.slow_query` slice spanning the whole
/// pipeline with the funnel counters as `args`, plus the five stage
/// slices, reconstructed backwards from the completion instant exactly
/// like [`treepi::QueryStats::trace_into`].
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold: Option<Duration>,
    cap: usize,
    epoch: Instant,
    ring: VecDeque<Vec<TraceEvent>>,
    seen: u64,
}

impl SlowQueryLog {
    /// A log capturing queries with verify time ≥ `threshold`, keeping
    /// the most recent `cap` captures.
    pub fn new(threshold: Option<Duration>, cap: usize) -> Self {
        Self {
            threshold,
            cap: cap.max(1),
            epoch: Instant::now(),
            ring: VecDeque::new(),
            seen: 0,
        }
    }

    /// Whether captures can ever happen (used to skip per-query work).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.threshold.is_some()
    }

    /// Total slow queries observed, including ones evicted from the ring.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Captures currently retained (≤ cap).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no capture has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Consider one finished query: capture it if its verify stage met
    /// the threshold. `seq` is the running query number (rendered as the
    /// Chrome `query` arg), `end` the instant the query finished, and
    /// `extra_args` additional `(name, value)` pairs — the server attaches
    /// the queue/batch-wait decomposition here — appended to the umbrella
    /// slice's `args`. Returns whether a capture happened.
    pub fn record(
        &mut self,
        seq: u64,
        stats: &QueryStats,
        end: Instant,
        extra_args: &[(&str, u64)],
    ) -> bool {
        let Some(threshold) = self.threshold else {
            return false;
        };
        if stats.t_verify < threshold {
            return false;
        }
        self.seen += 1;
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        // Stage starts reconstructed backwards from `end`, as in
        // `QueryStats::trace_into` — the stages run back-to-back.
        let verify_start = end - stats.t_verify;
        let prune_start = verify_start - stats.t_prune;
        let sig_start = prune_start - stats.t_sig;
        let filter_start = sig_start - stats.t_filter;
        let partition_start = filter_start - stats.t_partition;
        let off = |at: Instant| {
            at.checked_duration_since(self.epoch)
                .unwrap_or_default()
                .as_nanos()
                .min(u64::MAX as u128) as u64
        };
        let slice =
            |name: &str, start: Instant, dur: Duration, args: Vec<(String, u64)>| TraceEvent {
                name: name.to_string(),
                query: Some(seq),
                lane: 0,
                start_ns: off(start),
                dur_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
                args,
            };
        let mut umbrella_args = vec![
            ("funnel.filtered".to_string(), stats.filtered as u64),
            ("funnel.pruned".to_string(), stats.pruned as u64),
            ("funnel.sig_killed".to_string(), stats.sig_killed as u64),
            ("funnel.answers".to_string(), stats.answers as u64),
            (
                "funnel.missing_feature".to_string(),
                stats.missing_feature as u64,
            ),
        ];
        umbrella_args.extend(extra_args.iter().map(|&(k, v)| (k.to_string(), v)));
        self.ring.push_back(vec![
            slice(
                "serve.slow_query",
                partition_start,
                stats.total(),
                umbrella_args,
            ),
            slice(
                obs::names::SPAN_PARTITION,
                partition_start,
                stats.t_partition,
                Vec::new(),
            ),
            slice(
                obs::names::SPAN_FILTER,
                filter_start,
                stats.t_filter,
                Vec::new(),
            ),
            slice(
                obs::names::SPAN_SIG_FILTER,
                sig_start,
                stats.t_sig,
                Vec::new(),
            ),
            slice(
                obs::names::SPAN_PRUNE,
                prune_start,
                stats.t_prune,
                Vec::new(),
            ),
            slice(
                obs::names::SPAN_VERIFY,
                verify_start,
                stats.t_verify,
                Vec::new(),
            ),
        ]);
        true
    }

    /// Render every retained capture as one Chrome trace-event JSON
    /// document (timeline order within each capture is preserved).
    pub fn render_chrome_json(&self) -> String {
        let events: Vec<TraceEvent> = self.ring.iter().flatten().cloned().collect();
        obs::trace::render_chrome_json(&events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slow_stats() -> QueryStats {
        QueryStats {
            partition_size: 2,
            sf_size: 3,
            filtered: 17,
            pruned: 9,
            sig_killed: 3,
            answers: 4,
            missing_feature: false,
            t_partition: Duration::from_micros(10),
            t_filter: Duration::from_micros(20),
            t_prune: Duration::from_micros(5),
            t_sig: Duration::from_micros(2),
            t_verify: Duration::from_micros(500),
        }
    }

    #[test]
    fn threshold_gates_capture() {
        let mut log = SlowQueryLog::new(Some(Duration::from_millis(1)), 8);
        assert!(!log.record(0, &slow_stats(), Instant::now(), &[]));
        assert!(log.is_empty());
        let mut log = SlowQueryLog::new(Some(Duration::from_micros(100)), 8);
        assert!(log.record(0, &slow_stats(), Instant::now(), &[]));
        assert_eq!(log.len(), 1);
        assert_eq!(log.seen(), 1);
        let mut off = SlowQueryLog::new(None, 8);
        assert!(!off.is_enabled());
        assert!(!off.record(0, &slow_stats(), Instant::now(), &[]));
    }

    #[test]
    fn ring_is_bounded_but_seen_counts_all() {
        let mut log = SlowQueryLog::new(Some(Duration::ZERO), 3);
        for seq in 0..10 {
            assert!(log.record(seq, &slow_stats(), Instant::now(), &[]));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.seen(), 10);
        // The retained captures are the most recent ones.
        let doc = log.render_chrome_json();
        assert!(doc.contains("\"query\": 9"));
        assert!(!doc.contains("\"query\": 0,"));
    }

    #[test]
    fn capture_renders_funnel_args_and_stages() {
        let mut log = SlowQueryLog::new(Some(Duration::ZERO), 8);
        log.record(7, &slow_stats(), Instant::now(), &[]);
        let doc = log.render_chrome_json();
        let v = obs::json::parse(&doc).expect("valid Chrome JSON");
        let events = v
            .get("traceEvents")
            .and_then(obs::json::Value::as_array)
            .expect("traceEvents");
        let slices: Vec<&obs::json::Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(obs::json::Value::as_str) == Some("X"))
            .collect();
        // Umbrella + 5 stages.
        assert_eq!(slices.len(), 6);
        let umbrella = slices
            .iter()
            .find(|s| s.get("name").and_then(obs::json::Value::as_str) == Some("serve.slow_query"))
            .expect("umbrella slice");
        let args = umbrella.get("args").expect("args");
        assert_eq!(
            args.get("funnel.filtered")
                .and_then(obs::json::Value::as_u64),
            Some(17)
        );
        assert_eq!(
            args.get("funnel.sig_killed")
                .and_then(obs::json::Value::as_u64),
            Some(3)
        );
        assert_eq!(
            args.get("query").and_then(obs::json::Value::as_u64),
            Some(7)
        );
        // Stage slices tile the umbrella: verify ends where it ends.
        for name in obs::names::PIPELINE_SPANS {
            assert!(
                slices
                    .iter()
                    .any(|s| s.get("name").and_then(obs::json::Value::as_str) == Some(name)),
                "missing stage slice {name}"
            );
        }
    }

    #[test]
    fn disabled_telemetry_is_inert() {
        let t = ServeTelemetry::disabled();
        assert!(!t.sampler.is_enabled());
        assert!(!t.slow.is_enabled());
        assert!(t.access.is_none());
        // Renders a valid empty document either way.
        assert!(obs::json::parse(&t.slow.render_chrome_json()).is_ok());
    }

    #[test]
    fn slow_log_attaches_extra_args_to_umbrella() {
        let mut log = SlowQueryLog::new(Some(Duration::ZERO), 4);
        log.record(
            1,
            &slow_stats(),
            Instant::now(),
            &[("serve.queue_wait_ns", 1234), ("serve.batch_wait_ns", 56)],
        );
        let v = obs::json::parse(&log.render_chrome_json()).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(obs::json::Value::as_array)
            .expect("traceEvents");
        let umbrella = events
            .iter()
            .find(|e| e.get("name").and_then(obs::json::Value::as_str) == Some("serve.slow_query"))
            .expect("umbrella slice");
        let args = umbrella.get("args").expect("args");
        assert_eq!(
            args.get("serve.queue_wait_ns")
                .and_then(obs::json::Value::as_u64),
            Some(1234)
        );
        assert_eq!(
            args.get("serve.batch_wait_ns")
                .and_then(obs::json::Value::as_u64),
            Some(56)
        );
    }

    #[test]
    fn watchdog_trips_only_at_or_beyond_threshold() {
        let mut wd = LoopWatchdog::new(Some(Duration::ZERO));
        assert_eq!(wd.end_work(), None, "no work period started yet");
        wd.begin_work();
        // Threshold zero: any work period is a stall.
        assert!(wd.end_work().is_some());
        assert_eq!(wd.stalls(), 1);
        assert!(wd.degraded(Instant::now()));
        // A stall ages out of the degraded window.
        assert!(!wd.degraded(Instant::now() + LoopWatchdog::DEGRADED_WINDOW));

        let mut calm = LoopWatchdog::new(Some(Duration::from_secs(3600)));
        calm.begin_work();
        assert_eq!(calm.end_work(), None, "an hour has not elapsed");
        assert_eq!(calm.stalls(), 0);
        assert!(!calm.degraded(Instant::now()));

        let mut off = LoopWatchdog::disabled();
        off.begin_work();
        assert_eq!(off.end_work(), None);
        assert_eq!(off.max_stall(), Duration::ZERO);
    }

    #[test]
    fn access_log_writes_one_json_object_per_record() {
        use std::sync::{Arc, Mutex};
        #[derive(Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let mut log = AccessLog::to_writer(Box::new(buf.clone()));
        log.log(&AccessRecord {
            conn: 3,
            tag: 9,
            op: "query",
            outcome: "ok",
            bytes_in: 40,
            bytes_out: 17,
            cache_hit: Some(false),
            epoch: 2,
            stages: Some(AccessStages {
                admit_us: 1,
                queue_wait_us: 2,
                batch_wait_us: 3,
                exec_us: 4,
            }),
        });
        log.log(&AccessRecord {
            conn: 0,
            tag: 1,
            op: "stats",
            outcome: "ok",
            bytes_in: 9,
            bytes_out: 1000,
            cache_hit: None,
            epoch: 2,
            stages: None,
        });
        log.flush();
        assert_eq!(log.lines(), 2);
        assert_eq!(log.write_errors(), 0);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = obs::json::parse(lines[0]).expect("line 1 is valid JSON");
        assert_eq!(
            first.get("op").and_then(obs::json::Value::as_str),
            Some("query")
        );
        assert_eq!(
            first
                .get("queue_wait_us")
                .and_then(obs::json::Value::as_u64),
            Some(2)
        );
        assert_eq!(
            first
                .get("cache_hit")
                .map(|v| matches!(v, obs::json::Value::Bool(false))),
            Some(true)
        );
        let second = obs::json::parse(lines[1]).expect("line 2 is valid JSON");
        assert_eq!(
            second.get("op").and_then(obs::json::Value::as_str),
            Some("stats")
        );
        assert!(second.get("queue_wait_us").is_none());
        assert!(second.get("cache_hit").is_none());
    }
}
