//! Live serving telemetry: the time-series sampler tick and the
//! slow-query forensics log.
//!
//! Both pieces ride inside the event loop thread (no synchronization):
//! the [`obs::series::Sampler`] is ticked once per poll iteration and
//! records queue/cache/heap gauges when its interval elapses, and the
//! [`SlowQueryLog`] captures the filter-funnel counters plus a
//! reconstructed per-stage timeline for every query whose verify stage
//! exceeded the configured threshold. The log is a bounded ring — under a
//! pathological query mix it keeps the most recent captures and counts
//! the rest — and dumps as Chrome trace-event JSON
//! ([`SlowQueryLog::render_chrome_json`]) loadable in Perfetto, with the
//! funnel counters attached as per-slice `args`.

use obs::series::Sampler;
use obs::trace::TraceEvent;
use std::collections::VecDeque;
use std::time::{Duration, Instant};
use treepi::QueryStats;

/// Default capacity of the slow-query ring.
pub const SLOW_LOG_CAP: usize = 256;

/// Telemetry state owned by one server run: the periodic sampler plus the
/// slow-query log. Construct with real settings for live observability or
/// [`ServeTelemetry::disabled`] for the zero-overhead default.
#[derive(Debug)]
pub struct ServeTelemetry {
    /// Periodic sampler, ticked by the event loop.
    pub sampler: Sampler,
    /// Slow-query captures.
    pub slow: SlowQueryLog,
}

impl ServeTelemetry {
    /// Telemetry that records nothing: the sampler never fires and no
    /// query is slow enough to capture.
    pub fn disabled() -> Self {
        Self {
            sampler: Sampler::disabled(),
            slow: SlowQueryLog::new(None, SLOW_LOG_CAP),
        }
    }
}

/// Bounded ring of slow-query captures.
///
/// A query is captured when its verify-stage time meets `threshold`
/// (`None` disables capture entirely). Each capture stores five trace
/// events: an umbrella `serve.slow_query` slice spanning the whole
/// pipeline with the funnel counters as `args`, plus the four stage
/// slices, reconstructed backwards from the completion instant exactly
/// like [`treepi::QueryStats::trace_into`].
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold: Option<Duration>,
    cap: usize,
    epoch: Instant,
    ring: VecDeque<Vec<TraceEvent>>,
    seen: u64,
}

impl SlowQueryLog {
    /// A log capturing queries with verify time ≥ `threshold`, keeping
    /// the most recent `cap` captures.
    pub fn new(threshold: Option<Duration>, cap: usize) -> Self {
        Self {
            threshold,
            cap: cap.max(1),
            epoch: Instant::now(),
            ring: VecDeque::new(),
            seen: 0,
        }
    }

    /// Whether captures can ever happen (used to skip per-query work).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.threshold.is_some()
    }

    /// Total slow queries observed, including ones evicted from the ring.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Captures currently retained (≤ cap).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no capture has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Consider one finished query: capture it if its verify stage met
    /// the threshold. `seq` is the running query number (rendered as the
    /// Chrome `query` arg), `end` the instant the query finished.
    /// Returns whether a capture happened.
    pub fn record(&mut self, seq: u64, stats: &QueryStats, end: Instant) -> bool {
        let Some(threshold) = self.threshold else {
            return false;
        };
        if stats.t_verify < threshold {
            return false;
        }
        self.seen += 1;
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        // Stage starts reconstructed backwards from `end`, as in
        // `QueryStats::trace_into` — the stages run back-to-back.
        let verify_start = end - stats.t_verify;
        let prune_start = verify_start - stats.t_prune;
        let filter_start = prune_start - stats.t_filter;
        let partition_start = filter_start - stats.t_partition;
        let off = |at: Instant| {
            at.checked_duration_since(self.epoch)
                .unwrap_or_default()
                .as_nanos()
                .min(u64::MAX as u128) as u64
        };
        let slice =
            |name: &str, start: Instant, dur: Duration, args: Vec<(String, u64)>| TraceEvent {
                name: name.to_string(),
                query: Some(seq),
                lane: 0,
                start_ns: off(start),
                dur_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
                args,
            };
        self.ring.push_back(vec![
            slice(
                "serve.slow_query",
                partition_start,
                stats.total(),
                vec![
                    ("funnel.filtered".to_string(), stats.filtered as u64),
                    ("funnel.pruned".to_string(), stats.pruned as u64),
                    ("funnel.answers".to_string(), stats.answers as u64),
                    (
                        "funnel.missing_feature".to_string(),
                        stats.missing_feature as u64,
                    ),
                ],
            ),
            slice(
                obs::names::SPAN_PARTITION,
                partition_start,
                stats.t_partition,
                Vec::new(),
            ),
            slice(
                obs::names::SPAN_FILTER,
                filter_start,
                stats.t_filter,
                Vec::new(),
            ),
            slice(
                obs::names::SPAN_PRUNE,
                prune_start,
                stats.t_prune,
                Vec::new(),
            ),
            slice(
                obs::names::SPAN_VERIFY,
                verify_start,
                stats.t_verify,
                Vec::new(),
            ),
        ]);
        true
    }

    /// Render every retained capture as one Chrome trace-event JSON
    /// document (timeline order within each capture is preserved).
    pub fn render_chrome_json(&self) -> String {
        let events: Vec<TraceEvent> = self.ring.iter().flatten().cloned().collect();
        obs::trace::render_chrome_json(&events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slow_stats() -> QueryStats {
        QueryStats {
            partition_size: 2,
            sf_size: 3,
            filtered: 17,
            pruned: 9,
            answers: 4,
            missing_feature: false,
            t_partition: Duration::from_micros(10),
            t_filter: Duration::from_micros(20),
            t_prune: Duration::from_micros(5),
            t_verify: Duration::from_micros(500),
        }
    }

    #[test]
    fn threshold_gates_capture() {
        let mut log = SlowQueryLog::new(Some(Duration::from_millis(1)), 8);
        assert!(!log.record(0, &slow_stats(), Instant::now()));
        assert!(log.is_empty());
        let mut log = SlowQueryLog::new(Some(Duration::from_micros(100)), 8);
        assert!(log.record(0, &slow_stats(), Instant::now()));
        assert_eq!(log.len(), 1);
        assert_eq!(log.seen(), 1);
        let mut off = SlowQueryLog::new(None, 8);
        assert!(!off.is_enabled());
        assert!(!off.record(0, &slow_stats(), Instant::now()));
    }

    #[test]
    fn ring_is_bounded_but_seen_counts_all() {
        let mut log = SlowQueryLog::new(Some(Duration::ZERO), 3);
        for seq in 0..10 {
            assert!(log.record(seq, &slow_stats(), Instant::now()));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.seen(), 10);
        // The retained captures are the most recent ones.
        let doc = log.render_chrome_json();
        assert!(doc.contains("\"query\": 9"));
        assert!(!doc.contains("\"query\": 0,"));
    }

    #[test]
    fn capture_renders_funnel_args_and_stages() {
        let mut log = SlowQueryLog::new(Some(Duration::ZERO), 8);
        log.record(7, &slow_stats(), Instant::now());
        let doc = log.render_chrome_json();
        let v = obs::json::parse(&doc).expect("valid Chrome JSON");
        let events = v
            .get("traceEvents")
            .and_then(obs::json::Value::as_array)
            .expect("traceEvents");
        let slices: Vec<&obs::json::Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(obs::json::Value::as_str) == Some("X"))
            .collect();
        // Umbrella + 4 stages.
        assert_eq!(slices.len(), 5);
        let umbrella = slices
            .iter()
            .find(|s| s.get("name").and_then(obs::json::Value::as_str) == Some("serve.slow_query"))
            .expect("umbrella slice");
        let args = umbrella.get("args").expect("args");
        assert_eq!(
            args.get("funnel.filtered")
                .and_then(obs::json::Value::as_u64),
            Some(17)
        );
        assert_eq!(
            args.get("query").and_then(obs::json::Value::as_u64),
            Some(7)
        );
        // Stage slices tile the umbrella: verify ends where it ends.
        for name in obs::names::PIPELINE_SPANS {
            assert!(
                slices
                    .iter()
                    .any(|s| s.get("name").and_then(obs::json::Value::as_str) == Some(name)),
                "missing stage slice {name}"
            );
        }
    }

    #[test]
    fn disabled_telemetry_is_inert() {
        let t = ServeTelemetry::disabled();
        assert!(!t.sampler.is_enabled());
        assert!(!t.slow.is_enabled());
        // Renders a valid empty document either way.
        assert!(obs::json::parse(&t.slow.render_chrome_json()).is_ok());
    }
}
