//! Online serving front end for the TreePi engine.
//!
//! This crate turns the batch-oriented [`treepi::Engine`] into a
//! long-running network service (DESIGN.md, "Online serving"):
//!
//! - [`protocol`] — the length-prefixed wire format: tagged query /
//!   insert / remove / shutdown requests, graphs in gSpan text form.
//! - [`cache`] — an LRU result cache keyed on the query's canonical
//!   code, invalidated wholesale whenever the index's maintenance epoch
//!   moves (§7.1 insert/remove), so a cached answer can never outlive
//!   the database state it was computed against.
//! - [`server`] — a single-threaded event loop (vendored `minipoll`,
//!   level-triggered epoll) that admits queries into a **bounded** queue,
//!   groups them into micro-batches under a latency budget, and runs each
//!   batch on the engine's persistent worker pool. When the queue is
//!   full, requests are refused with an explicit Busy response — the
//!   server never buffers unboundedly.
//! - [`client`] / [`loadgen`] — a blocking client and an open/closed-loop
//!   load generator with a Zipf skew knob, reporting p50/p95/p99 from the
//!   obs histograms.
//! - [`telemetry`] — live observability: the `STATS` admin op snapshots
//!   the running server's metrics as `treepi.obs/v1` JSON without pausing
//!   the event loop, a ring-buffer sampler records queue/cache/heap time
//!   series, a slow-query log captures per-stage forensics for queries
//!   whose verify stage exceeds a threshold, a [`LoopWatchdog`] trips on
//!   event-loop iterations that hold the thread past a threshold, and an
//!   optional [`AccessLog`] writes one JSONL record per request.
//!   Slow-consumer disconnects (write buffer over cap) are counted under
//!   `serve.slow_consumer_drop`; oversized-frame protocol violations
//!   under `serve.proto_error`.
//! - [`http`] — a dependency-free HTTP/1.0 GET responder riding the same
//!   event loop as a second listener (DESIGN.md, "Monitoring surface"):
//!   `/metrics` renders the live snapshot as Prometheus text
//!   (`obs::prom`), `/healthz` reports `ok` / `degraded` / `draining`,
//!   and `/slowz` serves the current slow-query ring as Chrome trace
//!   JSON without waiting for shutdown.
//!
//! Metrics live in the `serve.*` / `cache.*` / `loadgen.*` namespaces,
//! which are exempt from the determinism contract and the metrics-diff
//! gate (like `engine.*` / `pool.*`): their values depend on arrival
//! timing, not on the algorithm.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod telemetry;

pub use cache::QueryCache;
pub use client::Client;
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use protocol::{Request, RequestBody, Response, ResponseBody};
pub use server::{ServeConfig, ServeReport, Server};
pub use telemetry::{AccessLog, AccessRecord, LoopWatchdog, ServeTelemetry, SlowQueryLog};
