//! Load generator: open- or closed-loop request streams with a Zipf
//! skew knob, reporting client-observed p50/p95/p99 latency.
//!
//! Each connection is one thread in a closed loop (next request only
//! after the previous response). With [`LoadgenConfig::rate`] set, the
//! loop is *open*: request `k` of a connection is released at
//! `start + k / per_conn_rate` regardless of response progress, so an
//! overloaded server faces sustained offered load and must shed —
//! exactly the backpressure path the server promises to take instead of
//! buffering unboundedly.
//!
//! Latencies are aggregated into an [`obs::SpanStat`] histogram owned by
//! the report itself (so percentiles work even when the `obs` crate is
//! compiled `off`) and mirrored into the registry as the
//! `loadgen.request` span for `--metrics` export.

use crate::client::Client;
use crate::protocol::{RequestBody, ResponseBody};
use graph_core::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Load generator configuration.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Concurrent connections (one thread each).
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: u64,
    /// Offered load in requests/second across all connections
    /// (open loop). `None` = closed loop (send upon response).
    pub rate: Option<f64>,
    /// Zipf skew exponent over the query set: 0 = uniform, larger =
    /// more repetition of the first queries (cache-friendly).
    pub zipf: f64,
    /// RNG seed for query selection.
    pub seed: u64,
    /// Send a shutdown request after the run completes.
    pub shutdown: bool,
    /// How long to retry the initial connects.
    pub connect_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            connections: 4,
            requests: 1000,
            rate: None,
            zipf: 0.0,
            seed: 42,
            shutdown: false,
            connect_timeout: Duration::from_secs(5),
        }
    }
}

/// Aggregated outcome of a load-generation run.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// Requests sent.
    pub sent: u64,
    /// Responses with matches (served or cache-hit).
    pub ok: u64,
    /// Busy responses (shed by the server under overload).
    pub busy: u64,
    /// Transport or protocol errors.
    pub errors: u64,
    /// Wall time of the whole run.
    pub elapsed: Duration,
    /// Client-observed round-trip latency histogram.
    pub latency: obs::SpanStat,
}

impl LoadgenReport {
    /// Completed requests (ok + busy) per second of wall time.
    pub fn throughput(&self) -> f64 {
        let done = (self.ok + self.busy) as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            done / secs
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for LoadgenReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "sent={} ok={} busy={} errors={} elapsed={:.3}s throughput={:.1}/s",
            self.sent,
            self.ok,
            self.busy,
            self.errors,
            self.elapsed.as_secs_f64(),
            self.throughput()
        )?;
        write!(
            f,
            "latency p50={}us p95={}us p99={}us max={}us",
            self.latency.quantile_ns(0.50) / 1_000,
            self.latency.quantile_ns(0.95) / 1_000,
            self.latency.quantile_ns(0.99) / 1_000,
            self.latency.max_ns / 1_000
        )
    }
}

/// Zipf(s) sampler over `0..n` via the inverse CDF (small n: the query
/// set), with `s = 0` degenerating to uniform.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Sampler over `0..n` with exponent `s ≥ 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "zipf needs a non-empty domain");
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw an index in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Drive `addr` with `queries`, recording client-side metrics into
/// `registry` (`loadgen.request` span, `loadgen.ok/busy/errors`).
///
/// Returns an error only when no connection could be established; I/O
/// errors mid-run are counted in [`LoadgenReport::errors`].
pub fn run(
    addr: &str,
    queries: &[Graph],
    cfg: &LoadgenConfig,
    registry: &obs::Registry,
) -> io::Result<LoadgenReport> {
    assert!(!queries.is_empty(), "loadgen needs at least one query");
    let conns = cfg.connections.max(1);
    let zipf = Zipf::new(queries.len(), cfg.zipf);
    let merged: Mutex<LoadgenReport> = Mutex::new(LoadgenReport::default());
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..conns {
            let my_requests =
                cfg.requests / conns as u64 + u64::from((c as u64) < cfg.requests % conns as u64);
            let per_conn_interval = cfg
                .rate
                .map(|r| Duration::from_secs_f64(conns as f64 / r.max(1e-9)));
            let (zipf, merged) = (&zipf, &merged);
            scope.spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(
                    cfg.seed ^ (c as u64).wrapping_mul(0x9E3779B97F4A7C15),
                );
                let mut local = LoadgenReport::default();
                let shard = registry.shard();
                let mut client = match Client::connect_retry(addr, cfg.connect_timeout) {
                    Ok(cl) => cl,
                    Err(_) => {
                        local.errors = my_requests;
                        shard.add(obs::names::LOADGEN_ERRORS, my_requests);
                        registry.absorb(shard);
                        fold_into(merged, &local);
                        return;
                    }
                };
                let start = Instant::now();
                for k in 0..my_requests {
                    if let Some(interval) = per_conn_interval {
                        // Open loop: release on schedule, late is late.
                        let due = start + interval.mul_f64(k as f64);
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                    }
                    let q = &queries[zipf.sample(&mut rng)];
                    let t = Instant::now();
                    local.sent += 1;
                    match client.request(RequestBody::Query(q.clone())) {
                        Ok(resp) => {
                            let dt = t.elapsed();
                            local.latency.observe_ns(dt.as_nanos() as u64);
                            shard.observe(obs::names::SPAN_LOADGEN_REQUEST, dt);
                            match resp.body {
                                ResponseBody::Matches(_) => {
                                    local.ok += 1;
                                    shard.add(obs::names::LOADGEN_OK, 1);
                                }
                                ResponseBody::Busy => {
                                    local.busy += 1;
                                    shard.add(obs::names::LOADGEN_BUSY, 1);
                                }
                                _ => {
                                    local.errors += 1;
                                    shard.add(obs::names::LOADGEN_ERRORS, 1);
                                }
                            }
                        }
                        Err(_) => {
                            local.errors += 1;
                            shard.add(obs::names::LOADGEN_ERRORS, 1);
                            break; // connection is gone
                        }
                    }
                }
                registry.absorb(shard);
                fold_into(merged, &local);
            });
        }
    });
    let mut report = merged.into_inner().expect("loadgen merge");
    report.elapsed = t0.elapsed();
    if cfg.shutdown {
        let mut client = Client::connect_retry(addr, cfg.connect_timeout)?;
        let _ = client.shutdown();
    }
    Ok(report)
}

/// Fold one connection's totals into the shared report under its lock.
fn fold_into(merged: &Mutex<LoadgenReport>, local: &LoadgenReport) {
    let mut m = merged.lock().expect("loadgen merge");
    m.sent += local.sent;
    m.ok += local.ok;
    m.busy += local.busy;
    m.errors += local.errors;
    m.latency.merge(&local.latency);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_skews_toward_low_indices() {
        let z = Zipf::new(10, 1.5);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[4], "{counts:?}");
        assert!(counts[0] > counts[9] * 4, "{counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn report_percentiles_come_from_the_histogram() {
        let mut r = LoadgenReport::default();
        for us in [100u64, 200, 300, 400, 50_000] {
            r.latency.observe_ns(us * 1_000);
        }
        r.ok = 5;
        r.elapsed = Duration::from_secs(1);
        assert!(r.latency.quantile_ns(0.5) >= 100_000);
        assert!(r.latency.quantile_ns(0.99) >= 50_000_000 / 2);
        assert!((r.throughput() - 5.0).abs() < 1e-9);
        let text = r.to_string();
        assert!(text.contains("p95="), "{text}");
    }
}
