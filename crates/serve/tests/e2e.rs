//! End-to-end serving tests: a real server thread, real sockets.

use graph_core::{graph_from, Graph};
use serve::protocol::{RequestBody, ResponseBody};
use serve::{Client, LoadgenConfig, ServeConfig, ServeReport, Server};
use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::Duration;
use treepi::{scan_support, Engine, TreePiIndex, TreePiParams};

fn db() -> Vec<Graph> {
    vec![
        graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1), (2, 3, 0)]),
        graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
        graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
        graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
        graph_from(&[0, 1], &[(0, 1, 1)]),
    ]
}

fn queries() -> Vec<Graph> {
    vec![
        graph_from(&[0, 0], &[(0, 1, 0)]),
        graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
        graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
        graph_from(&[9, 9], &[(0, 1, 0)]),
        graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]),
    ]
}

fn build_index() -> TreePiIndex {
    TreePiIndex::build(db(), TreePiParams::quick())
}

/// Bind on an ephemeral port and run the server on its own thread; the
/// joined result carries the run report, the final metrics, and the
/// engine (for oracle checks against the post-maintenance database).
fn spawn_server(
    config: ServeConfig,
) -> (
    SocketAddr,
    JoinHandle<(ServeReport, obs::MetricSet, Engine)>,
) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        let engine = Engine::new(build_index(), 2);
        let registry = obs::Registry::new();
        let report = server.run(&engine, &registry).expect("serve");
        (report, registry.drain(), engine)
    });
    (addr, handle)
}

fn expect_matches(resp: serve::Response) -> Vec<u32> {
    match resp.body {
        ResponseBody::Matches(ids) => ids,
        other => panic!("expected matches, got {other:?}"),
    }
}

#[test]
fn served_answers_match_the_scan_oracle() {
    let (addr, handle) = spawn_server(ServeConfig {
        batch_window: Duration::from_micros(200),
        ..ServeConfig::default()
    });
    let mut client = Client::connect_retry(&addr.to_string(), Duration::from_secs(5)).unwrap();
    let oracle = build_index();
    for q in queries() {
        let ids = expect_matches(client.query(&q).unwrap());
        assert_eq!(ids, scan_support(&oracle, &q), "query answered wrong");
    }
    // Edgeless queries are a protocol-level error, not a panic.
    let lone = graph_from(&[3], &[]);
    match client.query(&lone).unwrap().body {
        ResponseBody::Error(msg) => assert!(msg.contains("edge"), "{msg}"),
        other => panic!("expected error for edgeless query, got {other:?}"),
    }
    matches!(client.shutdown().unwrap().body, ResponseBody::ShuttingDown)
        .then_some(())
        .expect("shutdown ack");
    let (report, _, _) = handle.join().unwrap();
    assert_eq!(report.queries, queries().len() as u64 + 1);
    assert_eq!(report.errors, 1);
    assert_eq!(report.shed, 0);
    assert!(report.batches >= 1);
}

#[test]
fn cache_hits_repeats_and_maintenance_invalidates() {
    let (addr, handle) = spawn_server(ServeConfig {
        batch_window: Duration::from_micros(200),
        ..ServeConfig::default()
    });
    let mut client = Client::connect_retry(&addr.to_string(), Duration::from_secs(5)).unwrap();
    let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
    let first = expect_matches(client.query(&q).unwrap());
    for _ in 0..3 {
        // Same canonical form — served from cache, same answer.
        assert_eq!(expect_matches(client.query(&q).unwrap()), first);
    }
    // An isomorphic relabeling shares the cache key.
    let iso = graph_from(&[1, 0, 0], &[(2, 1, 0), (1, 0, 0)]);
    assert_eq!(expect_matches(client.query(&iso).unwrap()), first);

    // Insert a graph that matches the cached query: the next request
    // must see it — a stale cached answer here is the bug this guards.
    let gid = match client
        .insert(&graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]))
        .unwrap()
        .body
    {
        ResponseBody::Inserted(gid) => gid,
        other => panic!("expected insert ack, got {other:?}"),
    };
    let after_insert = expect_matches(client.query(&q).unwrap());
    assert!(
        after_insert.contains(&gid),
        "cached answer served after insert: {after_insert:?}"
    );
    assert_ne!(after_insert, first);

    // Remove it again: the next answer reverts — no stale positive.
    match client.remove(gid).unwrap().body {
        ResponseBody::Removed(was_active) => assert!(was_active),
        other => panic!("expected remove ack, got {other:?}"),
    }
    assert_eq!(expect_matches(client.query(&q).unwrap()), first);

    client.shutdown().unwrap();
    let (report, metrics, engine) = handle.join().unwrap();
    assert!(report.cache_hits >= 4, "repeats must hit: {report}");
    assert_eq!(report.maintenance, 2);
    // The post-churn database agrees with the last answer.
    assert_eq!(scan_support(&engine.index(), &q), first);
    if obs::COMPILED_IN {
        assert!(metrics.counter(obs::names::CACHE_HIT) >= 4);
        assert_eq!(metrics.counter(obs::names::CACHE_INVALIDATIONS), 2);
        assert_eq!(metrics.counter(obs::names::SERVE_MAINTENANCE), 2);
    }
}

#[test]
fn novel_edge_insert_is_queryable_over_the_wire() {
    // σ(1)=1 under serving-path maintenance: the inserted graph carries
    // an edge (7-7 labeled 3) no database graph has; querying that edge
    // afterwards must find the new graph instead of short-circuiting on
    // a stale missing-feature proof.
    let (addr, handle) = spawn_server(ServeConfig {
        batch_window: Duration::from_micros(200),
        ..ServeConfig::default()
    });
    let mut client = Client::connect_retry(&addr.to_string(), Duration::from_secs(5)).unwrap();
    let q = graph_from(&[7, 7], &[(0, 1, 3)]);
    assert_eq!(expect_matches(client.query(&q).unwrap()), Vec::<u32>::new());
    let gid = match client
        .insert(&graph_from(&[7, 7, 0], &[(0, 1, 3), (1, 2, 0)]))
        .unwrap()
        .body
    {
        ResponseBody::Inserted(gid) => gid,
        other => panic!("expected insert ack, got {other:?}"),
    };
    assert_eq!(expect_matches(client.query(&q).unwrap()), vec![gid]);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn overload_sheds_with_busy_and_the_queue_stays_bounded() {
    // A long batch window plus a tiny queue: pipelined queries can't be
    // dispatched (window not expired) so all but `queue_cap` are shed
    // immediately with Busy — and the queue provably never exceeds cap.
    const FLOOD: usize = 20;
    const CAP: usize = 2;
    let (addr, handle) = spawn_server(ServeConfig {
        batch_window: Duration::from_secs(5),
        max_batch: 64,
        queue_cap: CAP,
        cache_cap: 0, // every query must take the admission path
        ..ServeConfig::default()
    });
    let mut client = Client::connect_retry(&addr.to_string(), Duration::from_secs(5)).unwrap();
    let q = queries()[0].clone();
    for _ in 0..FLOOD {
        client.send(RequestBody::Query(q.clone())).unwrap();
    }
    // Shutdown drains the queue, so the held queries answer immediately
    // instead of waiting out the 5s window.
    client.send(RequestBody::Shutdown).unwrap();
    let (mut busy, mut matched, mut acked) = (0, 0, 0);
    for _ in 0..FLOOD + 1 {
        match client.recv().unwrap().body {
            ResponseBody::Busy => busy += 1,
            ResponseBody::Matches(ids) => {
                assert_eq!(ids, scan_support(&build_index(), &q));
                matched += 1;
            }
            ResponseBody::ShuttingDown => acked += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(acked, 1);
    assert_eq!(matched, CAP, "exactly the queued queries are served");
    assert_eq!(busy, FLOOD - CAP, "the rest are shed explicitly");
    let (report, metrics, _) = handle.join().unwrap();
    assert_eq!(report.shed as usize, FLOOD - CAP);
    assert!(
        report.queue_peak <= CAP,
        "admission queue exceeded its bound: {report}"
    );
    if obs::COMPILED_IN {
        assert_eq!(
            metrics.counter(obs::names::SERVE_SHED) as usize,
            FLOOD - CAP
        );
    }
}

#[test]
fn loadgen_drives_the_server_and_reports_latency() {
    let (addr, handle) = spawn_server(ServeConfig {
        batch_window: Duration::from_micros(500),
        ..ServeConfig::default()
    });
    let registry = obs::Registry::new();
    let cfg = LoadgenConfig {
        connections: 2,
        requests: 60,
        zipf: 1.2, // skewed: repeats should hit the result cache
        shutdown: true,
        ..LoadgenConfig::default()
    };
    let report = serve::loadgen::run(&addr.to_string(), &queries(), &cfg, &registry).unwrap();
    assert_eq!(report.sent, 60);
    assert_eq!(report.ok, 60);
    assert_eq!(report.errors, 0);
    assert_eq!(report.latency.count, 60);
    assert!(report.throughput() > 0.0);
    assert!(report.latency.quantile_ns(0.99) >= report.latency.quantile_ns(0.50));
    let rendered = report.to_string();
    assert!(
        rendered.contains("p50=") && rendered.contains("p99="),
        "{rendered}"
    );

    let (server_report, _, _) = handle.join().unwrap();
    assert_eq!(server_report.queries, 60);
    assert!(
        server_report.cache_hits > 0,
        "zipf repeats never hit the cache: {server_report}"
    );
    if obs::COMPILED_IN {
        let m = registry.drain();
        assert_eq!(m.counter(obs::names::LOADGEN_OK), 60);
        let span = m.span(obs::names::SPAN_LOADGEN_REQUEST).expect("span");
        assert_eq!(span.count, 60);
    }
}

#[test]
fn stats_op_returns_live_parseable_snapshot() {
    let (addr, handle) = spawn_server(ServeConfig {
        batch_window: Duration::from_micros(200),
        ..ServeConfig::default()
    });
    let mut client = Client::connect_retry(&addr.to_string(), Duration::from_secs(5)).unwrap();
    // Work first, so the live snapshot has counters to show.
    for q in queries() {
        expect_matches(client.query(&q).unwrap());
    }
    let repeat = queries()[0].clone();
    expect_matches(client.query(&repeat).unwrap()); // cache hit
    let json = match client.stats().unwrap().body {
        ResponseBody::Stats(json) => json,
        other => panic!("expected stats, got {other:?}"),
    };
    let snap = obs::json::parse_metric_set(&json).expect("snapshot is valid treepi.obs/v1");
    if obs::COMPILED_IN {
        // Live serve counters — recorded in the loop's shard, which is only
        // absorbed at shutdown: a snapshot built from the registry alone
        // would show zeros here.
        assert_eq!(snap.counter(obs::names::SERVE_QUERIES), 6);
        assert!(snap.counter(obs::names::CACHE_HIT) >= 1);
        assert_eq!(snap.counter(obs::names::SERVE_STATS), 1);
        assert!(
            snap.gauge(obs::names::GAUGE_SERVE_QUEUE_PEAK).is_some(),
            "queue peak gauge missing"
        );
        assert!(
            snap.gauge(obs::names::GAUGE_SERVE_QUEUE_DEPTH).is_some(),
            "queue depth gauge missing"
        );
        // Pipeline spans from executed batches are visible mid-run too.
        assert!(snap.span(obs::names::SPAN_VERIFY).is_some());
    }
    // The server keeps serving after a snapshot.
    let again = expect_matches(client.query(&repeat).unwrap());
    assert_eq!(again, scan_support(&build_index(), &repeat));
    client.shutdown().unwrap();
    let (report, metrics, _) = handle.join().unwrap();
    assert_eq!(report.requests, 9); // 7 queries + stats + shutdown
    if obs::COMPILED_IN {
        // The final drained metrics also carry the stats-op counter.
        assert_eq!(metrics.counter(obs::names::SERVE_STATS), 1);
    }
}

#[test]
fn telemetry_captures_slow_queries_and_samples_series() {
    use serve::telemetry::ServeTelemetry;

    if !obs::COMPILED_IN {
        return; // sampler and slow-log capture are compiled out
    }
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            batch_window: Duration::from_micros(200),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        let engine = Engine::new(build_index(), 2);
        let registry = obs::Registry::new();
        let mut telemetry = ServeTelemetry {
            // Zero interval: every poll iteration samples.
            sampler: obs::series::Sampler::new(Duration::ZERO, 8),
            // Zero threshold: every executed query is "slow". Cap 3 keeps
            // the ring bounded below the query count.
            slow: serve::SlowQueryLog::new(Some(Duration::ZERO), 3),
            access: None,
        };
        let report = server
            .run_with_telemetry(&engine, &registry, &mut telemetry)
            .expect("serve");
        (report, registry.drain(), telemetry)
    });
    let mut client = Client::connect_retry(&addr.to_string(), Duration::from_secs(5)).unwrap();
    for q in queries() {
        expect_matches(client.query(&q).unwrap());
    }
    client.shutdown().unwrap();
    let (report, metrics, telemetry) = handle.join().unwrap();
    assert_eq!(report.served, 5);
    // Every executed query tripped the zero threshold; the ring kept 3.
    assert_eq!(telemetry.slow.seen(), 5);
    assert_eq!(telemetry.slow.len(), 3);
    assert_eq!(metrics.counter(obs::names::SERVE_SLOW_QUERIES), 5);
    let doc = telemetry.slow.render_chrome_json();
    let v = obs::json::parse(&doc).expect("slow log renders valid Chrome JSON");
    let slices = v
        .get("traceEvents")
        .and_then(obs::json::Value::as_array)
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(obs::json::Value::as_str) == Some("X"))
        .count();
    assert_eq!(slices, 3 * 6, "3 captures × (umbrella + 5 stages)");
    // The sampler ticked (poll iterations happen even while idle) and its
    // timestamps are monotone.
    assert!(!telemetry.sampler.is_empty(), "sampler never fired");
    let series = obs::json::parse(&telemetry.sampler.render_json()).expect("valid series JSON");
    let samples = series
        .get("samples")
        .and_then(obs::json::Value::as_array)
        .unwrap();
    let mut prev = 0u64;
    for s in samples {
        let t = s.get("t_ns").and_then(obs::json::Value::as_u64).unwrap();
        assert!(t >= prev, "series timestamps must be monotone");
        prev = t;
    }
}

/// Like [`spawn_server`], but with the HTTP monitoring listener bound on
/// an ephemeral port and a zero-threshold slow-query log (so `/slowz`
/// has content to serve).
fn spawn_http_server(
    config: ServeConfig,
) -> (
    SocketAddr,
    SocketAddr,
    JoinHandle<(ServeReport, obs::MetricSet)>,
) {
    let config = ServeConfig {
        http_addr: Some("127.0.0.1:0".to_string()),
        ..config
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let http = server.http_local_addr().expect("http addr");
    let handle = std::thread::spawn(move || {
        let engine = Engine::new(build_index(), 2);
        let registry = obs::Registry::new();
        let mut telemetry = serve::ServeTelemetry {
            sampler: obs::series::Sampler::disabled(),
            slow: serve::SlowQueryLog::new(Some(Duration::ZERO), 4),
            access: None,
        };
        let report = server
            .run_with_telemetry(&engine, &registry, &mut telemetry)
            .expect("serve");
        (report, registry.drain())
    });
    (addr, http, handle)
}

/// One-shot HTTP GET against the monitoring listener: (status, body).
fn http_get(addr: &SocketAddr, path: &str) -> (u16, String) {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).expect("connect http");
    write!(s, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("send request");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response has a head");
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    (status, body.to_string())
}

/// Value of a single-sample line (`name 42`) in Prometheus text.
fn prom_value(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.split(' ').next() == Some(name))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
}

/// The `+Inf` bucket count of a histogram family in Prometheus text.
fn prom_inf_bucket(text: &str, family: &str) -> Option<f64> {
    let prefix = format!("{family}_bucket{{le=\"+Inf\"}}");
    text.lines()
        .find(|l| l.starts_with(prefix.as_str()))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn http_metrics_agree_with_the_stats_snapshot() {
    if !obs::COMPILED_IN {
        return; // nothing to scrape
    }
    let (addr, http, handle) = spawn_http_server(ServeConfig {
        batch_window: Duration::from_micros(200),
        ..ServeConfig::default()
    });
    let mut client = Client::connect_retry(&addr.to_string(), Duration::from_secs(5)).unwrap();
    for q in queries() {
        expect_matches(client.query(&q).unwrap());
    }
    // Quiescent now: every query is answered, so the STATS snapshot and
    // the /metrics scrape that follows must agree on request counters.
    let json = match client.stats().unwrap().body {
        ResponseBody::Stats(json) => json,
        other => panic!("expected stats, got {other:?}"),
    };
    let snap = obs::json::parse_metric_set(&json).expect("valid snapshot");

    let (status, metrics) = http_get(&http, "/metrics");
    assert_eq!(status, 200, "{metrics}");
    assert_eq!(
        prom_value(&metrics, "serve_queries_total"),
        Some(snap.counter(obs::names::SERVE_QUERIES) as f64),
        "/metrics and STATS disagree on serve.queries"
    );
    // series.dropped is surfaced as a live gauge on both paths.
    assert!(snap.gauge(obs::names::GAUGE_SERIES_DROPPED).is_some());
    assert!(
        prom_value(&metrics, "series_dropped").is_some(),
        "series_dropped gauge missing from /metrics"
    );

    // All four decomposition histograms are exported and internally
    // consistent: the +Inf bucket equals _count. The batch-side three are
    // quiescent between the snapshot and the scrape, so they also agree
    // with STATS exactly; write_wait keeps moving (the STATS response
    // itself is flushed in between), so it only gets the ≥ bound.
    for name in obs::names::DECOMPOSITION_SPANS {
        let fam = format!("{}_seconds", obs::prom::sanitize(name));
        let inf = prom_inf_bucket(&metrics, &fam)
            .unwrap_or_else(|| panic!("{fam} has no +Inf bucket:\n{metrics}"));
        let count = prom_value(&metrics, &format!("{fam}_count")).expect("count sample");
        assert_eq!(inf, count, "{fam}: +Inf bucket must equal _count");
        let span = snap
            .span(name)
            .unwrap_or_else(|| panic!("{name} missing from STATS snapshot"));
        if name == obs::names::SPAN_SERVE_WRITE_WAIT {
            assert!(inf >= span.count as f64, "{fam} went backwards");
        } else {
            assert_eq!(inf, span.count as f64, "{fam} disagrees with STATS");
        }
    }
    // The decomposition must fit inside the umbrella: time attributed to
    // queue wait and execution cannot exceed total request time.
    let qw = prom_value(&metrics, "serve_queue_wait_seconds_sum").unwrap();
    let ex = prom_value(&metrics, "serve_exec_share_seconds_sum").unwrap();
    let rq = prom_value(&metrics, "serve_request_seconds_sum").unwrap();
    assert!(
        qw + ex <= rq * (1.0 + 1e-9) + 1e-12,
        "queue_wait ({qw}) + exec ({ex}) exceeds serve.request ({rq})"
    );

    let (status, health) = http_get(&http, "/healthz");
    assert_eq!(status, 200, "{health}");
    assert!(health.contains("\"status\": \"ok\""), "{health}");
    let (status, slowz) = http_get(&http, "/slowz");
    assert_eq!(status, 200);
    let v = obs::json::parse(&slowz).expect("/slowz is valid JSON");
    assert!(v.get("traceEvents").is_some(), "{slowz}");
    let (status, _) = http_get(&http, "/nope");
    assert_eq!(status, 404);

    client.shutdown().unwrap();
    let (report, _) = handle.join().unwrap();
    assert!(report.http_requests >= 4, "{report}");
}

#[test]
fn healthz_degrades_under_injected_stall() {
    // A 1 ns threshold makes every event-loop work period a "stall": the
    // watchdog trips on real measurements, no special test hooks.
    let (addr, http, handle) = spawn_http_server(ServeConfig {
        batch_window: Duration::from_micros(200),
        stall_threshold: Some(Duration::from_nanos(1)),
        ..ServeConfig::default()
    });
    let mut client = Client::connect_retry(&addr.to_string(), Duration::from_secs(5)).unwrap();
    expect_matches(client.query(&queries()[0]).unwrap());
    let (status, body) = http_get(&http, "/healthz");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"status\": \"degraded\""), "{body}");
    if obs::COMPILED_IN {
        let (_, metrics) = http_get(&http, "/metrics");
        let stalls = prom_value(&metrics, "serve_loop_stall_count_total").unwrap_or(0.0);
        assert!(stalls >= 1.0, "no stalls exported:\n{metrics}");
        assert!(
            prom_value(&metrics, "serve_loop_max_stall_us").unwrap_or(0.0) >= 0.0,
            "max-stall gauge missing"
        );
    }
    client.shutdown().unwrap();
    let (report, _) = handle.join().unwrap();
    assert!(report.stalls >= 1, "watchdog never tripped: {report}");
}

#[test]
fn access_log_writes_one_record_per_request() {
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let buf = SharedBuf::default();
    let sink = buf.clone();
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            batch_window: Duration::from_micros(200),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        let engine = Engine::new(build_index(), 2);
        let registry = obs::Registry::new();
        let mut telemetry = serve::ServeTelemetry {
            sampler: obs::series::Sampler::disabled(),
            slow: serve::SlowQueryLog::new(None, 0),
            access: Some(serve::AccessLog::to_writer(Box::new(sink))),
        };
        let report = server
            .run_with_telemetry(&engine, &registry, &mut telemetry)
            .expect("serve");
        (report, telemetry)
    });
    let mut client = Client::connect_retry(&addr.to_string(), Duration::from_secs(5)).unwrap();
    let q = queries()[1].clone();
    expect_matches(client.query(&queries()[0]).unwrap());
    expect_matches(client.query(&q).unwrap());
    expect_matches(client.query(&q.clone()).unwrap()); // cache hit
    client.shutdown().unwrap();
    let (_, telemetry) = handle.join().unwrap();
    let access = telemetry.access.expect("access log survives the run");
    assert_eq!(access.lines(), 4, "3 queries + shutdown");
    assert_eq!(access.write_errors(), 0);

    let raw = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let records: Vec<obs::json::Value> = raw
        .lines()
        .map(|l| obs::json::parse(l).expect("each access line is valid JSON"))
        .collect();
    assert_eq!(records.len(), 4);
    let op = |r: &obs::json::Value| {
        r.get("op")
            .and_then(obs::json::Value::as_str)
            .map(String::from)
    };
    assert_eq!(
        records
            .iter()
            .filter(|r| op(r).as_deref() == Some("query"))
            .count(),
        3
    );
    assert_eq!(
        records
            .iter()
            .filter(|r| op(r).as_deref() == Some("shutdown"))
            .count(),
        1
    );
    // Exactly one of the three queries hit the cache; the executed two
    // carry the stage decomposition.
    let hits = records
        .iter()
        .filter(|r| r.get("cache_hit").and_then(obs::json::Value::as_bool) == Some(true))
        .count();
    assert_eq!(hits, 1, "{raw}");
    let staged = records
        .iter()
        .filter(|r| r.get("cache_hit").and_then(obs::json::Value::as_bool) == Some(false))
        .filter(|r| r.get("queue_wait_us").is_some() && r.get("exec_us").is_some())
        .count();
    assert_eq!(
        staged, 2,
        "executed queries must carry stage timings: {raw}"
    );
}

#[test]
fn open_loop_rate_paces_the_run() {
    let (addr, handle) = spawn_server(ServeConfig::default());
    let registry = obs::Registry::disabled();
    let cfg = LoadgenConfig {
        connections: 1,
        requests: 10,
        rate: Some(200.0), // 10 requests at 200/s ≈ 45ms min wall time
        shutdown: true,
        ..LoadgenConfig::default()
    };
    let report = serve::loadgen::run(&addr.to_string(), &queries(), &cfg, &registry).unwrap();
    assert_eq!(report.ok, 10);
    assert!(
        report.elapsed >= Duration::from_millis(40),
        "open loop finished too fast: {:?}",
        report.elapsed
    );
    handle.join().unwrap();
}

/// Like [`spawn_server`], but the engine re-mines in the background after
/// `threshold` applied §7.1 ops — the concurrency tests drive swaps from
/// both the apply path and the re-mine thread.
fn spawn_remine_server(
    threshold: u64,
    config: ServeConfig,
) -> (
    SocketAddr,
    JoinHandle<(ServeReport, obs::MetricSet, Engine)>,
) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        let engine = Engine::with_remine(build_index(), 2, threshold);
        let registry = obs::Registry::new();
        let report = server.run(&engine, &registry).expect("serve");
        (report, registry.drain(), engine)
    });
    (addr, handle)
}

/// Tentpole acceptance: pipelined queries racing concurrent insert/remove
/// traffic are never blocked and never torn. Every answer must equal the
/// scan oracle of SOME §7.1 prefix state (pre- or post-epoch) — an answer
/// mixing two epochs (e.g. a half-applied batch) matches no prefix and
/// fails. Background re-mining runs throughout (threshold 3 over 12 ops),
/// so swaps come from both the apply path and the re-mine thread.
#[test]
fn concurrent_maintenance_never_tears_or_blocks_queries() {
    const OPS: usize = 12;
    let (addr, handle) = spawn_remine_server(
        3,
        ServeConfig {
            batch_window: Duration::from_micros(200),
            ..ServeConfig::default()
        },
    );
    let q = graph_from(&[0, 0], &[(0, 1, 0)]);
    let extra = graph_from(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0)]);

    // Enumerate every §7.1 prefix state's oracle answer up front: the op
    // schedule is deterministic (alternating insert/remove of the
    // mutator's own gids, assigned densely from 5), so each prefix k has
    // one well-defined answer.
    let base = scan_support(&build_index(), &q);
    let mut allowed: std::collections::HashSet<Vec<u32>> = std::collections::HashSet::new();
    let mut inserted_live: Vec<u32> = Vec::new();
    let mut next_gid = db().len() as u32;
    allowed.insert(base.clone());
    for k in 0..OPS {
        if k % 3 == 2 {
            inserted_live.remove(0);
        } else {
            inserted_live.push(next_gid);
            next_gid += 1;
        }
        let mut ans = base.clone();
        ans.extend(&inserted_live);
        ans.sort_unstable();
        allowed.insert(ans);
    }

    let mutator_addr = addr;
    let mutator_q = q.clone();
    let mutator = std::thread::spawn(move || {
        let q = mutator_q;
        let mut client =
            Client::connect_retry(&mutator_addr.to_string(), Duration::from_secs(5)).unwrap();
        let mut live: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        for k in 0..OPS {
            if k % 3 == 2 {
                let gid = live.pop_front().unwrap();
                match client.remove(gid).unwrap().body {
                    ResponseBody::Removed(was) => assert!(was, "gid {gid} should be live"),
                    other => panic!("expected remove ack, got {other:?}"),
                }
                // Read-your-writes across the swap: a stale cache hit
                // would still cite the removed gid.
                let seen = expect_matches(client.query(&q).unwrap());
                assert!(!seen.contains(&gid), "stale answer cites removed {gid}");
            } else {
                let gid = match client.insert(&extra).unwrap().body {
                    ResponseBody::Inserted(gid) => gid,
                    other => panic!("expected insert ack, got {other:?}"),
                };
                live.push_back(gid);
                // Read-your-writes: the very next query must already see
                // the insert, even if a re-mine published in between.
                let seen = expect_matches(client.query(&q).unwrap());
                assert!(seen.contains(&gid), "stale answer misses inserted {gid}");
            }
            std::thread::sleep(Duration::from_micros(300));
        }
    });

    let mut client = Client::connect_retry(&addr.to_string(), Duration::from_secs(5)).unwrap();
    let mut served = 0u32;
    for _ in 0..60 {
        let ans = expect_matches(client.query(&q).unwrap());
        assert!(
            allowed.contains(&ans),
            "torn answer (matches no §7.1 prefix): {ans:?}"
        );
        served += 1;
    }
    mutator.join().expect("mutator");
    assert_eq!(served, 60, "every concurrent query must be answered");

    client.shutdown().unwrap();
    let (report, metrics, engine) = handle.join().unwrap();
    engine.wait_remine_idle();

    // maint.* counters reconcile with the ops actually sent.
    let stats = engine.maint_stats();
    assert_eq!(stats.queued, OPS as u64, "{stats:?}");
    assert_eq!(stats.applied, OPS as u64, "{stats:?}");
    assert_eq!(stats.pending, 0, "{stats:?}");
    assert!(stats.apply_batches >= 1 && stats.apply_batches <= OPS as u64);
    assert!(
        stats.remine_triggers >= 1,
        "threshold 3 over {OPS} ops never triggered: {stats:?}"
    );
    assert_eq!(stats.remines_completed, stats.remine_triggers);
    assert!(
        stats.snapshot_swaps >= stats.apply_batches + stats.remines_completed - 1,
        "{stats:?}"
    );
    assert_eq!(report.maintenance, OPS as u64);
    if obs::COMPILED_IN {
        assert_eq!(metrics.counter(obs::names::MAINT_QUEUED), OPS as u64);
        assert_eq!(metrics.counter(obs::names::MAINT_APPLIED), OPS as u64);
        assert_eq!(
            metrics.counter(obs::names::MAINT_APPLY_BATCHES),
            stats.apply_batches
        );
        let span = metrics
            .span(obs::names::SPAN_MAINT_APPLY)
            .expect("apply span");
        assert_eq!(span.count, stats.apply_batches);
    }

    // The final database agrees with the last prefix oracle.
    let expect_final: Vec<u32> = {
        let mut inserted_live: Vec<u32> = Vec::new();
        let mut next_gid = db().len() as u32;
        for k in 0..OPS {
            if k % 3 == 2 {
                inserted_live.remove(0);
            } else {
                inserted_live.push(next_gid);
                next_gid += 1;
            }
        }
        let mut ans = base;
        ans.extend(&inserted_live);
        ans.sort_unstable();
        ans
    };
    assert_eq!(scan_support(&engine.index(), &q), expect_final);
}

/// Stale-cache regression at the swap boundary: with re-mining after
/// every single op, each insert/remove is immediately followed by a query
/// whose answer must reflect it — a cache entry surviving any swap
/// (apply or re-mine publication) breaks read-your-writes here.
#[test]
fn no_stale_cache_hits_across_remine_swaps() {
    let (addr, handle) = spawn_remine_server(
        1,
        ServeConfig {
            batch_window: Duration::from_micros(200),
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect_retry(&addr.to_string(), Duration::from_secs(5)).unwrap();
    let q = graph_from(&[0, 0], &[(0, 1, 0)]);
    let extra = graph_from(&[0, 0], &[(0, 1, 0)]);
    let base = expect_matches(client.query(&q).unwrap());
    for round in 0..4 {
        // Warm the cache, then churn: the repeat after each op must track.
        expect_matches(client.query(&q).unwrap());
        let gid = match client.insert(&extra).unwrap().body {
            ResponseBody::Inserted(gid) => gid,
            other => panic!("expected insert ack, got {other:?}"),
        };
        let with = expect_matches(client.query(&q).unwrap());
        assert!(with.contains(&gid), "round {round}: stale miss of {gid}");
        match client.remove(gid).unwrap().body {
            ResponseBody::Removed(was) => assert!(was),
            other => panic!("expected remove ack, got {other:?}"),
        }
        let without = expect_matches(client.query(&q).unwrap());
        assert_eq!(without, base, "round {round}: stale positive after remove");
    }
    client.shutdown().unwrap();
    let (_, _, engine) = handle.join().unwrap();
    engine.wait_remine_idle();
    let stats = engine.maint_stats();
    assert_eq!(stats.queued, 8);
    assert_eq!(stats.remines_completed, stats.remine_triggers);
    assert!(stats.remine_triggers >= 1, "{stats:?}");
}
