//! Shared infrastructure for the figure-regeneration binaries: dataset
//! construction, query workloads, timing, table/CSV output.

use datagen::{generate_chem, generate_synthetic, ChemParams, SyntheticParams};
use graph_core::Graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Experiment scale: `quick` keeps everything laptop-sized; `full` is the
/// paper's scale (expect long runtimes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Scaled ~1:8 from the paper.
    Quick,
    /// Paper scale.
    Full,
}

impl Scale {
    /// Scale a paper-sized count down for quick mode.
    pub fn n(&self, paper: usize) -> usize {
        match self {
            Scale::Quick => (paper / 8).max(100),
            Scale::Full => paper,
        }
    }

    /// Queries per query set (paper: 1000).
    pub fn queries(&self, paper: usize) -> usize {
        match self {
            Scale::Quick => (paper / 10).max(30),
            Scale::Full => paper,
        }
    }
}

/// Global experiment options parsed from the command line.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Scale selector.
    pub scale: Scale,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Output directory for CSV artifacts.
    pub out: PathBuf,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            scale: Scale::Quick,
            seed: 2007, // the paper's year
            out: PathBuf::from("results"),
        }
    }
}

/// Deterministic RNG for a named stage (stable across subcommand order).
pub fn rng_for(opts: &Opts, stage: &str) -> ChaCha8Rng {
    let mut h: u64 = opts.seed;
    for b in stage.bytes() {
        h = h.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
    }
    ChaCha8Rng::seed_from_u64(h)
}

/// The AIDS-surrogate sample Γ_N (paper §6.1).
pub fn chem_db(opts: &Opts, n: usize) -> Vec<Graph> {
    generate_chem(&ChemParams::sized(n), &mut rng_for(opts, "chem"))
}

/// A synthetic dataset `D{n}I10T20S{s}L{l}` (paper §6.2). The seed pool is
/// the paper's S1k scaled once by the run's scale — *not* by `n` — so that
/// size sweeps (Figure 13a) vary only the database size, like the paper.
pub fn synthetic_db(opts: &Opts, n: usize, labels: u32) -> (Vec<Graph>, String) {
    let p = SyntheticParams {
        n_graphs: n,
        seed_size: 10.0,
        graph_size: 20.0,
        seed_count: opts.scale.n(1000),
        vertex_labels: labels,
        edge_labels: 2,
    };
    let name = p.name();
    (
        generate_synthetic(&p, &mut rng_for(opts, "synthetic")),
        name,
    )
}

/// Time a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let v = f();
    (v, t.elapsed())
}

/// Milliseconds as f64 for CSV output.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Write a CSV artifact (header + rows) under the output directory.
pub fn write_csv(opts: &Opts, name: &str, header: &str, rows: &[String]) {
    std::fs::create_dir_all(&opts.out).expect("create output directory");
    let path: PathBuf = Path::new(&opts.out).join(name);
    let mut f = std::fs::File::create(&path).expect("create CSV");
    writeln!(f, "{header}").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
    println!("  -> wrote {}", path.display());
}

/// Print an aligned table: header then rows of equal arity.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(header.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for r in rows {
        line(r.clone());
    }
}
