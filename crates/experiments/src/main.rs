//! Regenerate the TreePi paper's evaluation (one subcommand per figure).
//!
//! ```text
//! experiments <subcommand> [--quick|--full] [--seed N] [--out DIR]
//!
//! subcommands:
//!   fig9     index size vs dataset size               (Figure 9)
//!   fig10    pruning, low/high support queries        (Figure 10a/10b)
//!            [--group low|high]
//!   fig11    prune effectiveness vs |Dq|              (Figure 11a/11b)
//!            [--dataset chem|synthetic]
//!   fig12a   construction time, real dataset          (Figure 12a)
//!   fig12b   query time, real dataset                 (Figure 12b)
//!   fig13a   construction time, synthetic             (Figure 13a)
//!   fig13b   query time, synthetic                    (Figure 13b)
//!   buildscale  construction time vs worker threads   (EXPERIMENTS.md)
//!            [--dataset chem|synthetic]
//!   ablate   pipeline-stage ablations + γ sweep       (DESIGN.md)
//!   classes  paths vs trees vs graphs comparison      (§1 argument)
//!   datasets dataset summary statistics               (§6 descriptions)
//!   all      everything above
//! ```
//!
//! `--quick` (default) scales the paper's sizes ~1:8; `--full` uses the
//! paper's sizes (slow). CSVs land in `--out` (default `results/`).

mod common;
mod figs;

use common::{Opts, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <fig9|fig10|fig11|fig12a|fig12b|fig13a|fig13b|buildscale|ablate|classes|all> \
         [--quick|--full] [--seed N] [--out DIR] [--group low|high] [--dataset chem|synthetic]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        usage()
    };
    let mut opts = Opts::default();
    let mut group: Option<String> = None;
    let mut dataset: Option<String> = None;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.scale = Scale::Quick,
            "--full" => opts.scale = Scale::Full,
            "--seed" => {
                opts.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => opts.out = it.next().map(Into::into).unwrap_or_else(|| usage()),
            "--group" => group = it.next().cloned(),
            "--dataset" => dataset = it.next().cloned(),
            _ => usage(),
        }
    }
    let t = std::time::Instant::now();
    match cmd.as_str() {
        "fig9" => figs::fig9(&opts),
        "fig10" => figs::fig10(&opts, group.as_deref()),
        "fig11" => figs::fig11(&opts, dataset.as_deref().unwrap_or("chem")),
        "fig12a" => figs::fig_construction(&opts, "chem"),
        "fig12b" => figs::fig_query_time(&opts, "chem"),
        "fig13a" => figs::fig_construction(&opts, "synthetic"),
        "fig13b" => figs::fig_query_time(&opts, "synthetic"),
        "buildscale" => figs::buildscale(&opts, dataset.as_deref().unwrap_or("synthetic")),
        "ablate" => figs::ablate(&opts),
        "classes" => figs::classes(&opts),
        "datasets" => figs::datasets(&opts),
        "all" => {
            figs::fig9(&opts);
            figs::fig10(&opts, None);
            figs::fig11(&opts, "chem");
            figs::fig11(&opts, "synthetic");
            figs::fig_construction(&opts, "chem");
            figs::fig_query_time(&opts, "chem");
            figs::fig_construction(&opts, "synthetic");
            figs::fig_query_time(&opts, "synthetic");
            figs::buildscale(&opts, "synthetic");
            figs::ablate(&opts);
            figs::classes(&opts);
            figs::datasets(&opts);
        }
        _ => usage(),
    }
    println!("done in {:.1?}", t.elapsed());
}
