//! One function per paper figure. Each regenerates the figure's series at
//! the selected scale, prints an aligned table, and writes a CSV artifact.
//!
//! Quick scale is ~1:8 of the paper (database sizes, query counts, and the
//! low/high support split threshold all scale together), so the *shapes* —
//! who wins, by what factor, where curves cross — remain comparable.

use crate::common::*;
use datagen::extract_queries;
use gindex::{GIndex, GIndexParams};
use graph_core::Graph;
use treepi::{QueryOptions, SfMode, TreePiIndex, TreePiParams};

/// Build both indexes over one database (timed).
fn build_both(db: &[Graph]) -> (TreePiIndex, f64, GIndex, f64) {
    let (tp, t_tp) = timed(|| TreePiIndex::build(db.to_vec(), TreePiParams::default()));
    let (gi, t_gi) = timed(|| GIndex::build(db.to_vec(), GIndexParams::paper_default(db.len())));
    (tp, ms(t_tp), gi, ms(t_gi))
}

/// Per-stage wall-time breakdown from the `obs` registries: one metered
/// batch run per system, printed as a table (total / mean / p95 per
/// pipeline stage) and written to `stages_{dataset}.csv`. gIndex reports
/// under the same span names; its partition and prune rows are zero by
/// construction — that empty cell *is* the comparison the paper makes.
fn stage_breakdown(
    opts: &Opts,
    dataset: &str,
    tp: &TreePiIndex,
    gi: &GIndex,
    queries: &[Graph],
    seed: u64,
) {
    if !obs::COMPILED_IN {
        return;
    }
    let tp_reg = obs::Registry::new();
    let _ = tp.query_batch_obs(queries, QueryOptions::default(), 0, seed, &tp_reg);
    let tp_m = tp_reg.drain();
    let gi_reg = obs::Registry::new();
    let _ = gi.query_batch_obs(queries, 0, &gi_reg);
    let gi_m = gi_reg.drain();
    println!(
        "-- stage breakdown over {} queries of size {} (obs spans, both systems) --",
        queries.len(),
        queries.first().map_or(0, |q| q.edge_count())
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for name in obs::names::PIPELINE_SPANS {
        let t = tp_m.span(name).cloned().unwrap_or_default();
        let g = gi_m.span(name).cloned().unwrap_or_default();
        rows.push(vec![
            name.to_string(),
            format!("{:.2}", t.total_ns as f64 / 1e6),
            format!("{:.1}", t.mean_ns() as f64 / 1e3),
            format!("{:.1}", t.quantile_ns(0.50) as f64 / 1e3),
            format!("{:.1}", t.quantile_ns(0.95) as f64 / 1e3),
            format!("{:.2}", g.total_ns as f64 / 1e6),
            format!("{:.1}", g.mean_ns() as f64 / 1e3),
            format!("{:.1}", g.quantile_ns(0.50) as f64 / 1e3),
            format!("{:.1}", g.quantile_ns(0.95) as f64 / 1e3),
        ]);
        csv.push(format!(
            "{name},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}",
            t.total_ns as f64 / 1e6,
            t.mean_ns() as f64 / 1e3,
            t.quantile_ns(0.50) as f64 / 1e3,
            t.quantile_ns(0.95) as f64 / 1e3,
            g.total_ns as f64 / 1e6,
            g.mean_ns() as f64 / 1e3,
            g.quantile_ns(0.50) as f64 / 1e3,
            g.quantile_ns(0.95) as f64 / 1e3,
        ));
    }
    print_table(
        &[
            "stage",
            "tp total ms",
            "tp mean µs",
            "tp p50 µs",
            "tp p95 µs",
            "gi total ms",
            "gi mean µs",
            "gi p50 µs",
            "gi p95 µs",
        ],
        &rows,
    );
    println!(
        "   funnel: {} queries, |Pq| {} -> |P'q| {} -> |Dq| {} (gIndex |Cq| {})",
        tp_m.counter(obs::names::QUERIES),
        tp_m.counter(obs::names::FILTERED),
        tp_m.counter(obs::names::PRUNED),
        tp_m.counter(obs::names::ANSWERS),
        gi_m.counter(obs::names::FILTERED),
    );
    write_csv(
        opts,
        &format!("stages_{dataset}.csv"),
        "stage,treepi_total_ms,treepi_mean_us,treepi_p50_us,treepi_p95_us,gindex_total_ms,gindex_mean_us,gindex_p50_us,gindex_p95_us",
        &csv,
    );
}

/// Figure 9: index size (number of features) as the test dataset Γ_N grows.
pub fn fig9(opts: &Opts) {
    println!("== Figure 9: index size vs dataset size (AIDS surrogate) ==");
    let sizes: Vec<usize> = [1000, 2000, 4000, 8000, 16000]
        .iter()
        .map(|&n| opts.scale.n(n))
        .collect();
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for n in sizes {
        let db = chem_db(opts, n);
        let (tp, t_tp, gi, t_gi) = build_both(&db);
        rows.push(vec![
            n.to_string(),
            tp.feature_count().to_string(),
            gi.feature_count().to_string(),
            format!("{t_tp:.0}"),
            format!("{t_gi:.0}"),
        ]);
        csv.push(format!(
            "{n},{},{},{t_tp:.1},{t_gi:.1}",
            tp.feature_count(),
            gi.feature_count()
        ));
    }
    print_table(
        &[
            "N",
            "treepi features",
            "gindex features",
            "treepi ms",
            "gindex ms",
        ],
        &rows,
    );
    write_csv(
        opts,
        "fig9.csv",
        "n,treepi_features,gindex_features,treepi_build_ms,gindex_build_ms",
        &csv,
    );
}

/// Per-query measurements shared by Figures 10 and 11.
struct QueryPoint {
    m: usize,
    dq: usize,  // |D_q| (truth)
    cq: usize,  // |C_q| (gIndex candidates)
    ppq: usize, // |P'_q| (TreePi pruned candidates)
}

fn measure_queries(
    opts: &Opts,
    db: &[Graph],
    tp: &TreePiIndex,
    gi: &GIndex,
    m_values: &[usize],
    per_size: usize,
    stage: &str,
) -> Vec<QueryPoint> {
    let mut rng = rng_for(opts, stage);
    let mut points = Vec::new();
    for &m in m_values {
        for q in extract_queries(db, m, per_size, &mut rng) {
            let r = tp.query(&q, &mut rng);
            let (cands, _) = gi.candidates(&q);
            points.push(QueryPoint {
                m,
                dq: r.stats.answers,
                cq: cands.len(),
                ppq: r.stats.pruned,
            });
        }
    }
    points
}

/// Figure 10: pruning performance (candidate-set size vs query edge size),
/// split into low- and high-support query groups.
pub fn fig10(opts: &Opts, group: Option<&str>) {
    println!("== Figure 10: pruning performance on Γ_10k (low/high support) ==");
    let n = opts.scale.n(10_000);
    // Paper threshold: support 50 on 10k graphs; keep the same fraction.
    let threshold = (50 * n).div_ceil(10_000);
    let db = chem_db(opts, n);
    let (tp, _, gi, _) = build_both(&db);
    let m_values = [4usize, 8, 12, 16, 20, 24];
    let per_size = opts.scale.queries(1000);
    let points = measure_queries(opts, &db, &tp, &gi, &m_values, per_size, "fig10");

    for (name, low) in [("low", true), ("high", false)] {
        if group.is_some_and(|g| g != name) {
            continue;
        }
        println!(
            "-- {name}-support queries (|Dq| {} {threshold}) --",
            if low { "<" } else { ">=" }
        );
        let mut rows = Vec::new();
        let mut csv = Vec::new();
        for &m in &m_values {
            let sel: Vec<&QueryPoint> = points
                .iter()
                .filter(|p| p.m == m && ((p.dq < threshold) == low))
                .collect();
            if sel.is_empty() {
                continue;
            }
            let k = sel.len();
            let avg = |f: fn(&QueryPoint) -> usize| {
                sel.iter().map(|p| f(p)).sum::<usize>() as f64 / k as f64
            };
            let (cq, ppq, dq) = (avg(|p| p.cq), avg(|p| p.ppq), avg(|p| p.dq));
            rows.push(vec![
                m.to_string(),
                k.to_string(),
                format!("{cq:.1}"),
                format!("{ppq:.1}"),
                format!("{dq:.1}"),
            ]);
            csv.push(format!("{name},{m},{k},{cq:.2},{ppq:.2},{dq:.2}"));
        }
        print_table(
            &[
                "|q|",
                "queries",
                "gindex |Cq|",
                "treepi |P'q|",
                "actual |Dq|",
            ],
            &rows,
        );
        write_csv(
            opts,
            &format!("fig10_{name}.csv"),
            "group,m,queries,gindex_cq,treepi_ppq,actual_dq",
            &csv,
        );
    }
}

/// Figure 11: prune effectiveness — candidate-set size as a function of the
/// actual support |Dq| (real dataset in (a), synthetic in (b)).
pub fn fig11(opts: &Opts, dataset: &str) {
    let (db, label) = match dataset {
        "chem" => (
            chem_db(opts, opts.scale.n(10_000)),
            "Γ_10k (AIDS surrogate)".to_string(),
        ),
        "synthetic" => {
            let (db, name) = synthetic_db(opts, opts.scale.n(8_000), 4);
            (db, name)
        }
        other => panic!("unknown dataset {other}; use chem|synthetic"),
    };
    println!("== Figure 11 ({dataset}): prune effectiveness on {label} ==");
    let (tp, _, gi, _) = build_both(&db);
    let m_values = [4usize, 8, 12, 16, 20];
    let per_size = opts.scale.queries(1000);
    let points = measure_queries(opts, &db, &tp, &gi, &m_values, per_size, "fig11");

    // Bucket by |Dq| (scaled from the paper's axis up to ~2000 at 10k).
    let n = db.len();
    let buckets: Vec<(usize, usize)> = [
        (1, 10),
        (10, 50),
        (50, 100),
        (100, 250),
        (250, 500),
        (500, 2000),
    ]
    .iter()
    .map(|&(a, b)| {
        (
            (a * n).div_ceil(10_000).max(1),
            (b * n).div_ceil(10_000).max(2),
        )
    })
    .collect();
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (lo, hi) in buckets {
        let sel: Vec<&QueryPoint> = points.iter().filter(|p| p.dq >= lo && p.dq < hi).collect();
        if sel.is_empty() {
            continue;
        }
        let k = sel.len();
        let avg =
            |f: fn(&QueryPoint) -> usize| sel.iter().map(|p| f(p)).sum::<usize>() as f64 / k as f64;
        let (dq, cq, ppq) = (avg(|p| p.dq), avg(|p| p.cq), avg(|p| p.ppq));
        rows.push(vec![
            format!("[{lo},{hi})"),
            k.to_string(),
            format!("{dq:.1}"),
            format!("{cq:.1}"),
            format!("{ppq:.1}"),
        ]);
        csv.push(format!("{lo},{hi},{k},{dq:.2},{cq:.2},{ppq:.2}"));
    }
    print_table(
        &[
            "|Dq| bucket",
            "queries",
            "avg |Dq|",
            "gindex |Cq|",
            "treepi |P'q|",
        ],
        &rows,
    );
    write_csv(
        opts,
        &format!("fig11_{dataset}.csv"),
        "dq_lo,dq_hi,queries,avg_dq,gindex_cq,treepi_ppq",
        &csv,
    );
}

/// Figures 12(a)/13(a): index construction time vs database size.
pub fn fig_construction(opts: &Opts, dataset: &str) {
    let figure = if dataset == "chem" { "12(a)" } else { "13(a)" };
    println!("== Figure {figure}: index construction time ({dataset}) ==");
    let sizes: Vec<usize> = [2000, 4000, 6000, 8000, 10_000]
        .iter()
        .map(|&n| opts.scale.n(n))
        .collect();
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for n in sizes {
        let db = match dataset {
            "chem" => chem_db(opts, n),
            _ => synthetic_db(opts, n, 5).0,
        };
        let (tp, t_tp, gi, t_gi) = build_both(&db);
        rows.push(vec![
            n.to_string(),
            format!("{:.2}", t_tp / 1e3),
            format!("{:.2}", t_gi / 1e3),
            tp.feature_count().to_string(),
            gi.feature_count().to_string(),
        ]);
        csv.push(format!(
            "{n},{t_tp:.1},{t_gi:.1},{},{}",
            tp.feature_count(),
            gi.feature_count()
        ));
    }
    print_table(
        &[
            "N",
            "treepi s",
            "gindex s",
            "treepi features",
            "gindex features",
        ],
        &rows,
    );
    write_csv(
        opts,
        &format!("fig_construction_{dataset}.csv"),
        "n,treepi_build_ms,gindex_build_ms,treepi_features,gindex_features",
        &csv,
    );
}

/// Build scaling: TreePi construction wall time vs worker threads on one
/// fixed database per dataset. Every run also checks that the built index
/// serializes to the same bytes as the 1-thread build — the speedup column
/// is only meaningful because the output is provably identical.
pub fn buildscale(opts: &Opts, dataset: &str) {
    println!("== build scaling: TreePi construction vs threads ({dataset}) ==");
    let n = opts.scale.n(4000);
    let db = match dataset {
        "chem" => chem_db(opts, n),
        _ => synthetic_db(opts, n, 5).0,
    };
    let save_bytes = |idx: &TreePiIndex| -> Vec<u8> {
        let mut out = Vec::new();
        idx.save(&mut out).expect("in-memory save");
        out
    };
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut base_ms = 0.0f64;
    let mut base_bytes: Vec<u8> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (idx, t) =
            timed(|| TreePiIndex::build_with_threads(db.clone(), TreePiParams::default(), threads));
        let t = ms(t);
        let bytes = save_bytes(&idx);
        let identical = if threads == 1 {
            base_ms = t;
            base_bytes = bytes;
            true
        } else {
            bytes == base_bytes
        };
        assert!(identical, "parallel build diverged at {threads} threads");
        let speedup = base_ms / t;
        rows.push(vec![
            threads.to_string(),
            format!("{:.1}", t),
            format!("{:.2}", speedup),
            idx.feature_count().to_string(),
            "yes".to_string(),
        ]);
        csv.push(format!(
            "{dataset},{n},{threads},{t:.1},{speedup:.3},{}",
            idx.feature_count()
        ));
    }
    print_table(
        &["threads", "build ms", "speedup", "features", "bytes=1t"],
        &rows,
    );
    write_csv(
        opts,
        &format!("build_scaling_{dataset}.csv"),
        "dataset,n,threads,build_ms,speedup,features",
        &csv,
    );
}

/// Figures 12(b)/13(b): query processing time vs query edge size.
pub fn fig_query_time(opts: &Opts, dataset: &str) {
    let figure = if dataset == "chem" { "12(b)" } else { "13(b)" };
    println!("== Figure {figure}: query processing time ({dataset}) ==");
    let (db, m_values, paper_queries): (Vec<Graph>, Vec<usize>, usize) = match dataset {
        "chem" => (
            chem_db(opts, opts.scale.n(6_000)),
            vec![4, 8, 12, 16, 20, 24],
            1000,
        ),
        _ => (
            synthetic_db(opts, opts.scale.n(8_000), 5).0,
            vec![4, 8, 12, 16],
            500,
        ),
    };
    let (tp, _, gi, _) = build_both(&db);
    let per_size = opts.scale.queries(paper_queries);
    let mut rng = rng_for(opts, "figquery");
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut breakdown_queries: Option<Vec<Graph>> = None;
    for &m in &m_values {
        let queries = extract_queries(&db, m, per_size, &mut rng);
        // The breakdown below runs on the largest query size, where the
        // per-stage split is most pronounced.
        breakdown_queries = Some(queries.clone());
        let (answers_tp, t_tp) = timed(|| {
            queries
                .iter()
                .map(|q| tp.query(q, &mut rng).matches.len())
                .sum::<usize>()
        });
        let (answers_gi, t_gi) = timed(|| {
            queries
                .iter()
                .map(|q| gi.query(q).matches.len())
                .sum::<usize>()
        });
        assert_eq!(answers_tp, answers_gi, "systems disagree at m={m}");
        // Parallel series: the batch engine at full available parallelism.
        // The per-query RNG streams differ from the sequential loop above,
        // but randomization only affects partition choice, never the answer
        // set — so the totals must agree.
        let (answers_par, t_par) = timed(|| {
            let (results, _) =
                tp.query_batch(&queries, QueryOptions::default(), 0, opts.seed ^ m as u64);
            results.iter().map(|r| r.matches.len()).sum::<usize>()
        });
        assert_eq!(
            answers_tp, answers_par,
            "parallel engine disagrees at m={m}"
        );
        let k = queries.len() as f64;
        let (tp_ms, par_ms, gi_ms) = (ms(t_tp) / k, ms(t_par) / k, ms(t_gi) / k);
        rows.push(vec![
            m.to_string(),
            format!("{tp_ms:.2}"),
            format!("{par_ms:.2}"),
            format!("{gi_ms:.2}"),
            format!("{:.2}", gi_ms / tp_ms),
        ]);
        csv.push(format!("{m},{tp_ms:.3},{par_ms:.3},{gi_ms:.3}"));
    }
    print_table(
        &[
            "|q|",
            "treepi ms/q",
            "treepi par ms/q",
            "gindex ms/q",
            "speedup",
        ],
        &rows,
    );
    write_csv(
        opts,
        &format!("fig_query_{dataset}.csv"),
        "m,treepi_ms_per_query,treepi_par_ms_per_query,gindex_ms_per_query",
        &csv,
    );
    if let Some(queries) = &breakdown_queries {
        stage_breakdown(opts, dataset, &tp, &gi, queries, opts.seed ^ 0x5747);
    }
}

/// Ablations called out in DESIGN.md: contribution of each pipeline stage
/// and sensitivity to δ and γ.
pub fn ablate(opts: &Opts) {
    println!("== Ablations (not in the paper; DESIGN.md table `tab-ablate`) ==");
    let n = opts.scale.n(4_000);
    let db = chem_db(opts, n);
    let tp = TreePiIndex::build(db.clone(), TreePiParams::default());
    let per_size = opts.scale.queries(400);
    let mut rng = rng_for(opts, "ablate");
    let mut queries = extract_queries(&db, 8, per_size, &mut rng);
    queries.extend(extract_queries(&db, 16, per_size, &mut rng));

    let configs: Vec<(&str, QueryOptions)> = vec![
        ("full pipeline", QueryOptions::default()),
        (
            "no CDC pruning",
            QueryOptions {
                use_cdc: false,
                ..QueryOptions::default()
            },
        ),
        (
            "naive verification",
            QueryOptions {
                use_reconstruction: false,
                ..QueryOptions::default()
            },
        ),
        (
            "SF = partition only",
            QueryOptions {
                sf_mode: SfMode::PartitionOnly,
                ..QueryOptions::default()
            },
        ),
        (
            "delta = 1",
            QueryOptions {
                delta_override: Some(1),
                ..QueryOptions::default()
            },
        ),
    ];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut reference: Option<Vec<usize>> = None;
    for (name, cfg) in configs {
        let mut filtered = 0usize;
        let mut pruned = 0usize;
        let mut answers: Vec<usize> = Vec::new();
        let (_, t) = timed(|| {
            for q in &queries {
                let r = tp.query_with(q, cfg, &mut rng);
                filtered += r.stats.filtered;
                pruned += r.stats.pruned;
                answers.push(r.stats.answers);
            }
        });
        match &reference {
            None => reference = Some(answers),
            Some(r) => assert_eq!(r, &answers, "ablation '{name}' changed answers"),
        }
        let k = queries.len() as f64;
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", filtered as f64 / k),
            format!("{:.1}", pruned as f64 / k),
            format!("{:.2}", ms(t) / k),
        ]);
        csv.push(format!(
            "{name},{:.2},{:.2},{:.3}",
            filtered as f64 / k,
            pruned as f64 / k,
            ms(t) / k
        ));
    }
    print_table(
        &["configuration", "avg |Pq|", "avg |P'q|", "ms/query"],
        &rows,
    );
    write_csv(
        opts,
        "ablate_pipeline.csv",
        "config,avg_pq,avg_ppq,ms_per_query",
        &csv,
    );

    // γ sweep: index size and filtering strength trade-off (§4.1.2).
    println!("-- shrinking parameter γ sweep --");
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for gamma in [0.5, 1.0, 1.5, 2.0, 3.0] {
        let params = TreePiParams {
            gamma,
            ..TreePiParams::default()
        };
        let (idx, t_build) = timed(|| TreePiIndex::build(db.clone(), params));
        let mut pruned = 0usize;
        for q in &queries {
            pruned += idx.query(q, &mut rng).stats.pruned;
        }
        rows.push(vec![
            format!("{gamma:.1}"),
            idx.feature_count().to_string(),
            format!("{}", idx.memory_estimate() / 1024),
            format!("{:.1}", pruned as f64 / queries.len() as f64),
            format!("{:.1}", ms(t_build) / 1e3),
        ]);
        csv.push(format!(
            "{gamma},{},{},{:.2},{:.1}",
            idx.feature_count(),
            idx.memory_estimate() / 1024,
            pruned as f64 / queries.len() as f64,
            ms(t_build)
        ));
    }
    print_table(
        &["gamma", "features", "mem KiB", "avg |P'q|", "build s"],
        &rows,
    );
    write_csv(
        opts,
        "ablate_gamma.csv",
        "gamma,features,mem_kib,avg_ppq,build_ms",
        &csv,
    );
}

/// Feature-class comparison (the paper's §1 argument in one table): paths
/// (GraphGrep) vs frequent subtrees (TreePi) vs frequent subgraphs
/// (gIndex) on the same database and query mix.
pub fn classes(opts: &Opts) {
    println!("== Feature classes: paths vs trees vs graphs ==");
    let n = opts.scale.n(4_000);
    let db = chem_db(opts, n);
    let (tp, t_tp) = timed(|| TreePiIndex::build(db.clone(), TreePiParams::default()));
    let (gi, t_gi) = timed(|| GIndex::build(db.clone(), GIndexParams::paper_default(n)));
    let (pg, t_pg) =
        timed(|| pathgrep::PathGrep::build(db.clone(), pathgrep::PathGrepParams::default()));
    println!(
        "index sizes: pathgrep {} paths ({:.1}s), treepi {} trees ({:.1}s), gindex {} graphs ({:.1}s)",
        pg.feature_count(),
        ms(t_pg) / 1e3,
        tp.feature_count(),
        ms(t_tp) / 1e3,
        gi.feature_count(),
        ms(t_gi) / 1e3,
    );
    let per_size = opts.scale.queries(300);
    let mut rng = rng_for(opts, "classes");
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for m in [4usize, 8, 12, 16] {
        let queries = extract_queries(&db, m, per_size, &mut rng);
        let (mut f_pg, mut f_tp, mut f_gi, mut dq) = (0usize, 0usize, 0usize, 0usize);
        let mut t_pgq = std::time::Duration::ZERO;
        let mut t_tpq = std::time::Duration::ZERO;
        let mut t_giq = std::time::Duration::ZERO;
        for q in &queries {
            let (r, t) = timed(|| pg.query(q));
            f_pg += r.stats.filtered;
            t_pgq += t;
            let answers = r.matches.len();
            let (r, t) = timed(|| tp.query(q, &mut rng));
            f_tp += r.stats.pruned;
            t_tpq += t;
            assert_eq!(r.matches.len(), answers);
            let (r, t) = timed(|| gi.query(q));
            f_gi += r.stats.filtered;
            t_giq += t;
            assert_eq!(r.matches.len(), answers);
            dq += answers;
        }
        let k = queries.len() as f64;
        rows.push(vec![
            m.to_string(),
            format!("{:.1}", f_pg as f64 / k),
            format!("{:.1}", f_tp as f64 / k),
            format!("{:.1}", f_gi as f64 / k),
            format!("{:.1}", dq as f64 / k),
            format!("{:.2}", ms(t_pgq) / k),
            format!("{:.2}", ms(t_tpq) / k),
            format!("{:.2}", ms(t_giq) / k),
        ]);
        csv.push(format!(
            "{m},{:.2},{:.2},{:.2},{:.2},{:.3},{:.3},{:.3}",
            f_pg as f64 / k,
            f_tp as f64 / k,
            f_gi as f64 / k,
            dq as f64 / k,
            ms(t_pgq) / k,
            ms(t_tpq) / k,
            ms(t_giq) / k
        ));
    }
    print_table(
        &[
            "|q|",
            "paths cand",
            "trees |P'q|",
            "graphs |Cq|",
            "|Dq|",
            "paths ms",
            "trees ms",
            "graphs ms",
        ],
        &rows,
    );
    write_csv(
        opts,
        "feature_classes.csv",
        "m,path_cand,tree_ppq,graph_cq,dq,path_ms,tree_ms,graph_ms",
        &csv,
    );
}

/// Dataset summaries (the paper's §6 dataset descriptions, recomputed for
/// the surrogates actually used).
pub fn datasets(opts: &Opts) {
    println!("== Dataset statistics ==");
    let chem = chem_db(opts, opts.scale.n(10_000));
    let (syn4, name4) = synthetic_db(opts, opts.scale.n(8_000), 4);
    let (syn40, name40) = synthetic_db(opts, opts.scale.n(8_000), 40);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (name, db) in [
        ("AIDS surrogate".to_string(), &chem),
        (name4, &syn4),
        (name40, &syn40),
    ] {
        let s = graph_core::db_stats(db);
        rows.push(vec![
            name.clone(),
            s.graphs.to_string(),
            format!("{:.1}", s.mean_vertices),
            format!("{:.1}", s.mean_edges),
            format!("{:.2}", s.mean_degree),
            s.vertex_labels.to_string(),
            s.edge_labels.to_string(),
            format!("{:.2}", s.tree_fraction),
            format!("{:.2}", s.mean_cycles),
        ]);
        csv.push(format!(
            "{name},{},{:.2},{:.2},{:.3},{},{},{:.3},{:.3}",
            s.graphs,
            s.mean_vertices,
            s.mean_edges,
            s.mean_degree,
            s.vertex_labels,
            s.edge_labels,
            s.tree_fraction,
            s.mean_cycles
        ));
    }
    print_table(
        &[
            "dataset",
            "graphs",
            "|V|",
            "|E|",
            "deg",
            "vlabels",
            "elabels",
            "tree frac",
            "cycles",
        ],
        &rows,
    );
    write_csv(
        opts,
        "datasets.csv",
        "dataset,graphs,mean_v,mean_e,mean_degree,vlabels,elabels,tree_fraction,mean_cycles",
        &csv,
    );
}
