//! Filtering by support-set intersection (paper Algorithm 1).
//!
//! `P_q = ⋂_{t ∈ SF_q} D_t`: a graph can only contain the query if it
//! contains every feature subtree of the query.

use crate::index::TreePiIndex;
use crate::trie::FeatureId;
use graph_core::Graph;
use mining::{intersect_many, SupportSet};
use std::ops::ControlFlow;

/// Enumerate the indexed feature subtrees of `q` (paper §1: "we enumerate
/// the frequent subtrees in q and identify the graphs in the database which
/// contain those subtrees").
///
/// Every connected acyclic edge subset of `q` up to the index's η is
/// canonicalized (polynomial time — the reason trees were chosen) and
/// looked up in the trie; distinct hits form `SF_q`. Returns `None` if a
/// single edge of `q` is not a feature, which proves the support is empty
/// (σ(1) = 1 indexes every edge the database contains).
pub fn enumerate_query_features(index: &TreePiIndex, q: &Graph) -> Option<Vec<FeatureId>> {
    let eta = index.params().sigma.eta;
    let mut sf: Vec<FeatureId> = Vec::new();
    let mut missing_edge = false;
    let _ = graph_core::for_each_subtree_edge_subset(q, eta, |edges| {
        let sub = graph_core::edge_subgraph(q, edges);
        let tree =
            tree_core::Tree::from_graph(sub.graph).expect("subtree enumeration yields trees");
        let canon = tree_core::canonical_string(&tree);
        match index.feature_by_canon(&canon) {
            Some(fid) => sf.push(fid),
            None if edges.len() == 1 => {
                missing_edge = true;
                return ControlFlow::Break(());
            }
            None => {}
        }
        ControlFlow::Continue(())
    });
    if missing_edge {
        return None;
    }
    sf.sort_unstable();
    sf.dedup();
    Some(sf)
}

/// Intersect the support sets of the given features (Algorithm 1). The
/// result is restricted to active graphs and sorted.
pub fn filter(index: &TreePiIndex, sf: &[FeatureId]) -> SupportSet {
    let sets: Vec<&[u32]> = sf
        .iter()
        .map(|&f| index.feature(f).support.as_slice())
        .collect();
    let mut pq = intersect_many(&sets, index.db().len());
    pq.retain(|&gid| index.is_active(gid));
    pq
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TreePiParams;
    use graph_core::graph_from;
    use tree_core::canonical_string;

    fn index() -> TreePiIndex {
        let db = vec![
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
        ];
        TreePiIndex::build(db, TreePiParams::quick())
    }

    fn fid_of(idx: &TreePiIndex, vlabels: &[u32], edges: &[(u32, u32, u32)]) -> FeatureId {
        let t = tree_core::tree_from(vlabels, edges);
        idx.feature_by_canon(&canonical_string(&t))
            .expect("feature")
    }

    #[test]
    fn empty_sf_yields_all_active() {
        let idx = index();
        assert_eq!(filter(&idx, &[]), vec![0, 1, 2]);
    }

    #[test]
    fn single_feature_yields_its_support() {
        let idx = index();
        // the 2-edge tree 1–0–1 (edge labels 0 and 1) only fits graph 2,
        // whose star has two distinct label-1 leaves
        let f = fid_of(&idx, &[1, 0, 1], &[(0, 1, 0), (1, 2, 1)]);
        assert_eq!(filter(&idx, &[f]), vec![2]);
    }

    #[test]
    fn intersection_of_two_features() {
        let idx = index();
        let aa = fid_of(&idx, &[0, 0], &[(0, 1, 0)]); // graphs 0,1,2
        let ab1 = fid_of(&idx, &[0, 1], &[(0, 1, 1)]); // graphs 0,2
        let got = filter(&idx, &[aa, ab1]);
        assert_eq!(got, vec![0, 2]);
    }

    #[test]
    fn filter_excludes_removed_graphs() {
        let mut idx = index();
        idx.remove(0);
        let aa = fid_of(&idx, &[0, 0], &[(0, 1, 0)]);
        assert_eq!(filter(&idx, &[aa]), vec![1, 2]);
    }
}
