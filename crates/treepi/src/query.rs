//! The full TreePi query pipeline (paper §3, "Query Processing"):
//! partition → filter → signature kill → center-distance prune →
//! reconstruction verify, with per-stage statistics (the quantities
//! plotted in Figures 10–13). The signature stage sits before CDC
//! because it is the cheapest per-candidate check in the funnel: a
//! candidate it kills never pays for distance oracles or reconstruction.

use crate::filter::filter;
use crate::index::TreePiIndex;
use crate::partition::{partition_runs_with, PartitionRuns};
use crate::prune::{center_prune_pool_obs, center_prune_threaded_obs, query_center_distances};
use crate::sig;
use crate::verify::{verify_all_pool_obs, verify_all_threaded_obs};
use graph_core::par::Pool;
use graph_core::Graph;
use rand::Rng;
use std::time::{Duration, Instant};

/// Minimum candidate-set size before a query's prune/verify stages are
/// split across workers. Below this, per-candidate work is too small to
/// amortize the dispatch; see DESIGN.md ("Parallel query engine").
pub const INTRA_PAR_THRESHOLD: usize = 64;

/// How a query's intra-stage parallelism is dispatched. Both variants carry
/// a worker budget and produce bit-identical results; only the execution
/// substrate differs.
pub(crate) enum Par<'p> {
    /// Spawn scoped threads per stage (the legacy reference path).
    Scoped(usize),
    /// Dispatch stage chunks as seats on a persistent [`Pool`] — possibly
    /// re-entrantly, when the query itself runs on a pool seat.
    Pool(&'p Pool, usize),
}

impl Par<'_> {
    fn budget(&self) -> usize {
        match *self {
            Par::Scoped(n) | Par::Pool(_, n) => n.max(1),
        }
    }
}

/// How the filter set `SF_q` is assembled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SfMode {
    /// Enumerate every indexed subtree of `q` (paper §1) — the default and
    /// strongest filter.
    FullEnumeration,
    /// Only the parts produced by the δ partition runs (cheaper, weaker;
    /// an ablation point).
    PartitionOnly,
}

/// Ablation switches (used by the `ablate` experiment; the defaults are the
/// full paper pipeline).
#[derive(Clone, Copy, Debug)]
pub struct QueryOptions {
    /// Filter-set construction policy.
    pub sf_mode: SfMode,
    /// Apply Center Distance Constraint pruning (Algorithm 2). Off = filter
    /// only, like gIndex's candidate generation.
    pub use_cdc: bool,
    /// Verify by reconstruction from stored centers (Algorithm 3). Off =
    /// naive VF2 subgraph isomorphism per candidate, like gIndex.
    pub use_reconstruction: bool,
    /// Kill candidates whose vertex signatures cannot host the query
    /// before CDC pruning and verification run (see [`crate::sig`]).
    /// Sound — the filter only discards non-answers — so turning it off
    /// is purely an ablation/debugging aid.
    pub use_sig_filter: bool,
    /// Override the index's δ (partition run count); `None` keeps the
    /// configured policy.
    pub delta_override: Option<usize>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            sf_mode: SfMode::FullEnumeration,
            use_cdc: true,
            use_reconstruction: true,
            use_sig_filter: true,
            delta_override: None,
        }
    }
}

/// Per-query statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryStats {
    /// Parts in the minimum partition `TP_q`.
    pub partition_size: usize,
    /// Distinct features in the filter set `SF_q`.
    pub sf_size: usize,
    /// `|P_q|` — candidates after filtering (gIndex's `|C_q|` analogue).
    pub filtered: usize,
    /// `|P'_q|` — candidates after Center Distance pruning.
    pub pruned: usize,
    /// Filter survivors killed by the neighborhood-signature stage before
    /// CDC pruning and verification ran.
    pub sig_killed: usize,
    /// `|D_q|` — the exact answer count.
    pub answers: usize,
    /// The query contained an edge that is not a feature (empty support
    /// proven without touching the database).
    pub missing_feature: bool,
    /// Time in the partition stage.
    pub t_partition: Duration,
    /// Time in the filter stage.
    pub t_filter: Duration,
    /// Time in the prune stage.
    pub t_prune: Duration,
    /// Time in the signature kill stage.
    pub t_sig: Duration,
    /// Time in the verify stage.
    pub t_verify: Duration,
}

impl QueryStats {
    /// Total processing time.
    pub fn total(&self) -> Duration {
        self.t_partition + self.t_filter + self.t_prune + self.t_sig + self.t_verify
    }

    /// Record this query's funnel counters and stage timings into `shard`.
    ///
    /// All five pipeline spans ([`obs::names::PIPELINE_SPANS`]) are observed
    /// unconditionally — short-circuited queries (feature-tree shortcut,
    /// missing feature) contribute zero-duration observations — so a metrics
    /// snapshot always carries the full stage breakdown. Everything recorded
    /// here is a pure function of the query outcome, so batch totals are
    /// bit-identical at any thread count.
    pub fn record_into(&self, shard: &obs::Shard) {
        shard.add(obs::names::QUERIES, 1);
        shard.add(obs::names::FILTERED, self.filtered as u64);
        shard.add(obs::names::PRUNED, self.pruned as u64);
        shard.add(obs::names::SIG_KILLED, self.sig_killed as u64);
        shard.add(obs::names::ANSWERS, self.answers as u64);
        shard.add(obs::names::MISSING_FEATURE, self.missing_feature as u64);
        shard.add("funnel.partition_parts", self.partition_size as u64);
        shard.add("funnel.sf_features", self.sf_size as u64);
        shard.observe(obs::names::SPAN_PARTITION, self.t_partition);
        shard.observe(obs::names::SPAN_FILTER, self.t_filter);
        shard.observe(obs::names::SPAN_SIG_FILTER, self.t_sig);
        shard.observe(obs::names::SPAN_PRUNE, self.t_prune);
        shard.observe(obs::names::SPAN_VERIFY, self.t_verify);
    }

    /// Emit the five stage intervals as trace timeline events, anchored to
    /// `end` — the instant the query finished. The stages run back-to-back
    /// (partition → filter → sig-filter → prune → verify), so their start
    /// offsets are reconstructed backwards from `end` without instrumenting
    /// the hot `query_impl` internals. A no-op unless `shard` is tracing.
    pub fn trace_into(&self, shard: &obs::Shard, end: std::time::Instant) {
        if !shard.is_tracing() {
            return;
        }
        let verify_start = end - self.t_verify;
        let prune_start = verify_start - self.t_prune;
        let sig_start = prune_start - self.t_sig;
        let filter_start = sig_start - self.t_filter;
        let partition_start = filter_start - self.t_partition;
        shard.trace_complete(
            obs::names::SPAN_PARTITION,
            partition_start,
            self.t_partition,
        );
        shard.trace_complete(obs::names::SPAN_FILTER, filter_start, self.t_filter);
        shard.trace_complete(obs::names::SPAN_SIG_FILTER, sig_start, self.t_sig);
        shard.trace_complete(obs::names::SPAN_PRUNE, prune_start, self.t_prune);
        shard.trace_complete(obs::names::SPAN_VERIFY, verify_start, self.t_verify);
    }
}

/// Result of a TreePi query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Sorted ids of the graphs containing the query (`D_q`).
    pub matches: Vec<u32>,
    /// Stage statistics.
    pub stats: QueryStats,
}

impl TreePiIndex {
    /// Answer the containment query `q` (paper §3): all active database
    /// graphs of which `q` is a subgraph.
    pub fn query<R: Rng>(&self, q: &Graph, rng: &mut R) -> QueryResult {
        self.query_with(q, QueryOptions::default(), rng)
    }

    /// [`Self::query`] with ablation switches.
    pub fn query_with<R: Rng>(&self, q: &Graph, opts: QueryOptions, rng: &mut R) -> QueryResult {
        self.query_with_threads(q, opts, rng, 1)
    }

    /// [`Self::query_with`] with intra-query candidate parallelism: when a
    /// stage's candidate set reaches [`INTRA_PAR_THRESHOLD`], CDC pruning
    /// and reconstruction verification are split across up to `threads`
    /// workers. Results are identical at any thread count — candidates are
    /// chunked in order and neither stage consumes randomness.
    pub fn query_with_threads<R: Rng>(
        &self,
        q: &Graph,
        opts: QueryOptions,
        rng: &mut R,
        threads: usize,
    ) -> QueryResult {
        self.query_with_threads_obs(q, opts, rng, threads, &obs::Shard::disabled())
    }

    /// [`Self::query_with_threads`] recording stage spans and funnel
    /// counters into `shard` (see [`QueryStats::record_into`] for the
    /// determinism contract). With a disabled shard every record is a single
    /// predicted branch, so the uninstrumented entry points cost nothing.
    pub fn query_with_threads_obs<R: Rng>(
        &self,
        q: &Graph,
        opts: QueryOptions,
        rng: &mut R,
        threads: usize,
        shard: &obs::Shard,
    ) -> QueryResult {
        let r = self.query_impl(q, opts, rng, Par::Scoped(threads), shard);
        r.stats.record_into(shard);
        r.stats.trace_into(shard, std::time::Instant::now());
        r
    }

    /// [`Self::query_with_threads_obs`] with intra-query stages dispatched
    /// on a persistent [`Pool`] (up to `intra` seats per stage) instead of
    /// freshly spawned scoped threads. Safe to call from inside a pool seat
    /// — the batch engine does exactly that — because [`Pool::run`] lets the
    /// dispatcher claim its own job's seats. Results are bit-identical to
    /// the scoped and serial paths at any `intra`/pool size.
    pub fn query_with_pool_obs<R: Rng>(
        &self,
        q: &Graph,
        opts: QueryOptions,
        rng: &mut R,
        pool: &Pool,
        intra: usize,
        shard: &obs::Shard,
    ) -> QueryResult {
        let r = self.query_impl(q, opts, rng, Par::Pool(pool, intra), shard);
        r.stats.record_into(shard);
        r.stats.trace_into(shard, std::time::Instant::now());
        r
    }

    fn query_impl<R: Rng>(
        &self,
        q: &Graph,
        opts: QueryOptions,
        rng: &mut R,
        par: Par<'_>,
        shard: &obs::Shard,
    ) -> QueryResult {
        assert!(q.edge_count() > 0, "queries must have at least one edge");
        let mut stats = QueryStats::default();

        // ---- Feature-tree shortcut (§5.1: RP first checks whether q
        // itself "is a feature tree in the index list"). Its stored
        // support set *is* the exact answer. ----
        let t = Instant::now();
        // Only tree-shaped queries (connected ⇒ exactly n-1 edges) can be
        // feature trees; checking the counts first avoids cloning the query
        // graph on every cyclic query just to have `from_graph` reject it.
        let tree_shaped = q.edge_count() + 1 == q.vertex_count();
        if let Some(qt) = tree_shaped
            .then(|| tree_core::Tree::from_graph(q.clone()).ok())
            .flatten()
        {
            if let Some(fid) = self.feature_by_canon(&tree_core::canonical_string(&qt)) {
                let matches: Vec<u32> = self
                    .feature(fid)
                    .support
                    .iter()
                    .copied()
                    .filter(|&gid| self.is_active(gid))
                    .collect();
                stats.t_partition = t.elapsed();
                stats.partition_size = 1;
                stats.sf_size = 1;
                stats.filtered = matches.len();
                stats.pruned = matches.len();
                stats.answers = matches.len();
                return QueryResult { matches, stats };
            }
        }

        // ---- Partition (δ randomized runs) ----
        let delta = opts
            .delta_override
            .unwrap_or_else(|| self.params().delta.resolve(q.edge_count()));
        // Under FullEnumeration the partition-run SF_q is replaced below, so
        // don't collect it at all.
        let collect_sf = opts.sf_mode == SfMode::PartitionOnly;
        let runs = partition_runs_with(q, self, delta, rng, collect_sf);
        let (parts, mut sf) = match runs {
            PartitionRuns::MissingFeature(_) => {
                stats.t_partition = t.elapsed();
                stats.missing_feature = true;
                return QueryResult {
                    matches: Vec::new(),
                    stats,
                };
            }
            PartitionRuns::Ok { min_partition, sf } => (min_partition, sf),
        };
        if opts.sf_mode == SfMode::FullEnumeration {
            match crate::filter::enumerate_query_features(self, q) {
                Some(full) => sf = full,
                None => {
                    stats.t_partition = t.elapsed();
                    stats.missing_feature = true;
                    return QueryResult {
                        matches: Vec::new(),
                        stats,
                    };
                }
            }
        }
        stats.t_partition = t.elapsed();
        stats.partition_size = parts.len();
        stats.sf_size = sf.len();

        // ---- Filter (Algorithm 1) ----
        let t = Instant::now();
        let pq = filter(self, &sf);
        stats.t_filter = t.elapsed();
        stats.filtered = pq.len();

        // Intra-query parallelism only pays off on large candidate sets.
        let budget = par.budget();
        let stage_threads = |candidates: usize| {
            if candidates >= INTRA_PAR_THRESHOLD {
                budget
            } else {
                1
            }
        };

        // ---- Signature kill (pre-prune) ----
        // A candidate lacking a signature-compatible host vertex for some
        // query vertex cannot contain q (see `crate::sig` for the
        // soundness argument) — discard it before CDC distance oracles or
        // reconstruction ever touch it. O(|q| × |g|) branch-free word
        // compares per candidate, versus BFS runs and a search.
        let t = Instant::now();
        let pq = if opts.use_sig_filter {
            let qsigs = sig::graph_sigs(q);
            let before = pq.len();
            let kept: Vec<u32> = pq
                .into_iter()
                .filter(|&gid| sig::graph_compatible(&qsigs, self.vertex_sigs(gid)))
                .collect();
            stats.sig_killed = before - kept.len();
            kept
        } else {
            pq
        };
        stats.t_sig = t.elapsed();

        // ---- Prune (Algorithm 2) ----
        let t = Instant::now();
        let dq = query_center_distances(q, &parts);
        let pruned = if opts.use_cdc {
            match par {
                Par::Scoped(_) => center_prune_threaded_obs(
                    self,
                    q,
                    &pq,
                    &parts,
                    &dq,
                    stage_threads(pq.len()),
                    shard,
                ),
                Par::Pool(pool, _) => center_prune_pool_obs(
                    self,
                    q,
                    &pq,
                    &parts,
                    &dq,
                    pool,
                    stage_threads(pq.len()),
                    shard,
                ),
            }
        } else {
            pq
        };
        stats.t_prune = t.elapsed();
        stats.pruned = pruned.len();

        // ---- Verify (Algorithm 3) ----
        let t = Instant::now();
        let matches = if opts.use_reconstruction {
            match par {
                Par::Scoped(_) => verify_all_threaded_obs(
                    self,
                    q,
                    &pruned,
                    &parts,
                    &dq,
                    stage_threads(pruned.len()),
                    shard,
                ),
                Par::Pool(pool, _) => verify_all_pool_obs(
                    self,
                    q,
                    &pruned,
                    &parts,
                    &dq,
                    pool,
                    stage_threads(pruned.len()),
                    shard,
                ),
            }
        } else {
            pruned
                .into_iter()
                .filter(|&gid| {
                    graph_core::is_subgraph_isomorphic_obs(q, &self.db()[gid as usize], shard)
                })
                .collect()
        };
        stats.t_verify = t.elapsed();
        stats.answers = matches.len();

        QueryResult { matches, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TreePiParams;
    use crate::verify::scan_support;
    use graph_core::graph_from;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn index() -> TreePiIndex {
        let db = vec![
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1), (2, 3, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
            graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
        ];
        TreePiIndex::build(db, TreePiParams::quick())
    }

    #[test]
    fn query_matches_oracle_and_stats_are_consistent() {
        let idx = index();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let queries = vec![
            graph_from(&[0, 0], &[(0, 1, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
        ];
        for q in &queries {
            let r = idx.query(q, &mut rng);
            assert_eq!(r.matches, scan_support(&idx, q));
            let s = &r.stats;
            assert!(s.partition_size >= 1);
            assert!(s.sf_size >= 1);
            // the funnel only narrows
            assert!(s.filtered - s.sig_killed >= s.pruned);
            assert!(s.pruned >= s.answers);
            assert_eq!(s.answers, r.matches.len());
            assert!(!s.missing_feature);
        }
    }

    #[test]
    fn missing_feature_short_circuits() {
        let idx = index();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let q = graph_from(&[42, 42], &[(0, 1, 0)]);
        let r = idx.query(&q, &mut rng);
        assert!(r.matches.is_empty());
        assert!(r.stats.missing_feature);
        assert_eq!(r.stats.filtered, 0);
    }

    #[test]
    fn ablations_preserve_correctness() {
        let idx = index();
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]);
        let truth = scan_support(&idx, &q);
        for (cdc, recon) in [(true, true), (true, false), (false, true), (false, false)] {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            let r = idx.query_with(
                &q,
                QueryOptions {
                    use_cdc: cdc,
                    use_reconstruction: recon,
                    ..QueryOptions::default()
                },
                &mut rng,
            );
            assert_eq!(r.matches, truth, "cdc={cdc} recon={recon}");
        }
    }

    #[test]
    fn cdc_prunes_at_least_as_hard_as_filter() {
        let idx = index();
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let with = idx.query(&q, &mut rng);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let without = idx.query_with(
            &q,
            QueryOptions {
                use_cdc: false,
                ..QueryOptions::default()
            },
            &mut rng,
        );
        assert!(with.stats.pruned <= without.stats.pruned);
        assert_eq!(with.matches, without.matches);
    }

    #[test]
    fn sig_filter_preserves_answers_and_reports_kills() {
        let idx = index();
        let queries = [
            graph_from(&[0, 0], &[(0, 1, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]),
            graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
        ];
        for (i, q) in queries.iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(13 + i as u64);
            let on = idx.query(q, &mut rng);
            let mut rng = ChaCha8Rng::seed_from_u64(13 + i as u64);
            let off = idx.query_with(
                q,
                QueryOptions {
                    use_sig_filter: false,
                    ..QueryOptions::default()
                },
                &mut rng,
            );
            assert_eq!(
                on.matches, off.matches,
                "query {i}: sig filter changed answers"
            );
            assert_eq!(off.stats.sig_killed, 0, "filter off must report no kills");
            assert_eq!(
                on.stats.filtered, off.stats.filtered,
                "the kill stage must not change the upstream funnel"
            );
            assert!(on.stats.filtered - on.stats.sig_killed >= on.stats.pruned);
            assert!(on.stats.pruned >= on.stats.answers);
        }
    }

    #[test]
    fn delta_override_controls_partition_runs() {
        let idx = index();
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let r = idx.query_with(
            &q,
            QueryOptions {
                delta_override: Some(1),
                ..QueryOptions::default()
            },
            &mut rng,
        );
        assert_eq!(r.matches, scan_support(&idx, &q));
    }

    #[test]
    fn query_after_insert_and_remove() {
        let mut idx = index();
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
        let g_new = graph_from(&[0, 0, 1, 0], &[(0, 1, 0), (1, 2, 0), (2, 3, 0)]);
        let gid = idx.insert(g_new);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let r = idx.query(&q, &mut rng);
        assert!(r.matches.contains(&gid), "inserted graph must be found");
        assert_eq!(r.matches, scan_support(&idx, &q));
        idx.remove(gid);
        idx.remove(1);
        let r2 = idx.query(&q, &mut rng);
        assert!(!r2.matches.contains(&gid));
        assert!(!r2.matches.contains(&1));
        assert_eq!(r2.matches, scan_support(&idx, &q));
    }
}
