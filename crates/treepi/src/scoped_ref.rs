//! Scoped-thread reference implementation of the batch engine.
//!
//! This is the pre-pool serving path — one `std::thread::scope` spawn per
//! batch, scoped spawns per intra-query stage — kept as the equivalence
//! baseline: `tests/pool_prop.rs` pins [`crate::Engine`] output against
//! [`query_batch_scoped_obs`] property-by-property, and
//! `bench/query_parallel` reports a pooled-vs-scoped series. It shares the
//! per-query RNG derivation, the atomic-cursor scheduling, and the chunked
//! stage discipline with the pool path, so the two are bit-identical; only
//! the thread lifecycle differs (spawn/join per batch here, persistent
//! parked workers there).

use crate::engine::{query_rng, resolve_threads};
use crate::index::TreePiIndex;
use crate::query::{QueryOptions, QueryResult};
use crate::workload::{summarize, WorkloadSummary};
use graph_core::Graph;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// [`TreePiIndex::query_batch_obs`] semantics on freshly spawned scoped
/// threads (spawn/join per batch) instead of a persistent pool.
pub fn query_batch_scoped_obs(
    index: &TreePiIndex,
    queries: &[Graph],
    opts: QueryOptions,
    threads: usize,
    seed: u64,
    registry: &obs::Registry,
) -> (Vec<QueryResult>, WorkloadSummary) {
    let threads = resolve_threads(threads);
    let intra = if queries.is_empty() || queries.len() >= threads {
        1
    } else {
        threads / queries.len()
    };
    let results: Vec<QueryResult> = if threads == 1 || queries.len() <= 1 {
        let shard = registry.shard();
        let results = {
            let _wall = shard.span("engine.worker_wall");
            let results: Vec<QueryResult> = queries
                .iter()
                .enumerate()
                .map(|(i, q)| {
                    shard.set_trace_query(Some(i as u64));
                    let _busy = shard.span("engine.worker_busy");
                    index.query_with_threads_obs(q, opts, &mut query_rng(seed, i), threads, &shard)
                })
                .collect();
            shard.set_trace_query(None);
            results
        };
        shard.add("engine.workers", 1);
        shard.add("engine.queries", queries.len() as u64);
        registry.absorb(shard);
        results
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<QueryResult>>> =
            queries.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            let workers = threads.min(queries.len());
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let slots = &slots;
                    let shard = registry.shard();
                    s.spawn(move || {
                        let mut served = 0u64;
                        {
                            let _wall = shard.span("engine.worker_wall");
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= queries.len() {
                                    break;
                                }
                                let r = {
                                    shard.set_trace_query(Some(i as u64));
                                    let _busy = shard.span("engine.worker_busy");
                                    index.query_with_threads_obs(
                                        &queries[i],
                                        opts,
                                        &mut query_rng(seed, i),
                                        intra,
                                        &shard,
                                    )
                                };
                                served += 1;
                                *slots[i].lock().expect("slot") = Some(r);
                            }
                            shard.set_trace_query(None);
                        }
                        shard.add("engine.workers", 1);
                        shard.add("engine.queries", served);
                        shard
                    })
                })
                .collect();
            for h in handles {
                registry.absorb(h.join().expect("batch worker panicked"));
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("slot").expect("every query ran"))
            .collect()
    };
    let stats: Vec<_> = results.iter().map(|r| r.stats).collect();
    let summary = summarize(&stats);
    (results, summary)
}

/// [`query_batch_scoped_obs`] without metrics.
pub fn query_batch_scoped(
    index: &TreePiIndex,
    queries: &[Graph],
    opts: QueryOptions,
    threads: usize,
    seed: u64,
) -> (Vec<QueryResult>, WorkloadSummary) {
    query_batch_scoped_obs(
        index,
        queries,
        opts,
        threads,
        seed,
        &obs::Registry::disabled(),
    )
}
