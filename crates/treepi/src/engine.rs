//! Parallel batch query engine on a persistent worker pool.
//!
//! [`Engine`] is the long-lived serving front: an index plus one
//! [`graph_core::par::Pool`] whose workers are spawned once and reused
//! across every batch ([`Engine::query_batch`]). The convenience
//! [`TreePiIndex::query_batch`] entry points build a transient pool per
//! call — identical results, just without the reuse.
//!
//! The determinism contract (see DESIGN.md, "Parallel query engine"):
//!
//! - every query gets its own RNG, [`query_rng`]`(seed, i)`, derived only
//!   from the batch seed and the query's position — never from which worker
//!   runs it or in what order;
//! - the pipeline's parallel stages (CDC prune, reconstruction verify)
//!   chunk candidates contiguously and concatenate chunk results in order,
//!   and neither consumes randomness.
//!
//! Together these make batch results bit-identical for any pool size,
//! including 1 — verified by unit tests here, property tests in
//! `tests/prop.rs` and `tests/pool_prop.rs` (which also pin equality
//! against the scoped reference path in [`crate::scoped_ref`]).
//!
//! Scheduling is work-stealing-lite: seats pull the next query index from
//! a shared atomic counter, so long-running queries don't stall a statically
//! assigned chunk. When the batch is smaller than the pool, leftover
//! workers are instead spent *inside* queries (intra-query candidate
//! parallelism, [`crate::query::INTRA_PAR_THRESHOLD`]) — those stages
//! dispatch re-entrantly into the same pool.

use crate::index::TreePiIndex;
use crate::query::{QueryOptions, QueryResult};
use crate::workload::{summarize, WorkloadSummary};
use graph_core::par::Pool;
use graph_core::Graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The per-query deterministic RNG: position `i` of a batch with `seed`.
///
/// The seed and index are mixed through splitmix64-style finalization so
/// neighboring queries get unrelated streams (plain `seed + i` would hand
/// query `i` of seed `s` the same stream as query `i+1` of seed `s-1`).
pub fn query_rng(seed: u64, i: usize) -> ChaCha8Rng {
    let mut z = seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    ChaCha8Rng::seed_from_u64(z ^ (z >> 31))
}

/// Resolve a `threads` argument: `0` means all available parallelism.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

impl TreePiIndex {
    /// Answer a batch of containment queries on a pool of `threads` workers
    /// (`0` = available parallelism), returning per-query results in query
    /// order plus an aggregated [`WorkloadSummary`] (tail percentiles are
    /// computed over the merged per-query stats, so nothing is lost to
    /// per-thread pre-aggregation).
    ///
    /// Results are bit-identical for any `threads` value: query `i` always
    /// runs with [`query_rng`]`(seed, i)`.
    pub fn query_batch(
        &self,
        queries: &[Graph],
        opts: QueryOptions,
        threads: usize,
        seed: u64,
    ) -> (Vec<QueryResult>, WorkloadSummary) {
        self.query_batch_obs(queries, opts, threads, seed, &obs::Registry::disabled())
    }

    /// [`Self::query_batch`] recording metrics into `registry`.
    ///
    /// Each worker records into its own [`obs::Shard`] — no lock is touched
    /// on the query path — and the shards are absorbed into the registry
    /// only when the worker retires. Pipeline spans and `funnel.*` counters
    /// are pure functions of the per-query outcomes, so their totals are
    /// bit-identical for any `threads`. The `engine.*` namespace
    /// (workers spawned, queries served per worker, busy vs wall time)
    /// describes the execution shape and is explicitly excluded from the
    /// determinism contract ([`obs::MetricSet::deterministic_counters`]).
    pub fn query_batch_obs(
        &self,
        queries: &[Graph],
        opts: QueryOptions,
        threads: usize,
        seed: u64,
        registry: &obs::Registry,
    ) -> (Vec<QueryResult>, WorkloadSummary) {
        let pool = Pool::new(resolve_threads(threads));
        batch_on_pool(self, queries, opts, &pool, seed, registry)
    }
}

/// The shared batch implementation: fan `queries` across the pool's seats,
/// each seat pulling indices off an atomic cursor into order-indexed result
/// slots. Used by both [`Engine::query_batch_obs`] (persistent pool) and
/// [`TreePiIndex::query_batch_obs`] (transient pool).
fn batch_on_pool(
    index: &TreePiIndex,
    queries: &[Graph],
    opts: QueryOptions,
    pool: &Pool,
    seed: u64,
    registry: &obs::Registry,
) -> (Vec<QueryResult>, WorkloadSummary) {
    let threads = pool.parallelism();
    // Spend the pool across queries first; only when the batch can't
    // occupy it do queries get intra-candidate workers.
    let intra = if queries.is_empty() || queries.len() >= threads {
        1
    } else {
        threads / queries.len()
    };
    let results: Vec<QueryResult> = if threads == 1 || queries.len() <= 1 {
        let shard = registry.shard();
        let results = {
            let _wall = shard.span("engine.worker_wall");
            let results: Vec<QueryResult> = queries
                .iter()
                .enumerate()
                .map(|(i, q)| {
                    shard.set_trace_query(Some(i as u64));
                    let _busy = shard.span("engine.worker_busy");
                    index.query_with_pool_obs(
                        q,
                        opts,
                        &mut query_rng(seed, i),
                        pool,
                        threads,
                        &shard,
                    )
                })
                .collect();
            shard.set_trace_query(None);
            results
        };
        shard.add("engine.workers", 1);
        shard.add("engine.queries", queries.len() as u64);
        registry.absorb(shard);
        results
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<QueryResult>>> =
            queries.iter().map(|_| Mutex::new(None)).collect();
        let workers = threads.min(queries.len());
        pool.run(workers, |_seat| {
            let shard = registry.shard();
            let mut served = 0u64;
            {
                let _wall = shard.span("engine.worker_wall");
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    let r = {
                        shard.set_trace_query(Some(i as u64));
                        let _busy = shard.span("engine.worker_busy");
                        index.query_with_pool_obs(
                            &queries[i],
                            opts,
                            &mut query_rng(seed, i),
                            pool,
                            intra,
                            &shard,
                        )
                    };
                    served += 1;
                    *slots[i].lock().expect("slot") = Some(r);
                }
                shard.set_trace_query(None);
            }
            shard.add("engine.workers", 1);
            shard.add("engine.queries", served);
            registry.absorb(shard);
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("slot").expect("every query ran"))
            .collect()
    };
    // Batch-end delta of the pool's scheduling metrics (pool.* namespace,
    // exempt from the determinism contract like engine.*).
    let shard = registry.shard();
    pool.flush_metrics(&shard);
    registry.absorb(shard);
    let stats: Vec<_> = results.iter().map(|r| r.stats).collect();
    let summary = summarize(&stats);
    (results, summary)
}

/// A queued §7.1 maintenance operation (see [`Engine::queue_insert`] /
/// [`Engine::queue_remove`]).
#[derive(Clone)]
enum PendingOp {
    Insert(Graph),
    Remove(u32),
}

/// Pending-write state guarded by one mutex: the op queue, the shadow view
/// that answers "what gid will this insert get" / "is this gid active"
/// before the ops are applied, and the background re-mine handshake.
struct MaintState {
    /// Queued ops not yet folded into a snapshot.
    queue: Vec<PendingOp>,
    /// Active-state overrides for queued ops (gid → active after queue).
    overlay: FxHashMap<u32, bool>,
    /// The gid the next queued insert receives (snapshot len + queued
    /// inserts — [`TreePiIndex::insert`] appends, so ids are predictable).
    next_gid: u32,
    /// §7.1 ops applied since the last re-mine (trigger accumulator).
    repairs_since_mine: u64,
    /// Snapshot handed to the re-mine thread, not yet picked up.
    remine_request: Option<Arc<TreePiIndex>>,
    /// The re-mine thread is between pickup and publish.
    remine_inflight: bool,
    /// Ops applied while a re-mine was pending/in flight — replayed onto
    /// the re-mined index before it is published.
    journal: Vec<PendingOp>,
    /// Completed re-mine reports awaiting [`Engine::drain_remine_reports`].
    completed: Vec<RemineReport>,
    /// Tells the re-mine thread to exit.
    shutdown: bool,
}

/// Monotonic `maint.*` counters (lock-free reads for STATS snapshots).
#[derive(Default)]
struct MaintCounters {
    queued: AtomicU64,
    applied: AtomicU64,
    apply_batches: AtomicU64,
    snapshot_swaps: AtomicU64,
    remine_triggers: AtomicU64,
    remines_completed: AtomicU64,
}

/// State shared between the engine handle and its re-mine thread.
struct EngineShared {
    /// The published snapshot. Readers pin it by cloning the `Arc` (the
    /// lock is held only for the pointer copy — never across a query);
    /// writers install a successor built off to the side.
    current: Mutex<Arc<TreePiIndex>>,
    pool: Pool,
    maint: Mutex<MaintState>,
    /// Signals the re-mine thread (new request / shutdown) and anyone in
    /// [`Engine::wait_remine_idle`] (request picked up / published).
    remine_cv: Condvar,
    counters: MaintCounters,
    /// Re-mine trigger: re-mine after this many applied §7.1 ops
    /// (`0` = never).
    remine_threshold: u64,
}

/// What [`Engine::apply_pending`] did: the epoch of the published
/// snapshot, how many ops it folded in, and how long the clone-apply-swap
/// took (recorded as the `maint.apply` span by the serving layer).
#[derive(Clone, Copy, Debug)]
pub struct ApplyOutcome {
    /// Maintenance epoch of the newly published snapshot.
    pub epoch: u64,
    /// Number of queued ops folded into this snapshot.
    pub ops: usize,
    /// Wall time of the clone + apply + swap.
    pub duration: Duration,
}

/// A completed background re-mine (see [`Engine::drain_remine_reports`]).
#[derive(Clone, Copy, Debug)]
pub struct RemineReport {
    /// Wall time of the re-mine build (excluding journal replay).
    pub duration: Duration,
    /// Feature count of the published index.
    pub features: usize,
    /// Epoch the re-mined snapshot was published under.
    pub epoch: u64,
    /// Ops applied concurrently with the re-mine and replayed onto it.
    pub replayed: usize,
}

/// A point-in-time copy of the engine's maintenance counters/gauges,
/// surfaced as `maint.*` metrics by the serving layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintStats {
    /// Ops accepted by [`Engine::queue_insert`] / [`Engine::queue_remove`].
    pub queued: u64,
    /// Ops folded into snapshots by [`Engine::apply_pending`].
    pub applied: u64,
    /// Apply batches (snapshots built by `apply_pending`).
    pub apply_batches: u64,
    /// Total snapshot publications (apply batches + re-mine swaps).
    pub snapshot_swaps: u64,
    /// Background re-mines triggered.
    pub remine_triggers: u64,
    /// Background re-mines published.
    pub remines_completed: u64,
    /// Ops currently queued (gauge).
    pub pending: u64,
    /// §7.1 ops applied since the last re-mine trigger (gauge).
    pub repairs_since_mine: u64,
}

/// A long-lived serving engine: a copy-on-write snapshot of a
/// [`TreePiIndex`] plus one persistent worker [`Pool`] reused across every
/// batch, so serving pays thread spawn/join once per process instead of
/// once per batch. Construction of the answer is identical to
/// [`TreePiIndex::query_batch`] — bit-identical results at any pool size,
/// per the determinism contract in this module's docs.
///
/// # Concurrent maintenance (§7.1 under load)
///
/// The index lives behind an atomically swapped `Arc<TreePiIndex>`:
///
/// - **Readers never block.** [`Engine::query_batch`] pins the current
///   snapshot ([`Engine::pin`]) and runs the whole batch against it; a
///   swap mid-batch retires the old version only when its last pin drops.
/// - **Writes are queued, then batched.** [`Engine::queue_insert`] /
///   [`Engine::queue_remove`] record the op and answer immediately from a
///   shadow view (assigned gid / was-active), touching no index state.
///   [`Engine::apply_pending`] folds *all* queued ops into one cloned
///   successor and publishes it with a single swap — N queued mutations
///   cost one copy, not N.
/// - **Staleness-triggered re-mine.** Applied §7.1 repairs accumulate;
///   past `remine_threshold` a background thread re-mines the feature set
///   from the current snapshot on the engine's own pool
///   ([`TreePiIndex::remine_with_pool`] — gid-stable, unlike
///   [`TreePiIndex::rebuild`]), replays ops that landed meanwhile, and
///   swaps the result in under a fresh epoch. Queries keep dispatching
///   onto the same pool throughout — the pool's queue accepts concurrent
///   dispatchers, so the re-mine consumes idle seats rather than blocking
///   the batch path.
///
/// Every publication bumps [`TreePiIndex::maintenance_epoch`] past the
/// previous snapshot's, so epoch-keyed result caches (the `serve` crate)
/// keep invalidating correctly across both apply batches and re-mines.
pub struct Engine {
    shared: Arc<EngineShared>,
    remine_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("parallelism", &self.shared.pool.parallelism())
            .field("remine_threshold", &self.shared.remine_threshold)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Wrap `index` with a pool of `threads` workers (`0` = available
    /// parallelism). The pool threads are spawned here and live until the
    /// engine is dropped. Background re-mining is disabled; see
    /// [`Engine::with_remine`].
    pub fn new(index: TreePiIndex, threads: usize) -> Self {
        Self::with_remine(index, threads, 0)
    }

    /// [`Engine::new`] with staleness-triggered background re-mining:
    /// after `remine_threshold` applied §7.1 ops (`0` = never), a
    /// dedicated thread re-mines the feature set on the engine's pool and
    /// swaps the result in (see the type-level docs).
    pub fn with_remine(index: TreePiIndex, threads: usize, remine_threshold: u64) -> Self {
        let next_gid = index.db().len() as u32;
        let shared = Arc::new(EngineShared {
            current: Mutex::new(Arc::new(index)),
            pool: Pool::new(resolve_threads(threads)),
            maint: Mutex::new(MaintState {
                queue: Vec::new(),
                overlay: FxHashMap::default(),
                next_gid,
                repairs_since_mine: 0,
                remine_request: None,
                remine_inflight: false,
                journal: Vec::new(),
                completed: Vec::new(),
                shutdown: false,
            }),
            remine_cv: Condvar::new(),
            counters: MaintCounters::default(),
            remine_threshold,
        });
        let remine_thread = (remine_threshold > 0).then(|| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("treepi-remine".into())
                .spawn(move || remine_loop(&shared))
                .expect("spawn re-mine thread")
        });
        Engine {
            shared,
            remine_thread,
        }
    }

    /// Pin the currently published snapshot. The returned `Arc` keeps that
    /// version alive (and its answers consistent) for as long as the
    /// caller holds it, regardless of concurrent applies or re-mines.
    pub fn pin(&self) -> Arc<TreePiIndex> {
        self.shared.current.lock().expect("engine snapshot").clone()
    }

    /// The currently published snapshot ([`Engine::pin`] under its
    /// historical name — callers read through the `Arc`).
    pub fn index(&self) -> Arc<TreePiIndex> {
        self.pin()
    }

    /// Queue a §7.1 insert. Returns the gid the graph **will** occupy once
    /// applied — assigned immediately from the shadow view, so callers can
    /// answer before any snapshot is built. The op becomes visible to
    /// queries after the next [`Engine::apply_pending`].
    pub fn queue_insert(&self, g: Graph) -> u32 {
        let mut m = self.shared.maint.lock().expect("maint state");
        let gid = m.next_gid;
        m.next_gid += 1;
        m.overlay.insert(gid, true);
        m.queue.push(PendingOp::Insert(g));
        self.shared.counters.queued.fetch_add(1, Ordering::Relaxed);
        gid
    }

    /// Queue a §7.1 remove. Returns whether `gid` is active in the shadow
    /// view (published snapshot + queued ops); inactive gids are not
    /// queued (the op would be a no-op).
    pub fn queue_remove(&self, gid: u32) -> bool {
        let mut m = self.shared.maint.lock().expect("maint state");
        let was_active = match m.overlay.get(&gid) {
            Some(&b) => b,
            None => self.pin().is_active(gid),
        };
        if !was_active {
            return false;
        }
        m.overlay.insert(gid, false);
        m.queue.push(PendingOp::Remove(gid));
        self.shared.counters.queued.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Number of queued, not-yet-applied ops.
    pub fn pending_len(&self) -> usize {
        self.shared.maint.lock().expect("maint state").queue.len()
    }

    /// Whether any queued op awaits [`Engine::apply_pending`].
    pub fn has_pending(&self) -> bool {
        self.pending_len() > 0
    }

    /// Fold every queued op into one successor snapshot and publish it:
    /// clone the current index once, apply the ops in queue order, swap
    /// the `Arc`. Readers pinned to the old snapshot are unaffected; new
    /// pins see all queued ops at once (never a prefix — the swap is the
    /// only publication point). Returns `None` when the queue was empty.
    pub fn apply_pending(&self) -> Option<ApplyOutcome> {
        let mut m = self.shared.maint.lock().expect("maint state");
        if m.queue.is_empty() {
            return None;
        }
        let t0 = Instant::now();
        let ops = std::mem::take(&mut m.queue);
        m.overlay.clear();
        if m.remine_request.is_some() || m.remine_inflight {
            m.journal.extend(ops.iter().cloned());
        }
        let n = ops.len();
        let mut next = (*self.pin()).clone();
        for op in ops {
            match op {
                PendingOp::Insert(g) => {
                    next.insert(g);
                }
                PendingOp::Remove(gid) => {
                    next.remove(gid);
                }
            }
        }
        debug_assert_eq!(next.db().len() as u32, m.next_gid);
        let epoch = next.maintenance_epoch();
        *self.shared.current.lock().expect("engine snapshot") = Arc::new(next);
        m.repairs_since_mine += n as u64;
        let c = &self.shared.counters;
        c.applied.fetch_add(n as u64, Ordering::Relaxed);
        c.apply_batches.fetch_add(1, Ordering::Relaxed);
        c.snapshot_swaps.fetch_add(1, Ordering::Relaxed);
        if self.shared.remine_threshold > 0
            && m.repairs_since_mine >= self.shared.remine_threshold
            && m.remine_request.is_none()
            && !m.remine_inflight
        {
            m.remine_request = Some(self.pin());
            m.repairs_since_mine = 0;
            c.remine_triggers.fetch_add(1, Ordering::Relaxed);
            self.shared.remine_cv.notify_all();
        }
        Some(ApplyOutcome {
            epoch,
            ops: n,
            duration: t0.elapsed(),
        })
    }

    /// Insert a graph through the running engine: queue + apply in one
    /// step ([`TreePiIndex::insert`], §7.1). Returns the new graph id; the
    /// maintenance epoch is bumped so result caches keyed on
    /// [`Engine::epoch`] invalidate before the next request. Batching
    /// callers use [`Engine::queue_insert`] + [`Engine::apply_pending`].
    pub fn insert(&self, g: Graph) -> u32 {
        let gid = self.queue_insert(g);
        self.apply_pending();
        gid
    }

    /// Remove graph `gid` through the running engine: queue + apply in one
    /// step ([`TreePiIndex::remove`], §7.1). Returns whether the graph was
    /// active; on `true` the maintenance epoch is bumped.
    pub fn remove(&self, gid: u32) -> bool {
        let queued = self.queue_remove(gid);
        if queued {
            self.apply_pending();
        }
        queued
    }

    /// The published snapshot's maintenance epoch — the cache-invalidation
    /// version number (see [`TreePiIndex::maintenance_epoch`]). Queued but
    /// unapplied ops are not reflected; apply first when answering on
    /// their behalf.
    pub fn epoch(&self) -> u64 {
        self.pin().maintenance_epoch()
    }

    /// A point-in-time copy of the `maint.*` counters and gauges.
    pub fn maint_stats(&self) -> MaintStats {
        let c = &self.shared.counters;
        let m = self.shared.maint.lock().expect("maint state");
        MaintStats {
            queued: c.queued.load(Ordering::Relaxed),
            applied: c.applied.load(Ordering::Relaxed),
            apply_batches: c.apply_batches.load(Ordering::Relaxed),
            snapshot_swaps: c.snapshot_swaps.load(Ordering::Relaxed),
            remine_triggers: c.remine_triggers.load(Ordering::Relaxed),
            remines_completed: c.remines_completed.load(Ordering::Relaxed),
            pending: m.queue.len() as u64,
            repairs_since_mine: m.repairs_since_mine,
        }
    }

    /// Drain reports of background re-mines published since the last
    /// drain (the serving layer turns them into `maint.remine` spans).
    pub fn drain_remine_reports(&self) -> Vec<RemineReport> {
        std::mem::take(&mut self.shared.maint.lock().expect("maint state").completed)
    }

    /// Block until no re-mine is requested or in flight. Test/teardown
    /// helper — the serving path never calls this.
    pub fn wait_remine_idle(&self) {
        let mut m = self.shared.maint.lock().expect("maint state");
        while m.remine_request.is_some() || m.remine_inflight {
            m = self.shared.remine_cv.wait(m).expect("maint state");
        }
    }

    /// Recover the index, dropping the pool: applies queued ops, waits for
    /// any in-flight re-mine to publish, and unwraps the final snapshot.
    pub fn into_index(mut self) -> TreePiIndex {
        self.apply_pending();
        self.wait_remine_idle();
        self.stop_remine_thread();
        let placeholder = TreePiIndex::empty_like(self.pin().params().clone());
        let snapshot = {
            let mut cur = self.shared.current.lock().expect("engine snapshot");
            std::mem::replace(&mut *cur, Arc::new(placeholder))
        };
        drop(self);
        Arc::try_unwrap(snapshot).unwrap_or_else(|arc| (*arc).clone())
    }

    fn stop_remine_thread(&mut self) {
        if let Some(handle) = self.remine_thread.take() {
            self.shared.maint.lock().expect("maint state").shutdown = true;
            self.shared.remine_cv.notify_all();
            let _ = handle.join();
        }
    }

    /// The engine's worker pool (shared with index builds via
    /// [`TreePiIndex::build_with_pool_obs`] if desired).
    pub fn pool(&self) -> &Pool {
        &self.shared.pool
    }

    /// The pool's worker count.
    pub fn parallelism(&self) -> usize {
        self.shared.pool.parallelism()
    }

    /// [`TreePiIndex::query_batch`] on the engine's persistent pool,
    /// against a pinned snapshot.
    pub fn query_batch(
        &self,
        queries: &[Graph],
        opts: QueryOptions,
        seed: u64,
    ) -> (Vec<QueryResult>, WorkloadSummary) {
        self.query_batch_obs(queries, opts, seed, &obs::Registry::disabled())
    }

    /// [`TreePiIndex::query_batch_obs`] on the engine's persistent pool,
    /// against a pinned snapshot.
    pub fn query_batch_obs(
        &self,
        queries: &[Graph],
        opts: QueryOptions,
        seed: u64,
        registry: &obs::Registry,
    ) -> (Vec<QueryResult>, WorkloadSummary) {
        let (results, summary, _) = self.query_batch_pinned(queries, opts, seed, registry);
        (results, summary)
    }

    /// [`Engine::query_batch_obs`] additionally reporting the epoch of the
    /// snapshot the whole batch ran against — the consistency witness used
    /// by the serving layer (cache admission) and the concurrency tests.
    pub fn query_batch_pinned(
        &self,
        queries: &[Graph],
        opts: QueryOptions,
        seed: u64,
        registry: &obs::Registry,
    ) -> (Vec<QueryResult>, WorkloadSummary, u64) {
        let snapshot = self.pin();
        let (results, summary) =
            batch_on_pool(&snapshot, queries, opts, &self.shared.pool, seed, registry);
        (results, summary, snapshot.maintenance_epoch())
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.stop_remine_thread();
    }
}

/// Body of the `treepi-remine` thread: wait for a snapshot request,
/// re-mine it on the shared pool (queries keep dispatching concurrently —
/// the pool queue accepts multiple dispatchers), replay ops applied in the
/// meantime, and publish under an epoch past the live one.
fn remine_loop(shared: &EngineShared) {
    loop {
        let snapshot = {
            let mut m = shared.maint.lock().expect("maint state");
            loop {
                if m.shutdown {
                    return;
                }
                if let Some(s) = m.remine_request.take() {
                    m.remine_inflight = true;
                    break s;
                }
                m = shared.remine_cv.wait(m).expect("maint state");
            }
        };
        let t0 = Instant::now();
        let remined = snapshot.remine_with_pool(&shared.pool);
        let duration = t0.elapsed();
        let mut m = shared.maint.lock().expect("maint state");
        let mut idx = remined;
        let replayed = m.journal.len();
        for op in m.journal.drain(..) {
            match op {
                PendingOp::Insert(g) => {
                    idx.insert(g);
                }
                PendingOp::Remove(gid) => {
                    idx.remove(gid);
                }
            }
        }
        // Publish past the live epoch: replay bumps may still trail the
        // epochs the live applies reached, and caches require monotonicity.
        let mut cur = shared.current.lock().expect("engine snapshot");
        let epoch = cur.maintenance_epoch().max(idx.maintenance_epoch()) + 1;
        idx.maintenance_epoch = epoch;
        m.completed.push(RemineReport {
            duration,
            features: idx.feature_count(),
            epoch,
            replayed,
        });
        *cur = Arc::new(idx);
        drop(cur);
        shared
            .counters
            .snapshot_swaps
            .fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .remines_completed
            .fetch_add(1, Ordering::Relaxed);
        m.remine_inflight = false;
        shared.remine_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TreePiParams;
    use crate::verify::scan_support;
    use graph_core::graph_from;

    fn index() -> TreePiIndex {
        let db = vec![
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1), (2, 3, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
            graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
            graph_from(&[0, 1], &[(0, 1, 1)]),
        ];
        TreePiIndex::build(db, TreePiParams::quick())
    }

    fn queries() -> Vec<Graph> {
        vec![
            graph_from(&[0, 0], &[(0, 1, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
            graph_from(&[9, 9], &[(0, 1, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]),
        ]
    }

    #[test]
    fn batch_matches_oracle() {
        let idx = index();
        let qs = queries();
        let (results, summary) = idx.query_batch(&qs, QueryOptions::default(), 4, 2007);
        assert_eq!(results.len(), qs.len());
        assert_eq!(summary.queries, qs.len());
        for (q, r) in qs.iter().zip(&results) {
            assert_eq!(r.matches, scan_support(&idx, q));
        }
        assert_eq!(summary.missing_feature, 1);
    }

    #[test]
    fn identical_across_thread_counts() {
        let idx = index();
        let qs = queries();
        let (base, base_sum) = idx.query_batch(&qs, QueryOptions::default(), 1, 42);
        for threads in [2, 3, 8] {
            let (r, sum) = idx.query_batch(&qs, QueryOptions::default(), threads, 42);
            for (i, (a, b)) in base.iter().zip(&r).enumerate() {
                assert_eq!(
                    a.matches, b.matches,
                    "matches differ at query {i}, threads {threads}"
                );
                assert_eq!(
                    a.stats.filtered, b.stats.filtered,
                    "query {i}, threads {threads}"
                );
                assert_eq!(
                    a.stats.pruned, b.stats.pruned,
                    "query {i}, threads {threads}"
                );
                assert_eq!(
                    a.stats.partition_size, b.stats.partition_size,
                    "query {i}, threads {threads}"
                );
            }
            assert_eq!(sum.queries, base_sum.queries);
            assert_eq!(sum.missing_feature, base_sum.missing_feature);
        }
    }

    #[test]
    fn batch_equals_sequential_queries_with_same_rng() {
        let idx = index();
        let qs = queries();
        let seed = 7u64;
        let (batch, _) = idx.query_batch(&qs, QueryOptions::default(), 8, seed);
        for (i, q) in qs.iter().enumerate() {
            let seq = idx.query_with(q, QueryOptions::default(), &mut query_rng(seed, i));
            assert_eq!(batch[i].matches, seq.matches, "query {i}");
            assert_eq!(batch[i].stats.pruned, seq.stats.pruned, "query {i}");
        }
    }

    #[test]
    fn empty_batch() {
        let idx = index();
        let (results, summary) = idx.query_batch(&[], QueryOptions::default(), 4, 0);
        assert!(results.is_empty());
        assert_eq!(summary.queries, 0);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        let idx = index();
        let qs = queries();
        let (r0, _) = idx.query_batch(&qs, QueryOptions::default(), 0, 5);
        let (r1, _) = idx.query_batch(&qs, QueryOptions::default(), 1, 5);
        for (a, b) in r0.iter().zip(&r1) {
            assert_eq!(a.matches, b.matches);
        }
    }

    #[test]
    fn obs_funnel_reconciles_and_is_thread_invariant() {
        let idx = index();
        let qs = queries();
        let run = |threads: usize| {
            let reg = obs::Registry::new();
            let (results, _) = idx.query_batch_obs(&qs, QueryOptions::default(), threads, 42, &reg);
            (results, reg.drain())
        };
        let (base_r, base_m) = run(1);
        if !obs::COMPILED_IN {
            return;
        }
        // Counters reconcile exactly with the per-query stats.
        assert_eq!(base_m.counter(obs::names::QUERIES), qs.len() as u64);
        type Field = fn(&crate::QueryStats) -> usize;
        let fields: [(&str, Field); 3] = [
            (obs::names::FILTERED, |s| s.filtered),
            (obs::names::PRUNED, |s| s.pruned),
            (obs::names::ANSWERS, |s| s.answers),
        ];
        for (name, field) in fields {
            let total: u64 = base_r.iter().map(|r| field(&r.stats) as u64).sum();
            assert_eq!(base_m.counter(name), total, "{name}");
        }
        // All four pipeline spans observed once per query.
        for name in obs::names::PIPELINE_SPANS {
            let span = base_m.span(name).expect("pipeline span present");
            assert_eq!(span.count, qs.len() as u64, "{name}");
        }
        // Everything outside engine.* is bit-identical at any thread count.
        for threads in [2, 8] {
            let (_, m) = run(threads);
            assert_eq!(
                m.deterministic_counters(),
                base_m.deterministic_counters(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn tracing_batch_emits_stage_timeline_per_query() {
        if !obs::COMPILED_IN {
            return;
        }
        let idx = index();
        let qs = queries();
        for threads in [1usize, 3] {
            let reg = obs::Registry::with_tracing();
            let (_, _) = idx.query_batch_obs(&qs, QueryOptions::default(), threads, 42, &reg);
            let events = reg.drain_trace();
            // Every query contributes its four pipeline stages, tagged with
            // its batch position.
            for name in obs::names::PIPELINE_SPANS {
                let ids: std::collections::BTreeSet<u64> = events
                    .iter()
                    .filter(|e| e.name == name)
                    .filter_map(|e| e.query)
                    .collect();
                assert_eq!(
                    ids,
                    (0..qs.len() as u64).collect(),
                    "{name} missing queries (threads={threads})"
                );
            }
            // Worker spans are present and the wall span carries no query id.
            assert!(events.iter().any(|e| e.name == "engine.worker_busy"));
            let wall = events
                .iter()
                .find(|e| e.name == "engine.worker_wall")
                .expect("wall span traced");
            assert_eq!(wall.query, None);
            // Stage events nest inside the batch: no start beyond the wall end.
            let wall_end = wall.start_ns + wall.dur_ns;
            for e in &events {
                assert!(e.start_ns <= wall_end.max(e.start_ns));
            }
            // Metrics unaffected by tracing.
            let m = reg.drain();
            assert_eq!(m.counter(obs::names::QUERIES), qs.len() as u64);
        }
        // Non-tracing registry produces no events for the same batch.
        let reg = obs::Registry::new();
        let _ = idx.query_batch_obs(&qs, QueryOptions::default(), 2, 42, &reg);
        assert!(reg.drain_trace().is_empty());
    }

    #[test]
    fn engine_reuses_pool_and_matches_transient_batches() {
        let idx = index();
        let qs = queries();
        let (base, base_sum) = idx.query_batch(&qs, QueryOptions::default(), 1, 42);
        for threads in [1usize, 2, 8] {
            let engine = Engine::new(index(), threads);
            assert_eq!(engine.parallelism(), threads);
            // Several batches on the same pool: results stay identical.
            for _ in 0..3 {
                let (r, sum) = engine.query_batch(&qs, QueryOptions::default(), 42);
                for (a, b) in base.iter().zip(&r) {
                    assert_eq!(a.matches, b.matches, "threads {threads}");
                    assert_eq!(a.stats.pruned, b.stats.pruned, "threads {threads}");
                }
                assert_eq!(sum.queries, base_sum.queries);
            }
            let recovered = engine.into_index();
            assert_eq!(recovered.db().len(), index().db().len());
        }
    }

    #[test]
    fn engine_obs_flushes_pool_metrics() {
        if !obs::COMPILED_IN {
            return;
        }
        let engine = Engine::new(index(), 2);
        let reg = obs::Registry::new();
        let (_, _) = engine.query_batch_obs(&queries(), QueryOptions::default(), 7, &reg);
        let m = reg.drain();
        assert!(m.counter("pool.tasks") >= 1, "batch dispatch counted");
        // pool.* is outside the determinism contract.
        assert!(!m.deterministic_counters().contains_key("pool.tasks"));
    }

    #[test]
    fn engine_maintenance_bumps_epoch_and_changes_answers() {
        let engine = Engine::new(index(), 2);
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
        let (before, _) = engine.query_batch(std::slice::from_ref(&q), QueryOptions::default(), 9);
        let e0 = engine.epoch();

        // A cache keyed on the epoch would hold `before`; the insert must
        // bump the epoch AND the fresh answer must include the new graph.
        let gid = engine.insert(graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]));
        assert!(engine.epoch() > e0, "insert must bump the epoch");
        let (after, _) = engine.query_batch(std::slice::from_ref(&q), QueryOptions::default(), 9);
        assert!(after[0].matches.contains(&gid));
        assert_ne!(before[0].matches, after[0].matches);
        assert_eq!(after[0].matches, scan_support(&engine.index(), &q));

        // Remove through the engine: epoch bumps again, answer reverts.
        let e1 = engine.epoch();
        assert!(engine.remove(gid));
        assert!(engine.epoch() > e1, "remove must bump the epoch");
        let (reverted, _) =
            engine.query_batch(std::slice::from_ref(&q), QueryOptions::default(), 9);
        assert_eq!(reverted[0].matches, before[0].matches);
    }

    #[test]
    fn serving_path_insert_registers_novel_edge_feature() {
        // σ(1) = 1 under maintenance: a graph inserted through the running
        // engine whose edge (labels 7-7, edge label 3) exists nowhere in
        // the database must become queryable — the single-edge tree is
        // registered as a fresh feature, so the query is answered by real
        // support intersection, not a stale MissingFeature short-circuit.
        let engine = Engine::new(index(), 2);
        let q = graph_from(&[7, 7], &[(0, 1, 3)]);
        let (miss, _) = engine.query_batch(std::slice::from_ref(&q), QueryOptions::default(), 3);
        assert!(miss[0].matches.is_empty());
        assert!(miss[0].stats.missing_feature, "edge unknown before insert");

        let gid = engine.insert(graph_from(&[7, 7, 0], &[(0, 1, 3), (1, 2, 0)]));
        let (hit, _) = engine.query_batch(std::slice::from_ref(&q), QueryOptions::default(), 3);
        assert!(
            !hit[0].stats.missing_feature,
            "novel edge must be a feature after the insert"
        );
        assert_eq!(hit[0].matches, vec![gid]);
        assert_eq!(hit[0].matches, scan_support(&engine.index(), &q));
    }

    #[test]
    fn queued_ops_batch_into_one_snapshot() {
        let engine = Engine::new(index(), 2);
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
        let e0 = engine.epoch();
        let g = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
        let g1 = engine.queue_insert(g.clone());
        let g2 = engine.queue_insert(g);
        assert_eq!(g2, g1 + 1, "gids assigned in queue order");
        assert!(
            engine.queue_remove(g1),
            "queued insert visible to the shadow view"
        );
        assert!(!engine.queue_remove(g1), "second remove is a no-op");
        assert_eq!(engine.pending_len(), 3);
        assert_eq!(engine.epoch(), e0, "nothing published before apply");

        let out = engine.apply_pending().expect("ops queued");
        assert_eq!(out.ops, 3);
        assert!(out.epoch > e0);
        let stats = engine.maint_stats();
        assert_eq!(stats.queued, 3);
        assert_eq!(stats.applied, 3);
        assert_eq!(stats.apply_batches, 1, "one snapshot for three ops");
        assert_eq!(stats.snapshot_swaps, 1);
        assert_eq!(stats.pending, 0);
        // Net effect visible atomically: g2 in, g1 never observable.
        let (r, _) = engine.query_batch(std::slice::from_ref(&q), QueryOptions::default(), 1);
        assert!(r[0].matches.contains(&g2));
        assert!(!r[0].matches.contains(&g1));
        assert_eq!(r[0].matches, scan_support(&engine.index(), &q));
        assert!(engine.apply_pending().is_none(), "queue drained");
    }

    #[test]
    fn signatures_stay_consistent_through_maintenance_and_remine() {
        // The sigs invariant (`sigs[gid] == sig::graph_sigs(&db[gid])`) must
        // survive every §7.1 maintenance path: queued inserts/removes, the
        // batched apply, and a background re-mine publishing mid-stream.
        let engine = Engine::with_remine(index(), 2, 3);
        assert!(engine.index().sigs_consistent());
        let g1 = engine.queue_insert(graph_from(&[0, 1, 2], &[(0, 1, 0), (1, 2, 1)]));
        let _g2 = engine.queue_insert(graph_from(&[0, 0], &[(0, 1, 0)]));
        engine.apply_pending();
        assert!(engine.index().sigs_consistent(), "after batched inserts");
        assert!(engine.queue_remove(g1));
        engine.queue_insert(graph_from(&[1, 1, 1], &[(0, 1, 1), (1, 2, 1)]));
        engine.apply_pending();
        assert!(
            engine.index().sigs_consistent(),
            "after remove + insert batch"
        );
        engine.wait_remine_idle();
        assert!(engine.index().sigs_consistent(), "after background re-mine");
        assert!(engine.into_index().sigs_consistent());
    }

    #[test]
    fn pinned_snapshot_is_immune_to_later_writes() {
        let engine = Engine::new(index(), 2);
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
        let pinned = engine.pin();
        let before = scan_support(&pinned, &q);
        let gid = engine.insert(graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]));
        // The old pin keeps answering from its version; a new pin sees the
        // insert.
        assert_eq!(scan_support(&pinned, &q), before);
        assert!(scan_support(&engine.pin(), &q).contains(&gid));
        assert!(!pinned.is_active(gid));
    }

    #[test]
    fn concurrent_batches_see_whole_epochs_under_churn() {
        use std::collections::HashMap;
        // Reader threads hammer pinned batches while this thread churns
        // the index; every batch must equal the scan oracle of exactly the
        // epoch it reports — never a torn mix of two versions.
        let engine = std::sync::Arc::new(Engine::new(index(), 2));
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let engine = std::sync::Arc::clone(&engine);
                let stop = std::sync::Arc::clone(&stop);
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut seen: Vec<(u64, Vec<u32>)> = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let (r, _, epoch) = engine.query_batch_pinned(
                            std::slice::from_ref(&q),
                            QueryOptions::default(),
                            7,
                            &obs::Registry::disabled(),
                        );
                        seen.push((epoch, r[0].matches.clone()));
                    }
                    seen
                })
            })
            .collect();

        let mut oracle: HashMap<u64, Vec<u32>> = HashMap::new();
        oracle.insert(engine.epoch(), scan_support(&engine.pin(), &q));
        let g = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
        let mut live: Vec<u32> = Vec::new();
        for round in 0..20 {
            if round % 3 == 2 {
                if let Some(gid) = live.pop() {
                    engine.queue_remove(gid);
                }
            } else {
                live.push(engine.queue_insert(g.clone()));
            }
            if let Some(out) = engine.apply_pending() {
                oracle.insert(out.epoch, scan_support(&engine.pin(), &q));
            }
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            for (epoch, matches) in r.join().expect("reader") {
                let expected = oracle.get(&epoch).expect("epoch was published");
                assert_eq!(&matches, expected, "torn answer at epoch {epoch}");
            }
        }
    }

    #[test]
    fn background_remine_triggers_and_preserves_answers() {
        let engine = Engine::with_remine(index(), 2, 3);
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
        let g = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
        let a = engine.insert(g.clone());
        assert!(engine.remove(0));
        let b = engine.insert(g.clone()); // third applied op → trigger
        engine.wait_remine_idle();
        let stats = engine.maint_stats();
        assert_eq!(stats.remine_triggers, 1);
        assert_eq!(stats.remines_completed, 1);
        assert!(stats.snapshot_swaps >= 4, "three applies + one re-mine");
        let reports = engine.drain_remine_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].epoch, engine.epoch());
        assert!(engine.drain_remine_reports().is_empty(), "drained");
        // The re-mined snapshot answers exactly like the scan oracle and
        // keeps gids stable.
        let snap = engine.pin();
        assert!(!snap.is_active(0));
        assert!(snap.is_active(a) && snap.is_active(b));
        let (r, _) = engine.query_batch(std::slice::from_ref(&q), QueryOptions::default(), 5);
        assert_eq!(r[0].matches, scan_support(&snap, &q));
        assert!(r[0].matches.contains(&a) && r[0].matches.contains(&b));
        // And it equals a fresh build over the survivors feature-for-feature
        // (gid-stable re-mine: supports keep original ids).
        let final_idx = engine.into_index();
        assert_eq!(final_idx.maintenance_epoch(), reports[0].epoch);
        for f in final_idx.features() {
            assert!(!f.support.contains(&0), "removed gid must not resurface");
        }
    }

    #[test]
    fn ops_during_remine_are_replayed_onto_the_result() {
        // Threshold 1: the first apply triggers a re-mine; ops applied
        // while it runs land in the journal and must survive the swap.
        for _ in 0..3 {
            let engine = Engine::with_remine(index(), 2, 1);
            let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
            let g = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
            let mut gids = Vec::new();
            for _ in 0..5 {
                gids.push(engine.insert(g.clone()));
            }
            assert!(engine.remove(gids[0]));
            engine.wait_remine_idle();
            let snap = engine.pin();
            let expected = scan_support(&snap, &q);
            for &gid in &gids[1..] {
                assert!(
                    expected.contains(&gid),
                    "journaled insert {gid} lost across re-mine swap"
                );
            }
            assert!(!expected.contains(&gids[0]));
            let (r, _) = engine.query_batch(std::slice::from_ref(&q), QueryOptions::default(), 3);
            assert_eq!(r[0].matches, expected);
        }
    }

    #[test]
    fn distinct_queries_get_distinct_streams() {
        use rand::RngCore;
        let mut a = query_rng(1, 0);
        let mut b = query_rng(1, 1);
        let mut c = query_rng(2, 0);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_ne!(xa, xb);
        assert_ne!(xa, xc);
        // and the obvious aliasing (seed+1, i) vs (seed, i+1) is avoided
        let mut d = query_rng(0, 1);
        let mut e = query_rng(1, 0);
        assert_ne!(d.next_u64(), e.next_u64());
    }
}
