//! Parallel batch query engine on a persistent worker pool.
//!
//! [`Engine`] is the long-lived serving front: an index plus one
//! [`graph_core::par::Pool`] whose workers are spawned once and reused
//! across every batch ([`Engine::query_batch`]). The convenience
//! [`TreePiIndex::query_batch`] entry points build a transient pool per
//! call — identical results, just without the reuse.
//!
//! The determinism contract (see DESIGN.md, "Parallel query engine"):
//!
//! - every query gets its own RNG, [`query_rng`]`(seed, i)`, derived only
//!   from the batch seed and the query's position — never from which worker
//!   runs it or in what order;
//! - the pipeline's parallel stages (CDC prune, reconstruction verify)
//!   chunk candidates contiguously and concatenate chunk results in order,
//!   and neither consumes randomness.
//!
//! Together these make batch results bit-identical for any pool size,
//! including 1 — verified by unit tests here, property tests in
//! `tests/prop.rs` and `tests/pool_prop.rs` (which also pin equality
//! against the scoped reference path in [`crate::scoped_ref`]).
//!
//! Scheduling is work-stealing-lite: seats pull the next query index from
//! a shared atomic counter, so long-running queries don't stall a statically
//! assigned chunk. When the batch is smaller than the pool, leftover
//! workers are instead spent *inside* queries (intra-query candidate
//! parallelism, [`crate::query::INTRA_PAR_THRESHOLD`]) — those stages
//! dispatch re-entrantly into the same pool.

use crate::index::TreePiIndex;
use crate::query::{QueryOptions, QueryResult};
use crate::workload::{summarize, WorkloadSummary};
use graph_core::par::Pool;
use graph_core::Graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The per-query deterministic RNG: position `i` of a batch with `seed`.
///
/// The seed and index are mixed through splitmix64-style finalization so
/// neighboring queries get unrelated streams (plain `seed + i` would hand
/// query `i` of seed `s` the same stream as query `i+1` of seed `s-1`).
pub fn query_rng(seed: u64, i: usize) -> ChaCha8Rng {
    let mut z = seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    ChaCha8Rng::seed_from_u64(z ^ (z >> 31))
}

/// Resolve a `threads` argument: `0` means all available parallelism.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

impl TreePiIndex {
    /// Answer a batch of containment queries on a pool of `threads` workers
    /// (`0` = available parallelism), returning per-query results in query
    /// order plus an aggregated [`WorkloadSummary`] (tail percentiles are
    /// computed over the merged per-query stats, so nothing is lost to
    /// per-thread pre-aggregation).
    ///
    /// Results are bit-identical for any `threads` value: query `i` always
    /// runs with [`query_rng`]`(seed, i)`.
    pub fn query_batch(
        &self,
        queries: &[Graph],
        opts: QueryOptions,
        threads: usize,
        seed: u64,
    ) -> (Vec<QueryResult>, WorkloadSummary) {
        self.query_batch_obs(queries, opts, threads, seed, &obs::Registry::disabled())
    }

    /// [`Self::query_batch`] recording metrics into `registry`.
    ///
    /// Each worker records into its own [`obs::Shard`] — no lock is touched
    /// on the query path — and the shards are absorbed into the registry
    /// only when the worker retires. Pipeline spans and `funnel.*` counters
    /// are pure functions of the per-query outcomes, so their totals are
    /// bit-identical for any `threads`. The `engine.*` namespace
    /// (workers spawned, queries served per worker, busy vs wall time)
    /// describes the execution shape and is explicitly excluded from the
    /// determinism contract ([`obs::MetricSet::deterministic_counters`]).
    pub fn query_batch_obs(
        &self,
        queries: &[Graph],
        opts: QueryOptions,
        threads: usize,
        seed: u64,
        registry: &obs::Registry,
    ) -> (Vec<QueryResult>, WorkloadSummary) {
        let pool = Pool::new(resolve_threads(threads));
        batch_on_pool(self, queries, opts, &pool, seed, registry)
    }
}

/// The shared batch implementation: fan `queries` across the pool's seats,
/// each seat pulling indices off an atomic cursor into order-indexed result
/// slots. Used by both [`Engine::query_batch_obs`] (persistent pool) and
/// [`TreePiIndex::query_batch_obs`] (transient pool).
fn batch_on_pool(
    index: &TreePiIndex,
    queries: &[Graph],
    opts: QueryOptions,
    pool: &Pool,
    seed: u64,
    registry: &obs::Registry,
) -> (Vec<QueryResult>, WorkloadSummary) {
    let threads = pool.parallelism();
    // Spend the pool across queries first; only when the batch can't
    // occupy it do queries get intra-candidate workers.
    let intra = if queries.is_empty() || queries.len() >= threads {
        1
    } else {
        threads / queries.len()
    };
    let results: Vec<QueryResult> = if threads == 1 || queries.len() <= 1 {
        let shard = registry.shard();
        let results = {
            let _wall = shard.span("engine.worker_wall");
            let results: Vec<QueryResult> = queries
                .iter()
                .enumerate()
                .map(|(i, q)| {
                    shard.set_trace_query(Some(i as u64));
                    let _busy = shard.span("engine.worker_busy");
                    index.query_with_pool_obs(
                        q,
                        opts,
                        &mut query_rng(seed, i),
                        pool,
                        threads,
                        &shard,
                    )
                })
                .collect();
            shard.set_trace_query(None);
            results
        };
        shard.add("engine.workers", 1);
        shard.add("engine.queries", queries.len() as u64);
        registry.absorb(shard);
        results
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<QueryResult>>> =
            queries.iter().map(|_| Mutex::new(None)).collect();
        let workers = threads.min(queries.len());
        pool.run(workers, |_seat| {
            let shard = registry.shard();
            let mut served = 0u64;
            {
                let _wall = shard.span("engine.worker_wall");
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    let r = {
                        shard.set_trace_query(Some(i as u64));
                        let _busy = shard.span("engine.worker_busy");
                        index.query_with_pool_obs(
                            &queries[i],
                            opts,
                            &mut query_rng(seed, i),
                            pool,
                            intra,
                            &shard,
                        )
                    };
                    served += 1;
                    *slots[i].lock().expect("slot") = Some(r);
                }
                shard.set_trace_query(None);
            }
            shard.add("engine.workers", 1);
            shard.add("engine.queries", served);
            registry.absorb(shard);
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("slot").expect("every query ran"))
            .collect()
    };
    // Batch-end delta of the pool's scheduling metrics (pool.* namespace,
    // exempt from the determinism contract like engine.*).
    let shard = registry.shard();
    pool.flush_metrics(&shard);
    registry.absorb(shard);
    let stats: Vec<_> = results.iter().map(|r| r.stats).collect();
    let summary = summarize(&stats);
    (results, summary)
}

/// A long-lived serving engine: a [`TreePiIndex`] plus one persistent
/// worker [`Pool`] reused across every batch, so serving pays thread
/// spawn/join once per process instead of once per batch. Construction of
/// the answer is identical to [`TreePiIndex::query_batch`] — bit-identical
/// results at any pool size, per the determinism contract in this module's
/// docs.
pub struct Engine {
    index: TreePiIndex,
    pool: Pool,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("parallelism", &self.pool.parallelism())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Wrap `index` with a pool of `threads` workers (`0` = available
    /// parallelism). The pool threads are spawned here and live until the
    /// engine is dropped.
    pub fn new(index: TreePiIndex, threads: usize) -> Self {
        Engine {
            index,
            pool: Pool::new(resolve_threads(threads)),
        }
    }

    /// The wrapped index.
    pub fn index(&self) -> &TreePiIndex {
        &self.index
    }

    /// Mutable access to the wrapped index (inserts/removes between
    /// batches). Prefer [`Engine::insert`] / [`Engine::remove`] for §7.1
    /// maintenance; any path that mutates the index bumps its
    /// [`TreePiIndex::maintenance_epoch`], which is what epoch-keyed
    /// result caches (the `serve` crate) watch to drop stale answers.
    pub fn index_mut(&mut self) -> &mut TreePiIndex {
        &mut self.index
    }

    /// Insert a graph through the running engine
    /// ([`TreePiIndex::insert`], §7.1). Returns the new graph id; the
    /// maintenance epoch is bumped so result caches keyed on
    /// [`Engine::epoch`] invalidate before the next request.
    pub fn insert(&mut self, g: Graph) -> u32 {
        self.index.insert(g)
    }

    /// Remove graph `gid` through the running engine
    /// ([`TreePiIndex::remove`], §7.1). Returns whether the graph was
    /// active; on `true` the maintenance epoch is bumped.
    pub fn remove(&mut self, gid: u32) -> bool {
        self.index.remove(gid)
    }

    /// The index's current maintenance epoch — the cache-invalidation
    /// version number (see [`TreePiIndex::maintenance_epoch`]).
    pub fn epoch(&self) -> u64 {
        self.index.maintenance_epoch()
    }

    /// Recover the index, dropping the pool.
    pub fn into_index(self) -> TreePiIndex {
        self.index
    }

    /// The engine's worker pool (shared with index builds via
    /// [`TreePiIndex::build_with_pool_obs`] if desired).
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// The pool's worker count.
    pub fn parallelism(&self) -> usize {
        self.pool.parallelism()
    }

    /// [`TreePiIndex::query_batch`] on the engine's persistent pool.
    pub fn query_batch(
        &self,
        queries: &[Graph],
        opts: QueryOptions,
        seed: u64,
    ) -> (Vec<QueryResult>, WorkloadSummary) {
        self.query_batch_obs(queries, opts, seed, &obs::Registry::disabled())
    }

    /// [`TreePiIndex::query_batch_obs`] on the engine's persistent pool.
    pub fn query_batch_obs(
        &self,
        queries: &[Graph],
        opts: QueryOptions,
        seed: u64,
        registry: &obs::Registry,
    ) -> (Vec<QueryResult>, WorkloadSummary) {
        batch_on_pool(&self.index, queries, opts, &self.pool, seed, registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TreePiParams;
    use crate::verify::scan_support;
    use graph_core::graph_from;

    fn index() -> TreePiIndex {
        let db = vec![
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1), (2, 3, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
            graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
            graph_from(&[0, 1], &[(0, 1, 1)]),
        ];
        TreePiIndex::build(db, TreePiParams::quick())
    }

    fn queries() -> Vec<Graph> {
        vec![
            graph_from(&[0, 0], &[(0, 1, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
            graph_from(&[9, 9], &[(0, 1, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]),
        ]
    }

    #[test]
    fn batch_matches_oracle() {
        let idx = index();
        let qs = queries();
        let (results, summary) = idx.query_batch(&qs, QueryOptions::default(), 4, 2007);
        assert_eq!(results.len(), qs.len());
        assert_eq!(summary.queries, qs.len());
        for (q, r) in qs.iter().zip(&results) {
            assert_eq!(r.matches, scan_support(&idx, q));
        }
        assert_eq!(summary.missing_feature, 1);
    }

    #[test]
    fn identical_across_thread_counts() {
        let idx = index();
        let qs = queries();
        let (base, base_sum) = idx.query_batch(&qs, QueryOptions::default(), 1, 42);
        for threads in [2, 3, 8] {
            let (r, sum) = idx.query_batch(&qs, QueryOptions::default(), threads, 42);
            for (i, (a, b)) in base.iter().zip(&r).enumerate() {
                assert_eq!(
                    a.matches, b.matches,
                    "matches differ at query {i}, threads {threads}"
                );
                assert_eq!(
                    a.stats.filtered, b.stats.filtered,
                    "query {i}, threads {threads}"
                );
                assert_eq!(
                    a.stats.pruned, b.stats.pruned,
                    "query {i}, threads {threads}"
                );
                assert_eq!(
                    a.stats.partition_size, b.stats.partition_size,
                    "query {i}, threads {threads}"
                );
            }
            assert_eq!(sum.queries, base_sum.queries);
            assert_eq!(sum.missing_feature, base_sum.missing_feature);
        }
    }

    #[test]
    fn batch_equals_sequential_queries_with_same_rng() {
        let idx = index();
        let qs = queries();
        let seed = 7u64;
        let (batch, _) = idx.query_batch(&qs, QueryOptions::default(), 8, seed);
        for (i, q) in qs.iter().enumerate() {
            let seq = idx.query_with(q, QueryOptions::default(), &mut query_rng(seed, i));
            assert_eq!(batch[i].matches, seq.matches, "query {i}");
            assert_eq!(batch[i].stats.pruned, seq.stats.pruned, "query {i}");
        }
    }

    #[test]
    fn empty_batch() {
        let idx = index();
        let (results, summary) = idx.query_batch(&[], QueryOptions::default(), 4, 0);
        assert!(results.is_empty());
        assert_eq!(summary.queries, 0);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        let idx = index();
        let qs = queries();
        let (r0, _) = idx.query_batch(&qs, QueryOptions::default(), 0, 5);
        let (r1, _) = idx.query_batch(&qs, QueryOptions::default(), 1, 5);
        for (a, b) in r0.iter().zip(&r1) {
            assert_eq!(a.matches, b.matches);
        }
    }

    #[test]
    fn obs_funnel_reconciles_and_is_thread_invariant() {
        let idx = index();
        let qs = queries();
        let run = |threads: usize| {
            let reg = obs::Registry::new();
            let (results, _) = idx.query_batch_obs(&qs, QueryOptions::default(), threads, 42, &reg);
            (results, reg.drain())
        };
        let (base_r, base_m) = run(1);
        if !obs::COMPILED_IN {
            return;
        }
        // Counters reconcile exactly with the per-query stats.
        assert_eq!(base_m.counter(obs::names::QUERIES), qs.len() as u64);
        type Field = fn(&crate::QueryStats) -> usize;
        let fields: [(&str, Field); 3] = [
            (obs::names::FILTERED, |s| s.filtered),
            (obs::names::PRUNED, |s| s.pruned),
            (obs::names::ANSWERS, |s| s.answers),
        ];
        for (name, field) in fields {
            let total: u64 = base_r.iter().map(|r| field(&r.stats) as u64).sum();
            assert_eq!(base_m.counter(name), total, "{name}");
        }
        // All four pipeline spans observed once per query.
        for name in obs::names::PIPELINE_SPANS {
            let span = base_m.span(name).expect("pipeline span present");
            assert_eq!(span.count, qs.len() as u64, "{name}");
        }
        // Everything outside engine.* is bit-identical at any thread count.
        for threads in [2, 8] {
            let (_, m) = run(threads);
            assert_eq!(
                m.deterministic_counters(),
                base_m.deterministic_counters(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn tracing_batch_emits_stage_timeline_per_query() {
        if !obs::COMPILED_IN {
            return;
        }
        let idx = index();
        let qs = queries();
        for threads in [1usize, 3] {
            let reg = obs::Registry::with_tracing();
            let (_, _) = idx.query_batch_obs(&qs, QueryOptions::default(), threads, 42, &reg);
            let events = reg.drain_trace();
            // Every query contributes its four pipeline stages, tagged with
            // its batch position.
            for name in obs::names::PIPELINE_SPANS {
                let ids: std::collections::BTreeSet<u64> = events
                    .iter()
                    .filter(|e| e.name == name)
                    .filter_map(|e| e.query)
                    .collect();
                assert_eq!(
                    ids,
                    (0..qs.len() as u64).collect(),
                    "{name} missing queries (threads={threads})"
                );
            }
            // Worker spans are present and the wall span carries no query id.
            assert!(events.iter().any(|e| e.name == "engine.worker_busy"));
            let wall = events
                .iter()
                .find(|e| e.name == "engine.worker_wall")
                .expect("wall span traced");
            assert_eq!(wall.query, None);
            // Stage events nest inside the batch: no start beyond the wall end.
            let wall_end = wall.start_ns + wall.dur_ns;
            for e in &events {
                assert!(e.start_ns <= wall_end.max(e.start_ns));
            }
            // Metrics unaffected by tracing.
            let m = reg.drain();
            assert_eq!(m.counter(obs::names::QUERIES), qs.len() as u64);
        }
        // Non-tracing registry produces no events for the same batch.
        let reg = obs::Registry::new();
        let _ = idx.query_batch_obs(&qs, QueryOptions::default(), 2, 42, &reg);
        assert!(reg.drain_trace().is_empty());
    }

    #[test]
    fn engine_reuses_pool_and_matches_transient_batches() {
        let idx = index();
        let qs = queries();
        let (base, base_sum) = idx.query_batch(&qs, QueryOptions::default(), 1, 42);
        for threads in [1usize, 2, 8] {
            let engine = Engine::new(index(), threads);
            assert_eq!(engine.parallelism(), threads);
            // Several batches on the same pool: results stay identical.
            for _ in 0..3 {
                let (r, sum) = engine.query_batch(&qs, QueryOptions::default(), 42);
                for (a, b) in base.iter().zip(&r) {
                    assert_eq!(a.matches, b.matches, "threads {threads}");
                    assert_eq!(a.stats.pruned, b.stats.pruned, "threads {threads}");
                }
                assert_eq!(sum.queries, base_sum.queries);
            }
            let recovered = engine.into_index();
            assert_eq!(recovered.db().len(), index().db().len());
        }
    }

    #[test]
    fn engine_obs_flushes_pool_metrics() {
        if !obs::COMPILED_IN {
            return;
        }
        let engine = Engine::new(index(), 2);
        let reg = obs::Registry::new();
        let (_, _) = engine.query_batch_obs(&queries(), QueryOptions::default(), 7, &reg);
        let m = reg.drain();
        assert!(m.counter("pool.tasks") >= 1, "batch dispatch counted");
        // pool.* is outside the determinism contract.
        assert!(!m.deterministic_counters().contains_key("pool.tasks"));
    }

    #[test]
    fn engine_maintenance_bumps_epoch_and_changes_answers() {
        let mut engine = Engine::new(index(), 2);
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
        let (before, _) = engine.query_batch(std::slice::from_ref(&q), QueryOptions::default(), 9);
        let e0 = engine.epoch();

        // A cache keyed on the epoch would hold `before`; the insert must
        // bump the epoch AND the fresh answer must include the new graph.
        let gid = engine.insert(graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]));
        assert!(engine.epoch() > e0, "insert must bump the epoch");
        let (after, _) = engine.query_batch(std::slice::from_ref(&q), QueryOptions::default(), 9);
        assert!(after[0].matches.contains(&gid));
        assert_ne!(before[0].matches, after[0].matches);
        assert_eq!(after[0].matches, scan_support(engine.index(), &q));

        // Remove through the engine: epoch bumps again, answer reverts.
        let e1 = engine.epoch();
        assert!(engine.remove(gid));
        assert!(engine.epoch() > e1, "remove must bump the epoch");
        let (reverted, _) =
            engine.query_batch(std::slice::from_ref(&q), QueryOptions::default(), 9);
        assert_eq!(reverted[0].matches, before[0].matches);
    }

    #[test]
    fn serving_path_insert_registers_novel_edge_feature() {
        // σ(1) = 1 under maintenance: a graph inserted through the running
        // engine whose edge (labels 7-7, edge label 3) exists nowhere in
        // the database must become queryable — the single-edge tree is
        // registered as a fresh feature, so the query is answered by real
        // support intersection, not a stale MissingFeature short-circuit.
        let mut engine = Engine::new(index(), 2);
        let q = graph_from(&[7, 7], &[(0, 1, 3)]);
        let (miss, _) = engine.query_batch(std::slice::from_ref(&q), QueryOptions::default(), 3);
        assert!(miss[0].matches.is_empty());
        assert!(miss[0].stats.missing_feature, "edge unknown before insert");

        let gid = engine.insert(graph_from(&[7, 7, 0], &[(0, 1, 3), (1, 2, 0)]));
        let (hit, _) = engine.query_batch(std::slice::from_ref(&q), QueryOptions::default(), 3);
        assert!(
            !hit[0].stats.missing_feature,
            "novel edge must be a feature after the insert"
        );
        assert_eq!(hit[0].matches, vec![gid]);
        assert_eq!(hit[0].matches, scan_support(engine.index(), &q));
    }

    #[test]
    fn distinct_queries_get_distinct_streams() {
        use rand::RngCore;
        let mut a = query_rng(1, 0);
        let mut b = query_rng(1, 1);
        let mut c = query_rng(2, 0);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_ne!(xa, xb);
        assert_ne!(xa, xc);
        // and the obvious aliasing (seed+1, i) vs (seed, i+1) is avoided
        let mut d = query_rng(0, 1);
        let mut e = query_rng(1, 0);
        assert_ne!(d.next_u64(), e.next_u64());
    }
}
