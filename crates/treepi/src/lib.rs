//! **TreePi** (Zhang, Hu & Yang, ICDE 2007): a graph index built from
//! frequent subtrees, reproduced in Rust.
//!
//! Containment queries over a database of labeled graphs run in four
//! stages:
//!
//! 1. **Partition** ([`partition`]): the query is randomly split into
//!    indexed feature subtrees (δ runs; the smallest partition becomes
//!    `TP_q`, the union of features `SF_q`);
//! 2. **Filter** ([`filter`]): intersect the features' support sets
//!    (Algorithm 1) → candidate set `P_q`;
//! 3. **Prune** ([`prune`]): Center Distance Constraints (Algorithm 2)
//!    shrink `P_q` to `P'_q` using stored feature-center locations;
//! 4. **Verify** ([`verify`]): reconstruct the query from feature subtrees
//!    retrieved at the stored centers (Algorithm 3) — no naive isomorphism
//!    search.
//!
//! ```
//! use graph_core::graph_from;
//! use treepi::{TreePiIndex, TreePiParams};
//!
//! let db = vec![
//!     graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
//!     graph_from(&[0, 1], &[(0, 1, 1)]),
//! ];
//! let index = TreePiIndex::build(db, TreePiParams::default());
//! let q = graph_from(&[0, 0], &[(0, 1, 0)]);
//! let mut rng = rand::thread_rng();
//! assert_eq!(index.query(&q, &mut rng).matches, vec![0]);
//! ```

#![warn(missing_docs)]

pub mod directed;
pub mod engine;
pub mod filter;
pub mod index;
pub mod params;
pub mod partition;
pub mod persist;
pub mod prune;
pub mod query;
pub mod scoped_ref;
pub mod sig;
pub mod trie;
pub mod verify;
pub mod workload;

pub use directed::DirectedTreePiIndex;
pub use engine::{query_rng, resolve_threads, ApplyOutcome, Engine, MaintStats, RemineReport};
pub use filter::enumerate_query_features;
pub use index::{BuildStats, Feature, IndexMemory, TreePiIndex};
pub use params::{Delta, TreePiParams};
pub use partition::{
    partition_runs, partition_runs_with, random_partition, random_partition_collecting, Part,
    PartitionOutcome, PartitionRuns,
};
pub use query::{QueryOptions, QueryResult, QueryStats, SfMode, INTRA_PAR_THRESHOLD};
pub use sig::VertexSig;
pub use trie::{CanonTrie, FeatureId};
pub use verify::{scan_support, verify_all_threaded_obs};
pub use workload::{query_batch, summarize, WorkloadSummary};
