//! Workload-level aggregation of per-query statistics: means, percentiles,
//! and funnel ratios over a batch of queries — the quantities the paper's
//! evaluation plots (average candidate-set sizes, average processing time)
//! plus tail behavior the averages hide.

use crate::index::TreePiIndex;
use crate::query::{QueryResult, QueryStats};
use graph_core::Graph;
use rand::Rng;
use std::time::Duration;

/// Aggregated statistics over a query workload.
#[derive(Clone, Debug, Default)]
pub struct WorkloadSummary {
    /// Number of queries aggregated.
    pub queries: usize,
    /// Mean `|P_q|` (after filtering).
    pub mean_filtered: f64,
    /// Mean `|P'_q|` (after Center Distance pruning).
    pub mean_pruned: f64,
    /// Mean `|D_q|` (answers).
    pub mean_answers: f64,
    /// Mean partition size `|TP_q|`.
    pub mean_partition_size: f64,
    /// Queries short-circuited by a missing feature.
    pub missing_feature: usize,
    /// Mean total processing time.
    pub mean_time: Duration,
    /// Median total processing time.
    pub p50_time: Duration,
    /// 95th-percentile total processing time.
    pub p95_time: Duration,
    /// Worst total processing time.
    pub max_time: Duration,
    /// Filtering precision `Σ|D_q| / Σ|P_q|` (1.0 = perfect filter). When
    /// the funnel is empty (`Σ|P_q| = 0` — every query short-circuited or
    /// filtered to nothing), this is defined as 1.0, not NaN: an empty
    /// candidate set admitted zero false positives, which is exactly what
    /// precision 1.0 claims, and it keeps the ratio finite for plots and
    /// CSV output. Same convention for [`Self::prune_precision`].
    pub filter_precision: f64,
    /// Pruning precision `Σ|D_q| / Σ|P'_q|` (1.0 = verification-free).
    /// Defined as 1.0 on an empty funnel (see [`Self::filter_precision`]).
    pub prune_precision: f64,
}

/// Aggregate a batch of per-query statistics.
///
/// Funnel ratios are guarded against empty denominators: a batch whose
/// every query produced zero candidates reports both precisions as exactly
/// 1.0 rather than dividing by zero (see the field docs on
/// [`WorkloadSummary`]).
pub fn summarize(stats: &[QueryStats]) -> WorkloadSummary {
    if stats.is_empty() {
        return WorkloadSummary::default();
    }
    let n = stats.len() as f64;
    let mut times: Vec<Duration> = stats.iter().map(|s| s.total()).collect();
    times.sort_unstable();
    // Ceil-based nearest rank: the smallest sample with at least a `p`
    // fraction of the distribution at or below it. Rounding (n-1)·p to the
    // *nearest* index under-reports the tail on small batches — with 20
    // queries, p95 landed on index 18, the p90 element; ceiling gives
    // index 19, the max, and never reports a value below the true quantile.
    let pct = |p: f64| -> Duration {
        let idx = ((times.len() as f64 - 1.0) * p).ceil() as usize;
        times[idx.min(times.len() - 1)]
    };
    let sum_f: usize = stats.iter().map(|s| s.filtered).sum();
    let sum_p: usize = stats.iter().map(|s| s.pruned).sum();
    let sum_a: usize = stats.iter().map(|s| s.answers).sum();
    WorkloadSummary {
        queries: stats.len(),
        mean_filtered: sum_f as f64 / n,
        mean_pruned: sum_p as f64 / n,
        mean_answers: sum_a as f64 / n,
        mean_partition_size: stats.iter().map(|s| s.partition_size).sum::<usize>() as f64 / n,
        missing_feature: stats.iter().filter(|s| s.missing_feature).count(),
        mean_time: times.iter().sum::<Duration>() / stats.len() as u32,
        p50_time: pct(0.50),
        p95_time: pct(0.95),
        max_time: *times.last().expect("nonempty"),
        filter_precision: if sum_f > 0 {
            sum_a as f64 / sum_f as f64
        } else {
            1.0
        },
        prune_precision: if sum_p > 0 {
            sum_a as f64 / sum_p as f64
        } else {
            1.0
        },
    }
}

/// Run a whole query workload sequentially on a caller-supplied RNG and
/// summarize it in one call. For multi-threaded execution with per-query
/// deterministic RNGs, use [`TreePiIndex::query_batch`] (the parallel
/// engine aggregates through [`summarize`] too, so tail metrics are
/// computed over the full merged batch either way).
pub fn query_batch<R: Rng>(
    index: &TreePiIndex,
    queries: &[Graph],
    rng: &mut R,
) -> (Vec<QueryResult>, WorkloadSummary) {
    let results: Vec<QueryResult> = queries.iter().map(|q| index.query(q, rng)).collect();
    let stats: Vec<QueryStats> = results.iter().map(|r| r.stats).collect();
    let summary = summarize(&stats);
    (results, summary)
}

impl std::fmt::Display for WorkloadSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} queries: |Pq|={:.1} |P'q|={:.1} |Dq|={:.1} (filter precision {:.2}, prune precision {:.2})",
            self.queries,
            self.mean_filtered,
            self.mean_pruned,
            self.mean_answers,
            self.filter_precision,
            self.prune_precision
        )?;
        write!(
            f,
            "time: mean {:.2?}, p50 {:.2?}, p95 {:.2?}, max {:.2?}; parts/query {:.1}; {} missing-feature short-circuits",
            self.mean_time,
            self.p50_time,
            self.p95_time,
            self.max_time,
            self.mean_partition_size,
            self.missing_feature
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TreePiParams;
    use crate::TreePiIndex;
    use graph_core::graph_from;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn fake(filtered: usize, pruned: usize, answers: usize, ms: u64) -> QueryStats {
        QueryStats {
            partition_size: 2,
            sf_size: 3,
            filtered,
            pruned,
            sig_killed: 0,
            answers,
            missing_feature: false,
            t_partition: Duration::from_millis(ms / 2),
            t_filter: Duration::ZERO,
            t_prune: Duration::ZERO,
            t_sig: Duration::ZERO,
            t_verify: Duration::from_millis(ms - ms / 2),
        }
    }

    #[test]
    fn aggregates_means_and_precision() {
        let s = summarize(&[fake(10, 8, 4, 2), fake(20, 12, 6, 4)]);
        assert_eq!(s.queries, 2);
        assert!((s.mean_filtered - 15.0).abs() < 1e-9);
        assert!((s.mean_pruned - 10.0).abs() < 1e-9);
        assert!((s.mean_answers - 5.0).abs() < 1e-9);
        assert!((s.filter_precision - 10.0 / 30.0).abs() < 1e-9);
        assert!((s.prune_precision - 10.0 / 20.0).abs() < 1e-9);
        assert_eq!(s.max_time, Duration::from_millis(4));
        // ceil-based nearest rank lands on the upper of 2 samples
        assert_eq!(s.p50_time, Duration::from_millis(4));
    }

    #[test]
    fn percentiles_use_ceil_nearest_rank() {
        // 20 samples of 1..=20 ms: p95 must be the max (index 19), not the
        // p90 element (index 18) the old round-to-nearest picked.
        let batch: Vec<QueryStats> = (1..=20).map(|i| fake(10, 10, 5, i)).collect();
        let s = summarize(&batch);
        assert_eq!(s.p50_time, Duration::from_millis(11)); // ceil(19·0.5)=10
        assert_eq!(s.p95_time, Duration::from_millis(20)); // ceil(19·0.95)=19
        assert_eq!(s.max_time, Duration::from_millis(20));

        // Odd batch: p50 is the true median, p95 the last element.
        let batch: Vec<QueryStats> = (1..=5).map(|i| fake(10, 10, 5, i)).collect();
        let s = summarize(&batch);
        assert_eq!(s.p50_time, Duration::from_millis(3)); // ceil(4·0.5)=2
        assert_eq!(s.p95_time, Duration::from_millis(5)); // ceil(4·0.95)=4
        assert_eq!(s.max_time, Duration::from_millis(5));

        // Single sample: every percentile is that sample.
        let s = summarize(&[fake(1, 1, 1, 7)]);
        assert_eq!(s.p50_time, Duration::from_millis(7));
        assert_eq!(s.p95_time, Duration::from_millis(7));
        assert_eq!(s.max_time, Duration::from_millis(7));
    }

    #[test]
    fn p95_never_below_true_quantile() {
        // For any batch size, at least 95% of samples must be ≤ p95.
        for n in 1..=40u64 {
            let batch: Vec<QueryStats> = (1..=n).map(|i| fake(1, 1, 1, i)).collect();
            let s = summarize(&batch);
            let at_or_below = (1..=n)
                .filter(|&i| Duration::from_millis(i) <= s.p95_time)
                .count();
            assert!(
                at_or_below as f64 >= 0.95 * n as f64,
                "n={n}: only {at_or_below} samples ≤ p95"
            );
        }
    }

    #[test]
    fn empty_summary_is_default() {
        assert_eq!(summarize(&[]).queries, 0);
    }

    #[test]
    fn empty_funnel_precisions_are_one_not_nan() {
        // Every query short-circuited (missing feature): Σ|Pq| = Σ|P'q| = 0.
        // The precisions must be exactly 1.0 — finite, plottable, and
        // truthful (an empty candidate set admitted no false positives).
        let mut s = fake(0, 0, 0, 1);
        s.missing_feature = true;
        let sum = summarize(&[s, s, s]);
        assert_eq!(sum.queries, 3);
        assert_eq!(sum.missing_feature, 3);
        assert_eq!(sum.filter_precision, 1.0);
        assert_eq!(sum.prune_precision, 1.0);
        assert!(sum.filter_precision.is_finite());
        assert!(sum.prune_precision.is_finite());

        // Mixed case: only one query contributes candidates; ratios use the
        // non-zero sums and stay well-defined.
        let sum = summarize(&[fake(0, 0, 0, 1), fake(10, 5, 5, 1)]);
        assert!((sum.filter_precision - 0.5).abs() < 1e-9);
        assert!((sum.prune_precision - 1.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_ordered() {
        let batch: Vec<QueryStats> = (1..=100).map(|i| fake(10, 10, 5, i)).collect();
        let s = summarize(&batch);
        assert!(s.p50_time <= s.p95_time);
        assert!(s.p95_time <= s.max_time);
        assert_eq!(s.max_time, Duration::from_millis(100));
    }

    #[test]
    fn batch_api_matches_individual_queries() {
        let db = vec![
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 1], &[(0, 1, 1)]),
        ];
        let idx = TreePiIndex::build(db, TreePiParams::quick());
        let queries = vec![
            graph_from(&[0, 0], &[(0, 1, 0)]),
            graph_from(&[0, 1], &[(0, 1, 1)]),
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (results, summary) = query_batch(&idx, &queries, &mut rng);
        assert_eq!(results.len(), 2);
        assert_eq!(summary.queries, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for (r, q) in results.iter().zip(&queries) {
            assert_eq!(r.matches, idx.query(q, &mut rng).matches);
        }
    }

    #[test]
    fn end_to_end_with_real_queries() {
        let db = vec![
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 1], &[(0, 1, 1)]),
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
        ];
        let idx = TreePiIndex::build(db, TreePiParams::quick());
        let queries = [
            graph_from(&[0, 0], &[(0, 1, 0)]),
            graph_from(&[0, 1], &[(0, 1, 1)]),
            graph_from(&[9, 9], &[(0, 1, 0)]),
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let stats: Vec<QueryStats> = queries
            .iter()
            .map(|q| idx.query(q, &mut rng).stats)
            .collect();
        let s = summarize(&stats);
        assert_eq!(s.queries, 3);
        assert_eq!(s.missing_feature, 1);
        assert!(s.prune_precision > 0.0);
        let text = s.to_string();
        assert!(text.contains("3 queries"));
    }
}
