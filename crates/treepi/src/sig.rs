//! Per-vertex neighborhood signatures: a compact, sound pre-verification
//! filter in the spirit of l2Match's label-pair / neighboring-label
//! indexes (see PAPERS.md).
//!
//! For every vertex `v` of a database graph we precompute a 16-byte
//! fingerprint of its 1-hop neighborhood: its own label, its degree, and a
//! 64-bit mask with one bit hashed from each incident
//! `(edge label, neighbor label)` pair. The fingerprints support a cheap
//! *necessary* condition for subgraph isomorphism:
//!
//! If `q ⊆ g` via an embedding `f`, then for every query vertex `x` the
//! host vertex `f(x)` (a) carries the same label, (b) has at least `x`'s
//! degree (embeddings are injective on vertices and map edges to edges),
//! and (c) is incident to every `(edge label, neighbor label)` pair `x` is
//! incident to — so `x`'s mask bits are a subset of `f(x)`'s. The mask is
//! an OR over hashed pairs, which only ever *loses* distinctions (two
//! pairs may share a bit); a set bit in the query mask that is absent from
//! the host mask therefore proves a pair the host vertex lacks entirely.
//! Killing a candidate because some query vertex has **no** compatible
//! host vertex can consequently never discard a true answer.
//!
//! Signatures are a pure function of the stored graph payload — the index
//! keeps `sigs[gid] == graph_sigs(&db[gid])` as an invariant across
//! build, §7.1 insert/remove repairs, and re-mining — which is what lets
//! version-2 index files (predating the signature section) reload with a
//! lossless recompute.

use graph_core::{Graph, VertexId};

/// Neighborhood fingerprint of one database (or query) vertex.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VertexSig {
    /// The vertex's own label.
    pub label: u32,
    /// Its degree.
    pub degree: u32,
    /// One hashed bit per incident `(edge label, neighbor label)` pair.
    pub mask: u64,
}

/// Hash an incident `(edge label, neighbor label)` pair to one of 64 mask
/// bits. SplitMix64-style finalizer: deterministic, platform-independent,
/// and cheap — the constant quality requirement here is only that distinct
/// pairs spread over the mask.
#[inline]
fn pair_bit(elabel: u32, nlabel: u32) -> u64 {
    let mut z = ((elabel as u64) << 32 | nlabel as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    1u64 << ((z ^ (z >> 31)) & 63)
}

impl VertexSig {
    /// Fingerprint of vertex `v` in `g`.
    pub fn of(g: &Graph, v: VertexId) -> Self {
        let mut mask = 0u64;
        for &(n, e) in g.neighbors(v) {
            mask |= pair_bit(g.edge(e).label.0, g.vlabel(n).0);
        }
        VertexSig {
            label: g.vlabel(v).0,
            degree: g.degree(v) as u32,
            mask,
        }
    }

    /// Can a query vertex with signature `self` map to a host vertex with
    /// signature `host` under *some* subgraph-isomorphism embedding?
    /// (Necessary condition; see the module docs for the soundness
    /// argument.)
    #[inline]
    pub fn compatible(&self, host: &VertexSig) -> bool {
        self.label == host.label && self.degree <= host.degree && self.mask & !host.mask == 0
    }
}

/// Signatures of every vertex of `g`, in vertex order.
pub fn graph_sigs(g: &Graph) -> Vec<VertexSig> {
    g.vertices().map(|v| VertexSig::of(g, v)).collect()
}

/// Does every query vertex have at least one signature-compatible host
/// vertex? `false` proves `q ⊄ g` (the pre-verification candidate kill);
/// `true` decides nothing. Quadratic in the small per-graph vertex counts,
/// all branch-free u64 compares.
pub fn graph_compatible(qsigs: &[VertexSig], hsigs: &[VertexSig]) -> bool {
    qsigs.iter().all(|q| hsigs.iter().any(|h| q.compatible(h)))
}

/// Can center position `c` (of a stored feature embedding in `g`) host the
/// part whose center representatives in the query are `q_reps`? A part
/// embedding maps the part tree's center onto the embedded subtree's
/// center — centers are isomorphism invariants — so the query-side center
/// representatives must land exactly on `c`'s representatives. Vertex
/// centers pin one vertex onto one; edge centers need the two query
/// representatives to map bijectively onto the two host endpoints in one
/// of the two orientations. A cardinality mismatch (impossible for
/// honestly stored centers) degrades to the weaker any-pair check, never
/// to a kill.
pub fn center_compatible(
    qsigs: &[VertexSig],
    hsigs: &[VertexSig],
    q_reps: &[VertexId],
    c: tree_core::CenterPos,
    g: &Graph,
) -> bool {
    let h_reps = c.representatives(g);
    match (q_reps, h_reps.as_slice()) {
        ([a], [u]) => qsigs[a.idx()].compatible(&hsigs[u.idx()]),
        ([a, b], [u, v]) => {
            let (sa, sb) = (&qsigs[a.idx()], &qsigs[b.idx()]);
            let (su, sv) = (&hsigs[u.idx()], &hsigs[v.idx()]);
            (sa.compatible(su) && sb.compatible(sv)) || (sa.compatible(sv) && sb.compatible(su))
        }
        (qs, hs) => qs.iter().all(|&a| {
            hs.iter()
                .any(|&u| qsigs[a.idx()].compatible(&hsigs[u.idx()]))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::graph_from;

    #[test]
    fn own_sig_is_self_compatible() {
        let g = graph_from(&[0, 1, 2], &[(0, 1, 0), (1, 2, 1)]);
        for v in g.vertices() {
            let s = VertexSig::of(&g, v);
            assert!(s.compatible(&s));
        }
    }

    #[test]
    fn label_and_degree_gate_compatibility() {
        // host path 0-0-1: middle vertex has degree 2
        let g = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
        let hub = VertexSig::of(&g, VertexId(1));
        // query single edge 0-0: endpoint has degree 1, same label → compatible
        let q = graph_from(&[0, 0], &[(0, 1, 0)]);
        let leaf = VertexSig::of(&q, VertexId(0));
        assert!(leaf.compatible(&hub));
        assert!(!hub.compatible(&leaf), "higher degree cannot map down");
        // wrong label is never compatible
        let q2 = graph_from(&[7, 0], &[(0, 1, 0)]);
        assert!(!VertexSig::of(&q2, VertexId(0)).compatible(&hub));
    }

    #[test]
    fn mask_detects_missing_incident_pair() {
        // query vertex incident to (elabel 5, nlabel 9); host vertex with the
        // same label/degree but a different incident pair must be rejected.
        let q = graph_from(&[0, 9], &[(0, 1, 5)]);
        let h = graph_from(&[0, 9], &[(0, 1, 6)]);
        let qs = VertexSig::of(&q, VertexId(0));
        let hs = VertexSig::of(&h, VertexId(0));
        // distinct pairs may collide in 64 bits, but these constants don't:
        assert_ne!(pair_bit(5, 9), pair_bit(6, 9));
        assert!(!qs.compatible(&hs));
    }

    #[test]
    fn subgraph_images_are_always_compatible() {
        // Soundness spot check: for actual sub-embeddings, every query
        // vertex must be compatible with its image.
        let g = graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1), (2, 3, 0)]);
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
        assert!(graph_core::is_subgraph_isomorphic(&q, &g));
        assert!(graph_compatible(&graph_sigs(&q), &graph_sigs(&g)));
    }

    #[test]
    fn graph_compatible_kills_impossible_candidates() {
        // Query needs a degree-3 hub; the path host has none.
        let q = graph_from(&[0, 0, 0, 0], &[(0, 1, 0), (0, 2, 0), (0, 3, 0)]);
        let host = graph_from(&[0, 0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 3, 0)]);
        assert!(!graph_compatible(&graph_sigs(&q), &graph_sigs(&host)));
    }

    #[test]
    fn center_compatible_checks_both_edge_orientations() {
        // Host edge 0(lbl 0) — 1(lbl 1); query reps with labels (1, 0) must
        // match via the flipped orientation.
        let g = graph_from(&[0, 1], &[(0, 1, 0)]);
        let q = graph_from(&[1, 0], &[(0, 1, 0)]);
        let (qs, hs) = (graph_sigs(&q), graph_sigs(&g));
        let c = tree_core::CenterPos::Edge(graph_core::EdgeId(0));
        assert!(center_compatible(
            &qs,
            &hs,
            &[VertexId(0), VertexId(1)],
            c,
            &g
        ));
        // Two query reps with the same label as only one endpoint: the
        // bijection requirement must reject.
        let q2 = graph_from(&[0, 0], &[(0, 1, 0)]);
        let qs2 = graph_sigs(&q2);
        assert!(!center_compatible(
            &qs2,
            &hs,
            &[VertexId(0), VertexId(1)],
            c,
            &g
        ));
    }
}
