//! TreePi configuration (paper §4.1.3 heuristics and §6.1 settings).

use mining::{MiningLimits, SigmaFn};

/// How many randomized partition runs δ to perform per query (§5.1).
#[derive(Clone, Copy, Debug)]
pub enum Delta {
    /// Fixed number of runs.
    Fixed(usize),
    /// δ = |q| (edge count of the query) — the paper's §6.1 choice.
    QuerySize,
}

impl Delta {
    /// Resolve to a run count for a query with `q_edges` edges.
    pub fn resolve(&self, q_edges: usize) -> usize {
        match *self {
            Delta::Fixed(n) => n.max(1),
            Delta::QuerySize => q_edges.max(1),
        }
    }
}

/// All TreePi parameters.
#[derive(Clone, Debug)]
pub struct TreePiParams {
    /// Feature-tree support threshold function σ(s) (Eq. 1).
    pub sigma: SigmaFn,
    /// Shrinking parameter γ (§4.1.2), typically 1..=3.
    pub gamma: f64,
    /// Partition runs per query (§5.1); the paper uses δ = |q|.
    pub delta: Delta,
    /// Mining safety limits.
    pub limits: MiningLimits,
}

impl Default for TreePiParams {
    /// The paper's §6.1 configuration: α = 5, β = 2, η = 10, γ = 1.5,
    /// δ = |q|.
    fn default() -> Self {
        Self {
            sigma: SigmaFn::paper_default(),
            gamma: 1.5,
            delta: Delta::QuerySize,
            limits: MiningLimits::default(),
        }
    }
}

impl TreePiParams {
    /// A small-η configuration for tests and quick experiments.
    pub fn quick() -> Self {
        Self {
            sigma: SigmaFn {
                alpha: 3,
                beta: 2.0,
                eta: 6,
            },
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_resolution() {
        assert_eq!(Delta::Fixed(5).resolve(20), 5);
        assert_eq!(Delta::Fixed(0).resolve(20), 1);
        assert_eq!(Delta::QuerySize.resolve(12), 12);
        assert_eq!(Delta::QuerySize.resolve(0), 1);
    }

    #[test]
    fn paper_defaults() {
        let p = TreePiParams::default();
        assert_eq!(p.sigma.alpha, 5);
        assert_eq!(p.sigma.eta, 10);
        assert!((p.gamma - 1.5).abs() < 1e-9);
        assert!(matches!(p.delta, Delta::QuerySize));
    }
}
