//! TreePi over directed graph databases (paper §7.2).
//!
//! The paper: *"the existing graph mining methods should be extended to
//! mine frequent directed trees … the canonical forms of trees should also
//! be adjusted to keep the directions … In query processing phase, we need
//! not make any modification."*
//!
//! We realize the same semantics through the subdivision encoding of
//! [`graph_core::digraph`]: directed databases and queries are encoded
//! into undirected graphs whose midpoint vertices and `2ℓ / 2ℓ+1` edge
//! labels carry the directions, and the unmodified undirected engine does
//! the rest — mined features *are* directed trees (their encodings), and
//! query processing is untouched, exactly as §7.2 promises. Containment
//! answers coincide with directed subgraph isomorphism because the
//! encoding is a strong reduction (see the digraph module's tests).

use crate::index::TreePiIndex;
use crate::params::TreePiParams;
use crate::query::{QueryOptions, QueryResult};
use graph_core::digraph::DiGraph;
use rand::Rng;

/// TreePi index over a directed graph database.
pub struct DirectedTreePiIndex {
    inner: TreePiIndex,
}

impl DirectedTreePiIndex {
    /// Build over a directed database. `params.sigma.eta` counts *encoded*
    /// edges: one directed arc costs two, so η should be roughly twice the
    /// intended directed-feature size.
    pub fn build(db: Vec<DiGraph>, params: TreePiParams) -> Self {
        let encoded = db.iter().map(|d| d.encode()).collect();
        Self {
            inner: TreePiIndex::build(encoded, params),
        }
    }

    /// The underlying undirected index (for statistics and inspection).
    pub fn inner(&self) -> &TreePiIndex {
        &self.inner
    }

    /// Answer a directed containment query: all database digraphs of which
    /// `q` is a directed subgraph.
    pub fn query<R: Rng>(&self, q: &DiGraph, rng: &mut R) -> QueryResult {
        self.inner.query(&q.encode(), rng)
    }

    /// [`Self::query`] with ablation switches.
    pub fn query_with<R: Rng>(&self, q: &DiGraph, opts: QueryOptions, rng: &mut R) -> QueryResult {
        self.inner.query_with(&q.encode(), opts, rng)
    }

    /// Insert a digraph (maintenance, §7.1 applied to §7.2).
    pub fn insert(&mut self, g: &DiGraph) -> u32 {
        self.inner.insert(g.encode())
    }

    /// Remove a digraph by id.
    pub fn remove(&mut self, gid: u32) -> bool {
        self.inner.remove(gid)
    }

    /// Number of active digraphs.
    pub fn active_count(&self) -> usize {
        self.inner.active_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::digraph::{digraph_from, is_sub_digraph_isomorphic, DiGraph};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn db() -> Vec<DiGraph> {
        vec![
            // chain a→b→c
            digraph_from(&[0, 1, 2], &[(0, 1, 0), (1, 2, 0)]),
            // reversed chain
            digraph_from(&[0, 1, 2], &[(1, 0, 0), (2, 1, 0)]),
            // diamond with a 2-cycle
            digraph_from(&[0, 1, 1, 2], &[(0, 1, 0), (0, 2, 0), (1, 3, 0), (3, 1, 0)]),
            // star out
            digraph_from(&[0, 1, 1], &[(0, 1, 0), (0, 2, 0)]),
        ]
    }

    fn oracle(db: &[DiGraph], q: &DiGraph) -> Vec<u32> {
        db.iter()
            .enumerate()
            .filter(|(_, g)| is_sub_digraph_isomorphic(q, g))
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn directed_queries_match_directed_oracle() {
        let database = db();
        let idx = DirectedTreePiIndex::build(database.clone(), TreePiParams::quick());
        let queries = [
            digraph_from(&[0, 1], &[(0, 1, 0)]),               // a→b
            digraph_from(&[1, 0], &[(0, 1, 0)]),               // b→a (reverse!)
            digraph_from(&[0, 1, 2], &[(0, 1, 0), (1, 2, 0)]), // chain
            digraph_from(&[1, 2], &[(0, 1, 0), (1, 0, 0)]),    // 2-cycle
            digraph_from(&[0, 1, 1], &[(0, 1, 0), (0, 2, 0)]), // out-star
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for (i, q) in queries.iter().enumerate() {
            let r = idx.query(q, &mut rng);
            assert_eq!(r.matches, oracle(&database, q), "directed query {i}");
        }
    }

    #[test]
    fn direction_distinguishes_answers() {
        // a→b is in graph 0 (and others); b→a pattern appears where arcs
        // run 1-label→0-label, i.e. graph 1.
        let database = db();
        let idx = DirectedTreePiIndex::build(database.clone(), TreePiParams::quick());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let fwd = digraph_from(&[0, 1], &[(0, 1, 0)]);
        let bwd = digraph_from(&[1, 0], &[(0, 1, 0)]);
        let rf = idx.query(&fwd, &mut rng).matches;
        let rb = idx.query(&bwd, &mut rng).matches;
        assert_ne!(rf, rb, "direction must matter");
        assert_eq!(rf, oracle(&database, &fwd));
        assert_eq!(rb, oracle(&database, &bwd));
    }

    #[test]
    fn directed_maintenance() {
        let database = db();
        let mut idx = DirectedTreePiIndex::build(database.clone(), TreePiParams::quick());
        let extra = digraph_from(&[0, 1, 2], &[(0, 1, 0), (1, 2, 0), (0, 2, 0)]);
        let gid = idx.insert(&extra);
        let q = digraph_from(&[0, 2], &[(0, 1, 0)]); // a→c arc
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let r = idx.query(&q, &mut rng);
        assert!(r.matches.contains(&gid));
        idx.remove(gid);
        let r2 = idx.query(&q, &mut rng);
        assert!(!r2.matches.contains(&gid));
    }
}
