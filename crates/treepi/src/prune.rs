//! Pruning by Center Distance Constraints (paper §5.2.2, Algorithm 2).
//!
//! If `q ⊆ g` via embedding `f`, then the images under `f` of the centers
//! of `q`'s partitioned feature subtrees are stored center positions in
//! `g`, and because an embedding maps paths to walks,
//! `d_g(f(x), f(y)) ≤ d_q(x, y)` for every vertex pair. A candidate graph
//! therefore survives only if *some* assignment of stored center positions
//! to the partition's parts satisfies every pairwise distance constraint.
//! (The constraint direction matches the rationale in the paper's prose —
//! its formal statement has the inequality typo'd the other way around.)
//!
//! Distances between centers (which may be edges) are measured as the
//! minimum over representative endpoint pairs, identically in `q` and `g`,
//! preserving the soundness argument above.
//!
//! Candidate center positions are additionally gated by the per-vertex
//! neighborhood signatures ([`crate::sig`]): an embedding maps each part's
//! center representatives onto the stored position's representatives, so a
//! position that is not signature-compatible with them can never be part
//! of a satisfying assignment. The gate shrinks the backtracking search
//! and kills candidates whose every position for some part is
//! incompatible — both sound, for the same reason the distance constraint
//! is.

use crate::index::TreePiIndex;
use crate::partition::Part;
use crate::sig::{self, VertexSig};
use graph_core::{bfs_distances, DistanceOracle, Graph, VertexId};
use rustc_hash::FxHashMap;
use tree_core::CenterPos;

/// Pairwise center distances of the partition's parts inside the query.
/// `dq[i][j]` = min distance between a center representative of part `i`
/// and one of part `j` (`u32::MAX` if disconnected).
pub fn query_center_distances(q: &Graph, parts: &[Part]) -> Vec<Vec<u32>> {
    // BFS once per distinct representative vertex.
    let mut rows: FxHashMap<VertexId, Vec<u32>> = FxHashMap::default();
    for p in parts {
        for &r in &p.center_reps_in_q {
            rows.entry(r).or_insert_with(|| bfs_distances(q, r));
        }
    }
    let n = parts.len();
    let mut dq = vec![vec![0u32; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut best = u32::MAX;
            for &a in &parts[i].center_reps_in_q {
                let row = &rows[&a];
                for &b in &parts[j].center_reps_in_q {
                    best = best.min(row[b.idx()]);
                }
            }
            dq[i][j] = best;
            dq[j][i] = best;
        }
    }
    dq
}

/// Distance between two center positions in `g` (min over representatives).
/// Shared by CDC pruning and reconstruction verification — the two must
/// measure identically or pruning would be unsound relative to the join.
pub(crate) fn pos_distance(
    g: &Graph,
    oracle: &mut DistanceOracle<'_>,
    a: CenterPos,
    b: CenterPos,
) -> u32 {
    let ra = a.representatives(g);
    let rb = b.representatives(g);
    let mut best = u32::MAX;
    for &x in &ra {
        for &y in &rb {
            best = best.min(oracle.dist(x, y));
        }
    }
    best
}

/// Whether graph `gid` admits an assignment of stored center positions to
/// the parts that satisfies all Center Distance Constraints (Algorithm 2's
/// per-graph test), with candidate positions signature-gated against the
/// query's vertex signatures.
pub fn satisfies_cdc(
    index: &TreePiIndex,
    q: &Graph,
    gid: u32,
    parts: &[Part],
    dq: &[Vec<u32>],
) -> bool {
    satisfies_cdc_obs(
        index,
        &sig::graph_sigs(q),
        gid,
        parts,
        dq,
        &obs::Shard::disabled(),
    )
}

/// [`satisfies_cdc`] taking the query's precomputed vertex signatures
/// (compute them once per query with [`sig::graph_sigs`], not per
/// candidate) and recording `prune.cdc_tests` and the BFS runs its
/// distance oracle performed (`graph.bfs`) into `shard`. Both counts depend
/// only on the candidate and the partition, never on which worker runs the
/// test, so batch totals stay thread-count invariant.
pub fn satisfies_cdc_obs(
    index: &TreePiIndex,
    qsigs: &[VertexSig],
    gid: u32,
    parts: &[Part],
    dq: &[Vec<u32>],
    shard: &obs::Shard,
) -> bool {
    shard.add("prune.cdc_tests", 1);
    let g = &index.db()[gid as usize];
    let hsigs = index.vertex_sigs(gid);
    // Candidates per part; fail fast when a part has no stored position at
    // all, or none its center representatives are signature-compatible
    // with. Incompatible positions are skipped inside the backtracking loop
    // rather than materialized into filtered lists — no allocation, and
    // each position's compatibility is evaluated at most once per level.
    let mut cands: Vec<&[CenterPos]> = Vec::with_capacity(parts.len());
    let mut compat: Vec<usize> = Vec::with_capacity(parts.len());
    for p in parts {
        let c = index.center_positions_of(p.feature, gid);
        let n = c
            .iter()
            .filter(|&&cp| sig::center_compatible(qsigs, hsigs, &p.center_reps_in_q, cp, g))
            .count();
        if n == 0 {
            shard.add("prune.center_sig_kills", 1);
            return false;
        }
        cands.push(c);
        compat.push(n);
    }
    // Assign most-constrained parts first: fewest *compatible* positions,
    // the actual branching factor of the search below.
    let mut order: Vec<usize> = (0..parts.len()).collect();
    order.sort_by_key(|&i| compat[i]);

    let mut oracle = DistanceOracle::new(g);
    let mut assigned: Vec<(usize, CenterPos)> = Vec::with_capacity(parts.len());

    #[allow(clippy::too_many_arguments)]
    fn backtrack(
        order: &[usize],
        k: usize,
        cands: &[&[CenterPos]],
        parts: &[Part],
        qsigs: &[VertexSig],
        hsigs: &[VertexSig],
        dq: &[Vec<u32>],
        g: &Graph,
        oracle: &mut DistanceOracle,
        assigned: &mut Vec<(usize, CenterPos)>,
    ) -> bool {
        if k == order.len() {
            return true;
        }
        let part_i = order[k];
        'cand: for &c in cands[part_i] {
            if !sig::center_compatible(qsigs, hsigs, &parts[part_i].center_reps_in_q, c, g) {
                continue 'cand;
            }
            for &(part_j, cj) in assigned.iter() {
                let limit = dq[part_i][part_j];
                // BFS from the assigned center: its row is shared by every
                // candidate center probed at this level.
                if limit != u32::MAX && pos_distance(g, oracle, cj, c) > limit {
                    continue 'cand;
                }
            }
            assigned.push((part_i, c));
            if backtrack(
                order,
                k + 1,
                cands,
                parts,
                qsigs,
                hsigs,
                dq,
                g,
                oracle,
                assigned,
            ) {
                return true;
            }
            assigned.pop();
        }
        false
    }

    let ok = backtrack(
        &order,
        0,
        &cands,
        parts,
        qsigs,
        hsigs,
        dq,
        g,
        &mut oracle,
        &mut assigned,
    );
    shard.add("graph.bfs", oracle.bfs_runs());
    ok
}

/// Algorithm 2: reduce the filtered set `P_q` to `P'_q`.
pub fn center_prune(
    index: &TreePiIndex,
    q: &Graph,
    pq: &[u32],
    parts: &[Part],
    dq: &[Vec<u32>],
) -> Vec<u32> {
    center_prune_obs(
        index,
        &sig::graph_sigs(q),
        pq,
        parts,
        dq,
        &obs::Shard::disabled(),
    )
}

/// [`center_prune`] over precomputed query signatures, recording
/// per-candidate CDC metrics into `shard`.
pub fn center_prune_obs(
    index: &TreePiIndex,
    qsigs: &[VertexSig],
    pq: &[u32],
    parts: &[Part],
    dq: &[Vec<u32>],
    shard: &obs::Shard,
) -> Vec<u32> {
    pq.iter()
        .copied()
        .filter(|&gid| satisfies_cdc_obs(index, qsigs, gid, parts, dq, shard))
        .collect()
}

/// [`center_prune`] split across `threads` workers. Each candidate's CDC
/// test is independent (every worker builds its own `DistanceOracle` per
/// graph), so the set is chunked contiguously and the per-chunk results are
/// concatenated in chunk order — the output is exactly `center_prune`'s.
pub fn center_prune_threaded(
    index: &TreePiIndex,
    q: &Graph,
    pq: &[u32],
    parts: &[Part],
    dq: &[Vec<u32>],
    threads: usize,
) -> Vec<u32> {
    center_prune_threaded_obs(index, q, pq, parts, dq, threads, &obs::Shard::disabled())
}

/// [`center_prune_threaded`] with metrics: each worker records into a
/// [`obs::Shard::fork`] of `shard`, merged back after the join, so counter
/// totals are identical to the sequential run for any `threads`.
///
/// This is the *scoped reference* implementation (spawn per stage); the
/// serving path dispatches through [`center_prune_pool_obs`] instead. The
/// two share chunking and merge order, so their outputs are identical.
pub fn center_prune_threaded_obs(
    index: &TreePiIndex,
    q: &Graph,
    pq: &[u32],
    parts: &[Part],
    dq: &[Vec<u32>],
    threads: usize,
    shard: &obs::Shard,
) -> Vec<u32> {
    // Query signatures are computed once and shared read-only by every
    // worker — they depend only on q.
    let qsigs = sig::graph_sigs(q);
    let threads = threads.clamp(1, pq.len().max(1));
    if threads == 1 {
        return center_prune_obs(index, &qsigs, pq, parts, dq, shard);
    }
    let chunk_size = pq.len().div_ceil(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = pq
            .chunks(chunk_size)
            .map(|chunk| {
                let worker = shard.fork();
                let qsigs = &qsigs;
                s.spawn(move || {
                    let kept = center_prune_obs(index, qsigs, chunk, parts, dq, &worker);
                    (kept, worker)
                })
            })
            .collect();
        let mut out = Vec::new();
        for h in handles {
            let (kept, worker) = h.join().expect("prune worker panicked");
            out.extend(kept);
            shard.merge(worker);
        }
        out
    })
}

/// [`center_prune_threaded_obs`] dispatched on a persistent
/// [`graph_core::par::Pool`] instead of freshly spawned scoped threads:
/// the candidate set is chunked contiguously into up to `threads` pool
/// seats (`Pool::fork_join_obs`, shard forks merged in rank order), so the
/// output and every merged counter are bit-identical to the scoped and
/// serial paths.
#[allow(clippy::too_many_arguments)]
pub fn center_prune_pool_obs(
    index: &TreePiIndex,
    q: &Graph,
    pq: &[u32],
    parts: &[Part],
    dq: &[Vec<u32>],
    pool: &graph_core::par::Pool,
    threads: usize,
    shard: &obs::Shard,
) -> Vec<u32> {
    let qsigs = sig::graph_sigs(q);
    let threads = threads.clamp(1, pq.len().max(1));
    if threads == 1 {
        return center_prune_obs(index, &qsigs, pq, parts, dq, shard);
    }
    let chunk_size = pq.len().div_ceil(threads);
    let chunks: Vec<&[u32]> = pq.chunks(chunk_size).collect();
    pool.fork_join_obs(chunks.len(), shard, |rank, worker| {
        center_prune_obs(index, &qsigs, chunks[rank], parts, dq, worker)
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TreePiParams;
    use crate::partition::{partition_runs, PartitionRuns};
    use graph_core::graph_from;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Figure 7's scenario in miniature: the query is two labeled edges at
    /// distance 1; one database graph places them adjacently, the other
    /// far apart. Filtering keeps both; CDC pruning must drop the far one.
    #[test]
    fn cdc_drops_distance_violators() {
        let near = graph_from(&[5, 0, 6, 0], &[(0, 1, 1), (1, 2, 2), (2, 3, 0)]);
        // same two feature edges, separated by a 4-hop path
        let far = graph_from(
            &[5, 0, 0, 0, 0, 0, 6],
            &[
                (0, 1, 1),
                (1, 2, 0),
                (2, 3, 0),
                (3, 4, 0),
                (4, 5, 0),
                (5, 6, 2),
            ],
        );
        let q = graph_from(&[5, 0, 6], &[(0, 1, 1), (1, 2, 2)]);
        let db = vec![near.clone(), far.clone()];
        let idx = TreePiIndex::build(
            db,
            TreePiParams {
                sigma: mining::SigmaFn {
                    alpha: 1,
                    beta: 10.0,
                    eta: 1,
                },
                ..TreePiParams::quick()
            },
        );
        // With η = 1 only single-edge features exist, so every partition
        // consists of the two query edges.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let PartitionRuns::Ok { min_partition, sf } = partition_runs(&q, &idx, 4, &mut rng) else {
            panic!("all query edges are features");
        };
        assert_eq!(min_partition.len(), 2);
        let pq = crate::filter::filter(&idx, &sf);
        assert_eq!(pq, vec![0, 1], "filtering alone keeps the false positive");
        let dq = query_center_distances(&q, &min_partition);
        let pruned = center_prune(&idx, &q, &pq, &min_partition, &dq);
        assert_eq!(pruned, vec![0], "CDC must prune the far-apart graph");
    }

    #[test]
    fn cdc_never_prunes_true_positives() {
        // Database of small graphs; queries cut from them; the true support
        // must always survive pruning.
        let db = vec![
            graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
            graph_from(&[0, 1, 0], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(
                &[1, 0, 1, 0, 1],
                &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 4, 0)],
            ),
        ];
        let idx = TreePiIndex::build(db.clone(), TreePiParams::quick());
        let q = graph_from(&[0, 1, 0], &[(0, 1, 0), (1, 2, 0)]);
        let truth: Vec<u32> = db
            .iter()
            .enumerate()
            .filter(|(_, g)| graph_core::is_subgraph_isomorphic(&q, g))
            .map(|(i, _)| i as u32)
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10 {
            let PartitionRuns::Ok { min_partition, sf } = partition_runs(&q, &idx, 3, &mut rng)
            else {
                panic!()
            };
            let pq = crate::filter::filter(&idx, &sf);
            let dq = query_center_distances(&q, &min_partition);
            let pruned = center_prune(&idx, &q, &pq, &min_partition, &dq);
            for t in &truth {
                assert!(pruned.contains(t), "true positive {t} was pruned");
            }
        }
    }

    #[test]
    fn query_distances_symmetric_and_zero_diagonal() {
        let db = vec![graph_from(&[0, 1, 2], &[(0, 1, 0), (1, 2, 1)])];
        let idx = TreePiIndex::build(
            db,
            TreePiParams {
                sigma: mining::SigmaFn {
                    alpha: 1,
                    beta: 10.0,
                    eta: 1,
                },
                ..TreePiParams::quick()
            },
        );
        let q = graph_from(&[0, 1, 2], &[(0, 1, 0), (1, 2, 1)]);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let PartitionRuns::Ok { min_partition, .. } = partition_runs(&q, &idx, 1, &mut rng) else {
            panic!()
        };
        let dq = query_center_distances(&q, &min_partition);
        let n = min_partition.len();
        for (i, row) in dq.iter().enumerate() {
            assert_eq!(row[i], 0);
            for (j, cell) in row.iter().enumerate() {
                assert_eq!(*cell, dq[j][i]);
            }
        }
        assert_eq!(dq.len(), n);
    }
}
