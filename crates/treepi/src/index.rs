//! Index construction and maintenance (paper §4 "Database Preprocessing"
//! and §7.1 "Insert/Delete Maintenance").
//!
//! Construction mines the σ-frequent subtrees, shrinks them by γ, and for
//! every surviving feature records (a) its support set and (b) its **center
//! positions** in every supporting graph — the location information that
//! prior indexes had to discard and that powers TreePi's pruning and
//! verification.

use crate::params::TreePiParams;
use crate::sig::{self, VertexSig};
use crate::trie::{CanonTrie, FeatureId};
use graph_core::Graph;
use mining::{shrink_features_pool, SupportSet};
use rustc_hash::FxHashMap;
use tree_core::{center, center_positions, CanonString, Center, CenterPos, Tree};

/// One indexed feature tree.
#[derive(Clone, Debug)]
pub struct Feature {
    /// The pattern tree.
    pub tree: Tree,
    /// Its canonical string (trie key).
    pub canon: CanonString,
    /// Sorted ids of database graphs containing the tree.
    pub support: SupportSet,
    /// The center of the pattern itself (vertex or edge; Theorem 1).
    pub center: Center,
}

impl Feature {
    /// Edge size of the feature.
    pub fn size(&self) -> usize {
        self.tree.edge_count()
    }
}

/// Statistics of an index build.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildStats {
    /// Frequent trees before shrinking.
    pub mined: usize,
    /// Features after shrinking (= index size, the paper's Figure 9 metric).
    pub features: usize,
    /// Total (feature, graph) center-position lists stored.
    pub center_entries: usize,
    /// Total stored center positions.
    pub center_positions: usize,
    /// Milliseconds spent mining.
    pub t_mine_ms: u128,
    /// Milliseconds spent computing center positions.
    pub t_centers_ms: u128,
    /// Whether mining hit a hard limit.
    pub truncated: bool,
}

/// The TreePi index over a graph database.
///
/// Graph ids are stable across insertions and deletions; deleted slots
/// become inactive tombstones (queries never return them because supports
/// are updated on delete).
///
/// The index is `Clone` so the serving layer can publish copy-on-write
/// snapshots: readers pin an `Arc<TreePiIndex>` while writers clone the
/// current version, apply §7.1 maintenance to the copy, and atomically
/// swap it in (see [`crate::Engine`]).
#[derive(Clone)]
pub struct TreePiIndex {
    pub(crate) db: Vec<Graph>,
    pub(crate) active: Vec<bool>,
    pub(crate) features: Vec<Feature>,
    pub(crate) trie: CanonTrie,
    /// centers[feature][graph id] = positions where an embedding of the
    /// feature is centered (paper §4.2.1 bit-per-vertex/edge store).
    pub(crate) centers: Vec<FxHashMap<u32, Vec<CenterPos>>>,
    /// sigs[graph id] = per-vertex neighborhood signatures (see
    /// [`crate::sig`]). Invariant: always equal to
    /// [`sig::graph_sigs`] of the stored payload — a pure function of
    /// `db[gid]`, maintained through build, §7.1 repairs, and re-mining.
    pub(crate) sigs: Vec<Vec<VertexSig>>,
    pub(crate) params: TreePiParams,
    pub(crate) stats: BuildStats,
    /// Bumped by every successful [`Self::insert`] / [`Self::remove`]
    /// (§7.1 maintenance). Epoch-keyed caches of query answers compare
    /// this to decide whether their entries are still valid.
    pub(crate) maintenance_epoch: u64,
}

/// Per-feature center store: graph id → positions.
type CenterTable = FxHashMap<u32, Vec<CenterPos>>;

/// Per-vertex signatures of every graph, computed on `pool` in contiguous
/// chunks placed back in rank order — identical at any pool size because
/// [`sig::graph_sigs`] is a pure function of each graph.
fn compute_sigs_pool(
    db: &[Graph],
    pool: &graph_core::par::Pool,
    shard: &obs::Shard,
) -> Vec<Vec<VertexSig>> {
    let threads = pool.parallelism().max(1).min(db.len().max(1));
    if threads <= 1 {
        return db.iter().map(sig::graph_sigs).collect();
    }
    let chunk = db.len().div_ceil(threads);
    let outs = pool.fork_join_obs(threads, shard, |rank, _wshard| {
        let lo = (rank * chunk).min(db.len());
        let hi = ((rank + 1) * chunk).min(db.len());
        db[lo..hi].iter().map(sig::graph_sigs).collect::<Vec<_>>()
    });
    outs.into_iter().flatten().collect()
}

/// Center extraction for one mined tree: re-validate each supporting graph
/// (mining may over-approximate under truncation) and collect the center
/// positions. Returns `None` only when every support entry was spurious.
fn extract_feature(
    db: &[Graph],
    mut m: mining::MinedTree,
    shard: &obs::Shard,
) -> Option<(Feature, CenterTable)> {
    let mut per_graph = FxHashMap::default();
    m.support.retain(|&gid| {
        let pos = tree_core::center_positions_obs(&m.tree, &db[gid as usize], shard);
        if pos.is_empty() {
            return false;
        }
        per_graph.insert(gid, pos);
        true
    });
    if m.support.is_empty() {
        return None; // only possible under mining truncation
    }
    Some((
        Feature {
            center: center(&m.tree),
            tree: m.tree,
            canon: m.canon,
            support: m.support,
        },
        per_graph,
    ))
}

impl TreePiIndex {
    /// Build the index over `db` (paper §4: mine → shrink → store
    /// supports and center positions). Center extraction fans out over all
    /// available cores.
    pub fn build(db: Vec<Graph>, params: TreePiParams) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::build_with_threads(db, params, threads)
    }

    /// [`Self::build`] with an explicit worker count (1 = fully
    /// sequential; useful for benchmarking the parallel speedup).
    pub fn build_with_threads(db: Vec<Graph>, params: TreePiParams, threads: usize) -> Self {
        Self::build_with_threads_obs(db, params, threads, &obs::Shard::disabled())
    }

    /// [`Self::build`] recording build metrics into `shard`: `build.mine` /
    /// `build.shrink` / `build.centers` stage spans, the miner's per-level
    /// candidate and pruned-by-support counters (`mine.level{N}.*`, via
    /// [`mining::mine_frequent_trees_obs`]), and final index-shape counters
    /// (`build.*`). Center extraction fans out over all available cores.
    pub fn build_obs(db: Vec<Graph>, params: TreePiParams, shard: &obs::Shard) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::build_with_threads_obs(db, params, threads, shard)
    }

    /// [`Self::build_obs`] with an explicit worker count, used for both the
    /// mining and the center-extraction stage. Spins up one
    /// [`graph_core::par::Pool`] and runs the entire build on it via
    /// [`Self::build_with_pool_obs`].
    pub fn build_with_threads_obs(
        db: Vec<Graph>,
        params: TreePiParams,
        threads: usize,
        shard: &obs::Shard,
    ) -> Self {
        let pool = graph_core::par::Pool::new(threads.max(1));
        Self::build_with_pool_obs(db, params, &pool, shard)
    }

    /// [`Self::build_obs`] on a caller-owned worker pool: every stage
    /// (mining levels, canonical-string passes, shrinking, center
    /// extraction) dispatches onto `pool`, so one set of worker threads is
    /// reused across the whole build instead of re-spawning per stage.
    /// Parallel workers record into [`obs::Shard::fork`]s merged after the
    /// join, and the miner's merge is canonical (see
    /// [`mining::mine_frequent_trees_pool_obs`]), so the built index and
    /// every non-`engine.*`/non-`pool.*` counter are identical to the
    /// sequential build for any pool size.
    pub fn build_with_pool_obs(
        db: Vec<Graph>,
        params: TreePiParams,
        pool: &graph_core::par::Pool,
        shard: &obs::Shard,
    ) -> Self {
        Self::build_with_pool_obs_sampled(
            db,
            params,
            pool,
            shard,
            &obs::series::Sampler::disabled(),
        )
    }

    /// [`Self::build_with_pool_obs`] additionally recording one labelled
    /// time-series sample at every phase boundary (mine → shrink →
    /// centers) into `sampler` — heap occupancy plus the phase's output
    /// size, so `treepi build --timeseries` shows where memory and
    /// features accrue during construction. Short builds still yield a
    /// useful series because boundary samples bypass the interval gate.
    pub fn build_with_pool_obs_sampled(
        db: Vec<Graph>,
        params: TreePiParams,
        pool: &graph_core::par::Pool,
        shard: &obs::Shard,
        sampler: &obs::series::Sampler,
    ) -> Self {
        let sample_phase = |label: &str, output_size: usize| {
            let mut values: Vec<(&str, u64)> = vec![("build.phase_output", output_size as u64)];
            if obs::alloc::installed() {
                values.push((obs::names::GAUGE_ALLOC_LIVE, obs::alloc::live_bytes()));
            }
            sampler.sample(Some(label), &values);
        };
        sample_phase("build.start", db.len());
        let t0 = std::time::Instant::now();
        let mine_span = shard.span("build.mine");
        let (mined, mstats) =
            mining::mine_frequent_trees_pool_obs(&db, &params.sigma, &params.limits, pool, shard);
        drop(mine_span);
        let mined_count = mined.len();
        sample_phase("build.mine", mined_count);
        let shrink_span = shard.span("build.shrink");
        let kept = shrink_features_pool(mined, params.gamma, pool);
        drop(shrink_span);
        sample_phase("build.shrink", kept.len());
        shard.add("build.mined", mined_count as u64);
        shard.add("build.features_kept", kept.len() as u64);
        let t_mine = t0.elapsed().as_millis();

        // Center extraction is independent per feature: workers self-schedule
        // single features off an atomic counter. Features are ordered by
        // (size, canon) and their costs are wildly skewed — small features
        // have huge support sets to scan, large ones pricey embeddings — so
        // static contiguous chunks leave most workers idle behind one hot
        // chunk. Results are placed back by feature index, so the output
        // (and every table derived from it) is identical to the sequential
        // pass.
        let t1 = std::time::Instant::now();
        let centers_span = shard.span("build.centers");
        let threads = pool.parallelism().max(1).min(kept.len().max(1));
        let extracted: Vec<Option<(Feature, CenterTable)>> = if threads == 1 {
            kept.into_iter()
                .map(|m| extract_feature(&db, m, shard))
                .collect()
        } else {
            let db_ref = &db;
            let kept_ref = &kept;
            let next = std::sync::atomic::AtomicUsize::new(0);
            let outs = pool.fork_join_obs(threads, shard, |_rank, wshard| {
                let _wall = wshard.span("engine.centers.worker_wall");
                let mut out: Vec<(usize, Option<(Feature, CenterTable)>)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= kept_ref.len() {
                        break;
                    }
                    out.push((i, extract_feature(db_ref, kept_ref[i].clone(), wshard)));
                }
                out
            });
            let mut extracted: Vec<Option<(Feature, CenterTable)>> =
                (0..kept.len()).map(|_| None).collect();
            for (i, item) in outs.into_iter().flatten() {
                extracted[i] = item;
            }
            extracted
        };
        drop(centers_span);

        let mut features = Vec::with_capacity(extracted.len());
        let mut trie = CanonTrie::new();
        let mut centers: Vec<FxHashMap<u32, Vec<CenterPos>>> = Vec::with_capacity(extracted.len());
        let mut center_entries = 0usize;
        let mut n_positions = 0usize;
        for item in extracted.into_iter().flatten() {
            let (feature, per_graph) = item;
            let fid = FeatureId(features.len() as u32);
            center_entries += per_graph.len();
            n_positions += per_graph.values().map(|v| v.len()).sum::<usize>();
            trie.insert(&feature.canon, fid);
            centers.push(per_graph);
            features.push(feature);
        }
        // Per-vertex neighborhood signatures (see `crate::sig`): a pure
        // function of each graph, so contiguous chunks + rank-order
        // placement make the result identical at any pool size.
        let sigs_span = shard.span("build.sigs");
        let sigs = compute_sigs_pool(&db, pool, shard);
        drop(sigs_span);
        shard.add(
            "build.sig_vertices",
            sigs.iter().map(|s| s.len() as u64).sum(),
        );

        sample_phase("build.centers", features.len());
        shard.add("build.features", features.len() as u64);
        shard.add("build.center_entries", center_entries as u64);
        shard.add("build.center_positions", n_positions as u64);
        let stats = BuildStats {
            mined: mined_count,
            features: features.len(),
            center_entries,
            center_positions: n_positions,
            t_mine_ms: t_mine,
            t_centers_ms: t1.elapsed().as_millis(),
            truncated: mstats.truncated,
        };
        let active = vec![true; db.len()];
        Self {
            db,
            active,
            features,
            trie,
            centers,
            sigs,
            params,
            stats,
            maintenance_epoch: 0,
        }
    }

    /// The database (including inactive tombstones; see [`Self::is_active`]).
    pub fn db(&self) -> &[Graph] {
        &self.db
    }

    /// Whether graph `gid` is still in the database.
    pub fn is_active(&self, gid: u32) -> bool {
        self.active.get(gid as usize).copied().unwrap_or(false)
    }

    /// Number of active graphs.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// The indexed features.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Number of features (the paper's "index size", Figure 9).
    pub fn feature_count(&self) -> usize {
        self.features.len()
    }

    /// Configuration used to build the index.
    pub fn params(&self) -> &TreePiParams {
        &self.params
    }

    /// Build statistics.
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// The maintenance epoch: starts at 0 and is bumped by every
    /// successful [`Self::insert`] / [`Self::remove`] (and by
    /// [`Self::rebuild`]). Any cache of query answers keyed on this value
    /// must drop its entries when the epoch changes — that is the
    /// invalidation contract the serving result cache relies on.
    pub fn maintenance_epoch(&self) -> u64 {
        self.maintenance_epoch
    }

    /// Look up a canonical string in the feature trie.
    pub fn feature_by_canon(&self, canon: &CanonString) -> Option<FeatureId> {
        self.trie.get(canon)
    }

    /// The feature with id `fid`.
    pub fn feature(&self, fid: FeatureId) -> &Feature {
        &self.features[fid.idx()]
    }

    /// Stored center positions of feature `fid` in graph `gid` (empty slice
    /// if the graph does not support the feature).
    pub fn center_positions_of(&self, fid: FeatureId, gid: u32) -> &[CenterPos] {
        self.centers[fid.idx()]
            .get(&gid)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Per-vertex neighborhood signatures of graph `gid` (see
    /// [`crate::sig`]); empty for the blank payload of a re-mined
    /// tombstone. Indexing a gid ≥ `db.len()` panics, like `db()` would.
    pub fn vertex_sigs(&self, gid: u32) -> &[VertexSig] {
        &self.sigs[gid as usize]
    }

    /// Does every stored signature vector equal a fresh recompute from its
    /// graph payload? This is the invariant §7.1 maintenance and re-mining
    /// must preserve (and what lets v2 index files reload losslessly);
    /// exposed for tests and debug assertions.
    pub fn sigs_consistent(&self) -> bool {
        self.sigs.len() == self.db.len()
            && self
                .db
                .iter()
                .zip(&self.sigs)
                .all(|(g, s)| sig::graph_sigs(g) == *s)
    }

    /// Insert a graph (paper §7.1): "we simply update the support sets and
    /// center positions of the existing feature trees". Returns the new
    /// graph's id. The feature set itself is not re-mined — call
    /// [`Self::rebuild`] after bulk changes — with one exception: any
    /// single-edge tree of `g` that is not yet indexed becomes a new
    /// feature, because query completeness (the `MissingFeature` empty-
    /// support proof and worst-case partitioning) relies on the σ(1) = 1
    /// invariant that *every* edge in the database is a feature.
    pub fn insert(&mut self, g: Graph) -> u32 {
        let gid = self.db.len() as u32;
        // Update existing features, cheapest (smallest) trees first, with a
        // label pre-check. Storage order is NOT size-sorted once earlier
        // inserts have appended novel single-edge features behind larger
        // mined trees, so scan through an explicitly size-ordered view
        // (stable: ties keep storage order). The result is order-
        // independent — every matching feature gets the same support/center
        // update — this only front-loads the cheap embeddings.
        let mut order: Vec<u32> = (0..self.features.len() as u32).collect();
        order.sort_by_key(|&i| self.features[i as usize].size());
        for &i in &order {
            let i = i as usize;
            let f = &mut self.features[i];
            if !may_contain(&g, f.tree.graph()) {
                continue;
            }
            let pos = center_positions(&f.tree, &g);
            if pos.is_empty() {
                continue;
            }
            // Supports are sorted; gid is larger than any existing id.
            f.support.push(gid);
            self.centers[i].insert(gid, pos);
        }
        // Register novel single-edge trees as fresh features.
        for e in g.edges() {
            let t = {
                let mut b = graph_core::GraphBuilder::with_capacity(2, 1);
                let (lu, lv) = (g.vlabel(e.u), g.vlabel(e.v));
                let u = b.add_vertex(lu.min(lv));
                let v = b.add_vertex(lu.max(lv));
                b.add_edge(u, v, e.label).expect("single edge");
                Tree::from_graph(b.build()).expect("an edge is a tree")
            };
            let canon = tree_core::canonical_string(&t);
            if self.trie.contains(&canon) {
                continue;
            }
            let fid = FeatureId(self.features.len() as u32);
            let pos = center_positions(&t, &g);
            debug_assert!(!pos.is_empty(), "g contains its own edges");
            let mut per_graph = FxHashMap::default();
            per_graph.insert(gid, pos);
            self.trie.insert(&canon, fid);
            self.centers.push(per_graph);
            self.features.push(Feature {
                center: center(&t),
                tree: t,
                canon,
                support: vec![gid],
            });
        }
        self.sigs.push(sig::graph_sigs(&g));
        self.db.push(g);
        self.active.push(true);
        self.maintenance_epoch += 1;
        gid
    }

    /// Delete graph `gid` (paper §7.1): remove it from every feature's
    /// support set and center store. Returns whether the graph was active.
    pub fn remove(&mut self, gid: u32) -> bool {
        if !self.is_active(gid) {
            return false;
        }
        self.active[gid as usize] = false;
        for (i, f) in self.features.iter_mut().enumerate() {
            if let Ok(pos) = f.support.binary_search(&gid) {
                f.support.remove(pos);
                self.centers[i].remove(&gid);
            }
        }
        self.maintenance_epoch += 1;
        true
    }

    /// Rebuild the index from the current active graphs (the paper's advice
    /// when "too many insert/delete operations" have accumulated). Graph
    /// ids are re-densified; returns the new index. The maintenance epoch
    /// advances past the old one (a rebuild changes answers for queries
    /// holding stale graph ids), never resets.
    pub fn rebuild(self) -> Self {
        let epoch = self.maintenance_epoch + 1;
        let graphs: Vec<Graph> = self
            .db
            .into_iter()
            .zip(self.active)
            .filter_map(|(g, a)| a.then_some(g))
            .collect();
        let mut idx = Self::build(graphs, self.params);
        idx.maintenance_epoch = epoch;
        idx
    }

    /// Re-mine the feature set from the current active graphs *without*
    /// renumbering graph ids (contrast [`Self::rebuild`], which
    /// re-densifies): tombstoned slots participate in the mining database
    /// as empty graphs, so every support set and center table in the
    /// result uses the same positional gids as the source index and live
    /// traffic can keep resolving ids across a snapshot swap.
    ///
    /// Because σ(s) is an absolute threshold (Eq. 1, not a fraction of
    /// |D|), blanked tombstones contribute nothing to any support set and
    /// the mined feature set equals a fresh [`Self::build`] over just the
    /// active graphs, modulo the gid embedding. Tombstoned graph payloads
    /// are dropped in the copy, so a re-mine doubles as the tombstone
    /// memory reclamation `rebuild` would perform.
    ///
    /// The maintenance epoch carries over unchanged; the caller advances
    /// it when publishing the result (an epoch that moved backwards would
    /// break cache invalidation).
    pub fn remine_with_pool(&self, pool: &graph_core::par::Pool) -> Self {
        let db: Vec<Graph> = self
            .db
            .iter()
            .zip(&self.active)
            .map(|(g, &alive)| {
                if alive {
                    g.clone()
                } else {
                    graph_core::GraphBuilder::with_capacity(0, 0).build()
                }
            })
            .collect();
        let mut idx =
            Self::build_with_pool_obs(db, self.params.clone(), pool, &obs::Shard::disabled());
        idx.active = self.active.clone();
        idx.maintenance_epoch = self.maintenance_epoch;
        idx
    }

    /// An index over zero graphs with no features — a placeholder used
    /// when moving the real index out of shared state (see
    /// [`crate::Engine::into_index`]).
    pub(crate) fn empty_like(params: TreePiParams) -> Self {
        Self {
            db: Vec::new(),
            active: Vec::new(),
            features: Vec::new(),
            trie: CanonTrie::new(),
            centers: Vec::new(),
            sigs: Vec::new(),
            params,
            stats: BuildStats::default(),
            maintenance_epoch: 0,
        }
    }

    /// Per-structure heap estimate of the whole index (database, feature
    /// trees, support sets, center tables, trie). Length-based, so the
    /// numbers are deterministic for a given index regardless of build
    /// history; recorded as `mem.index.*` gauges by
    /// [`Self::record_mem_gauges`].
    ///
    /// Removed (tombstoned) graphs are reported separately in
    /// [`IndexMemory::tombstones_bytes`] and excluded from `db_bytes` and
    /// [`IndexMemory::total`] — a churn-heavy serving host must see its
    /// *active* footprint, not bytes a [`Self::rebuild`] would reclaim.
    pub fn memory_breakdown(&self) -> IndexMemory {
        use std::mem::size_of;
        let mut db_bytes = self.active.len() * size_of::<bool>();
        let mut tombstones_bytes = 0usize;
        for (g, &alive) in self.db.iter().zip(&self.active) {
            if alive {
                db_bytes += g.heap_bytes();
            } else {
                tombstones_bytes += g.heap_bytes();
            }
        }
        let features_bytes = self
            .features
            .iter()
            .map(|f| f.tree.heap_bytes() + f.canon.heap_bytes())
            .sum();
        let supports_bytes = self
            .features
            .iter()
            .map(|f| f.support.len() * size_of::<u32>())
            .sum();
        let centers_bytes = self
            .centers
            .iter()
            .map(|m| {
                m.len() * size_of::<(u32, Vec<CenterPos>)>()
                    + m.values()
                        .map(|v| v.len() * size_of::<CenterPos>())
                        .sum::<usize>()
            })
            .sum();
        let sigs_bytes = self.sigs.len() * size_of::<Vec<VertexSig>>()
            + self
                .sigs
                .iter()
                .map(|v| v.len() * size_of::<VertexSig>())
                .sum::<usize>();
        IndexMemory {
            db_bytes,
            tombstones_bytes,
            features_bytes,
            supports_bytes,
            centers_bytes,
            sigs_bytes,
            trie_bytes: self.trie.heap_bytes(),
        }
    }

    /// Total estimated heap bytes of the *active* index (all parts of
    /// [`Self::memory_breakdown`]; tombstoned graphs excluded).
    pub fn heap_bytes(&self) -> usize {
        self.memory_breakdown().total()
    }

    /// Estimated memory footprint of the index *payload* in bytes
    /// (supports + center positions + trie) — the structures the paper's
    /// Figure 9 "index size" metric counts, excluding the database and the
    /// feature trees themselves. Used by the index-size experiments.
    pub fn memory_estimate(&self) -> usize {
        let m = self.memory_breakdown();
        m.supports_bytes + m.centers_bytes + m.trie_bytes
    }

    /// Record [`Self::memory_breakdown`] as `mem.index.*` gauges.
    pub fn record_mem_gauges(&self, registry: &obs::Registry) {
        let m = self.memory_breakdown();
        registry.set_gauge(obs::names::GAUGE_INDEX_TOTAL, m.total() as u64);
        registry.set_gauge(obs::names::GAUGE_INDEX_DB, m.db_bytes as u64);
        registry.set_gauge(obs::names::GAUGE_INDEX_FEATURES, m.features_bytes as u64);
        registry.set_gauge(obs::names::GAUGE_INDEX_SUPPORTS, m.supports_bytes as u64);
        registry.set_gauge(obs::names::GAUGE_INDEX_CENTERS, m.centers_bytes as u64);
        registry.set_gauge(obs::names::GAUGE_INDEX_SIGS, m.sigs_bytes as u64);
        registry.set_gauge(obs::names::GAUGE_INDEX_TRIE, m.trie_bytes as u64);
        registry.set_gauge(
            obs::names::GAUGE_INDEX_TOMBSTONES,
            m.tombstones_bytes as u64,
        );
    }
}

/// Per-structure heap estimate of a [`TreePiIndex`], from
/// [`TreePiIndex::memory_breakdown`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexMemory {
    /// The *active* graph database (labels, edges, adjacency) plus the
    /// tombstone flag vector.
    pub db_bytes: usize,
    /// Heap bytes still held by removed (tombstoned) graphs — reclaimable
    /// via [`TreePiIndex::rebuild`], excluded from [`Self::total`].
    pub tombstones_bytes: usize,
    /// Feature pattern trees and their canonical strings.
    pub features_bytes: usize,
    /// Per-feature support sets.
    pub supports_bytes: usize,
    /// Center-position tables (graph id → positions, per feature).
    pub centers_bytes: usize,
    /// Per-vertex neighborhood signatures ([`crate::sig`]).
    pub sigs_bytes: usize,
    /// The canonical-string trie.
    pub trie_bytes: usize,
}

impl IndexMemory {
    /// Sum of all *active* parts ([`Self::tombstones_bytes`] excluded).
    pub fn total(&self) -> usize {
        self.db_bytes
            + self.features_bytes
            + self.supports_bytes
            + self.centers_bytes
            + self.sigs_bytes
            + self.trie_bytes
    }
}

/// Label-multiset pre-check: can `p` possibly embed in `g`?
pub(crate) fn may_contain(g: &Graph, p: &Graph) -> bool {
    if p.vertex_count() > g.vertex_count() || p.edge_count() > g.edge_count() {
        return false;
    }
    let mut counts: FxHashMap<u32, i64> = FxHashMap::default();
    for v in g.vertices() {
        *counts.entry(g.vlabel(v).0).or_insert(0) += 1;
    }
    for v in p.vertices() {
        let c = counts.entry(p.vlabel(v).0).or_insert(0);
        *c -= 1;
        if *c < 0 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::graph_from;
    use tree_core::canonical_string;

    fn tiny_db() -> Vec<Graph> {
        vec![
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
        ]
    }

    fn quick_index() -> TreePiIndex {
        TreePiIndex::build(tiny_db(), TreePiParams::quick())
    }

    #[test]
    fn build_produces_features_with_centers() {
        let idx = quick_index();
        assert!(idx.feature_count() > 0);
        assert_eq!(idx.active_count(), 3);
        for (i, f) in idx.features().iter().enumerate() {
            assert!(!f.support.is_empty());
            for &gid in &f.support {
                let pos = idx.center_positions_of(FeatureId(i as u32), gid);
                assert!(!pos.is_empty(), "feature {i} has no centers in {gid}");
            }
        }
    }

    #[test]
    fn trie_lookup_round_trips() {
        let idx = quick_index();
        for (i, f) in idx.features().iter().enumerate() {
            assert_eq!(idx.feature_by_canon(&f.canon), Some(FeatureId(i as u32)));
        }
    }

    #[test]
    fn single_edge_features_cover_database() {
        // σ(1) = 1 ⟹ every distinct edge of every graph is a feature.
        let idx = quick_index();
        for g in idx.db() {
            for e in g.edges() {
                let t =
                    tree_core::tree_from(&[g.vlabel(e.u).0, g.vlabel(e.v).0], &[(0, 1, e.label.0)]);
                let c = canonical_string(&t);
                assert!(idx.feature_by_canon(&c).is_some(), "missing edge feature");
            }
        }
    }

    #[test]
    fn insert_updates_supports_and_centers() {
        let mut idx = quick_index();
        let g = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]); // same as db[1]
        let gid = idx.insert(g);
        assert_eq!(gid, 3);
        assert!(idx.is_active(gid));
        assert_eq!(idx.active_count(), 4);
        // every feature supported by db[1] must now also list gid
        for (i, f) in idx.features().iter().enumerate() {
            if f.support.contains(&1) {
                assert!(f.support.contains(&gid), "feature {i} missed the insert");
                assert!(!idx.center_positions_of(FeatureId(i as u32), gid).is_empty());
            }
            // supports stay sorted
            let mut s = f.support.clone();
            s.sort_unstable();
            assert_eq!(s, f.support);
        }
    }

    #[test]
    fn insert_scans_features_size_ordered_and_pins_supports() {
        // First insert appends a novel single-edge feature (size 1) AFTER
        // the larger mined trees, so storage order is no longer
        // size-sorted...
        let mut idx = quick_index();
        let novel = graph_from(&[5, 6], &[(0, 1, 2)]);
        let g1 = idx.insert(novel.clone());
        let sizes: Vec<usize> = idx.features().iter().map(Feature::size).collect();
        assert!(
            sizes.windows(2).any(|w| w[0] > w[1]),
            "precondition: storage order must not be size-sorted ({sizes:?})"
        );
        // ...and a second insert must still update every matching feature
        // identically: supports sorted and complete, centers present —
        // including the tail-appended single-edge feature.
        let g2 = idx.insert(novel);
        for (i, f) in idx.features().iter().enumerate() {
            let mut sorted = f.support.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, f.support, "feature {i} support unsorted");
            assert_eq!(
                f.support.contains(&g1),
                f.support.contains(&g2),
                "feature {i}: identical graphs must have identical support"
            );
            for &gid in &f.support {
                assert!(
                    !idx.center_positions_of(FeatureId(i as u32), gid).is_empty(),
                    "feature {i} lost centers for {gid}"
                );
            }
        }
        let fid = idx
            .feature_by_canon(&canonical_string(&tree_core::tree_from(
                &[5, 6],
                &[(0, 1, 2)],
            )))
            .expect("novel edge became a feature");
        assert_eq!(idx.feature(fid).support, vec![g1, g2]);
    }

    #[test]
    fn maintenance_epoch_tracks_inserts_and_removes() {
        let mut idx = quick_index();
        assert_eq!(idx.maintenance_epoch(), 0);
        let gid = idx.insert(graph_from(&[0, 1], &[(0, 1, 0)]));
        assert_eq!(idx.maintenance_epoch(), 1);
        assert!(idx.remove(gid));
        assert_eq!(idx.maintenance_epoch(), 2);
        // No-op removes leave the epoch alone (nothing changed).
        assert!(!idx.remove(gid));
        assert_eq!(idx.maintenance_epoch(), 2);
        // Rebuild advances past the old epoch instead of resetting.
        let rebuilt = idx.rebuild();
        assert_eq!(rebuilt.maintenance_epoch(), 3);
    }

    #[test]
    fn remove_shrinks_reported_database_bytes() {
        let mut idx = quick_index();
        let before = idx.memory_breakdown();
        assert_eq!(before.tombstones_bytes, 0);
        let removed_bytes = idx.db()[1].heap_bytes();
        assert!(idx.remove(1));
        let after = idx.memory_breakdown();
        assert_eq!(after.db_bytes, before.db_bytes - removed_bytes);
        assert_eq!(after.tombstones_bytes, removed_bytes);
        assert!(after.total() < before.total());
        assert_eq!(idx.heap_bytes(), after.total());
        if obs::COMPILED_IN {
            let r = obs::Registry::new();
            idx.record_mem_gauges(&r);
            let snap = r.snapshot();
            assert_eq!(
                snap.gauge(obs::names::GAUGE_INDEX_DB),
                Some(after.db_bytes as u64)
            );
            assert_eq!(
                snap.gauge(obs::names::GAUGE_INDEX_TOMBSTONES),
                Some(removed_bytes as u64)
            );
            assert_eq!(
                snap.gauge(obs::names::GAUGE_INDEX_TOTAL),
                Some(after.total() as u64)
            );
        }
    }

    #[test]
    fn remove_clears_graph_everywhere() {
        let mut idx = quick_index();
        assert!(idx.remove(1));
        assert!(!idx.is_active(1));
        assert!(!idx.remove(1), "double remove must be a no-op");
        for (i, f) in idx.features().iter().enumerate() {
            assert!(!f.support.contains(&1));
            assert!(idx.center_positions_of(FeatureId(i as u32), 1).is_empty());
        }
    }

    #[test]
    fn rebuild_after_churn_matches_fresh_build() {
        let mut idx = quick_index();
        let extra = graph_from(&[1, 1], &[(0, 1, 1)]);
        idx.insert(extra.clone());
        idx.remove(0);
        let rebuilt = idx.rebuild();
        let fresh = TreePiIndex::build(
            vec![tiny_db()[1].clone(), tiny_db()[2].clone(), extra],
            TreePiParams::quick(),
        );
        assert_eq!(rebuilt.feature_count(), fresh.feature_count());
        let mut a: Vec<&CanonString> = rebuilt.features().iter().map(|f| &f.canon).collect();
        let mut b: Vec<&CanonString> = fresh.features().iter().map(|f| &f.canon).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn remine_preserves_gids_and_matches_fresh_build() {
        let mut idx = quick_index();
        let extra = graph_from(&[1, 1], &[(0, 1, 1)]);
        let gid = idx.insert(extra.clone());
        idx.remove(0);
        let pool = graph_core::par::Pool::new(2);
        let remined = idx.remine_with_pool(&pool);
        // Gids survive: same slot count, tombstone stays dead, insert stays live.
        assert_eq!(remined.db().len(), idx.db().len());
        assert!(!remined.is_active(0));
        assert!(remined.is_active(gid));
        assert_eq!(remined.maintenance_epoch(), idx.maintenance_epoch());
        // Tombstoned payload bytes are reclaimed by the copy.
        assert_eq!(remined.memory_breakdown().tombstones_bytes, 0);
        // Feature set and supports equal a fresh build over the survivors,
        // modulo the gid embedding (fresh gid i ↔ remined gid i+1 here).
        let fresh = TreePiIndex::build(
            vec![tiny_db()[1].clone(), tiny_db()[2].clone(), extra],
            TreePiParams::quick(),
        );
        assert_eq!(remined.feature_count(), fresh.feature_count());
        let by_canon: FxHashMap<&CanonString, &Feature> =
            fresh.features().iter().map(|f| (&f.canon, f)).collect();
        for f in remined.features() {
            let fresh_f = by_canon.get(&f.canon).expect("feature mined in both");
            let mapped: Vec<u32> = fresh_f.support.iter().map(|&g| g + 1).collect();
            assert_eq!(f.support, mapped, "support mismatch for {:?}", f.canon);
        }
    }

    #[test]
    fn insert_then_remove_is_identity_on_supports() {
        let mut idx = quick_index();
        let before: Vec<SupportSet> = idx.features().iter().map(|f| f.support.clone()).collect();
        let gid = idx.insert(graph_from(&[0, 1], &[(0, 1, 0)]));
        idx.remove(gid);
        let after: Vec<SupportSet> = idx.features().iter().map(|f| f.support.clone()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn memory_estimate_positive() {
        let idx = quick_index();
        assert!(idx.memory_estimate() > 0);
    }

    #[test]
    fn memory_breakdown_sums_and_feeds_gauges() {
        let idx = quick_index();
        let m = idx.memory_breakdown();
        assert!(m.db_bytes > 0);
        assert!(m.features_bytes > 0);
        assert!(m.supports_bytes > 0);
        assert!(m.centers_bytes > 0);
        assert!(m.trie_bytes > 0);
        assert!(m.sigs_bytes > 0);
        assert_eq!(
            m.total(),
            m.db_bytes
                + m.features_bytes
                + m.supports_bytes
                + m.centers_bytes
                + m.trie_bytes
                + m.sigs_bytes
        );
        assert_eq!(idx.heap_bytes(), m.total());
        assert_eq!(
            idx.memory_estimate(),
            m.supports_bytes + m.centers_bytes + m.trie_bytes
        );
        // Deterministic for the same build.
        assert_eq!(quick_index().memory_breakdown(), m);
        if obs::COMPILED_IN {
            let r = obs::Registry::new();
            idx.record_mem_gauges(&r);
            let snap = r.snapshot();
            assert_eq!(
                snap.gauge(obs::names::GAUGE_INDEX_TOTAL),
                Some(m.total() as u64)
            );
            assert_eq!(
                snap.gauge(obs::names::GAUGE_INDEX_TRIE),
                Some(m.trie_bytes as u64)
            );
        }
    }

    #[test]
    fn build_stats_recorded() {
        let idx = quick_index();
        let s = idx.stats();
        assert!(s.mined >= s.features);
        assert!(s.features == idx.feature_count());
        assert!(s.center_entries > 0);
        assert!(s.center_positions >= s.center_entries);
        assert!(!s.truncated);
    }

    #[test]
    fn may_contain_precheck() {
        let g = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
        let p_ok = graph_from(&[0, 1], &[(0, 1, 0)]);
        let p_too_many = graph_from(&[1, 1], &[(0, 1, 0)]);
        assert!(may_contain(&g, &p_ok));
        assert!(!may_contain(&g, &p_too_many));
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::params::TreePiParams;
    use graph_core::graph_from;

    #[test]
    fn parallel_build_equals_sequential() {
        let db = vec![
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
            graph_from(&[1, 1, 0, 0], &[(0, 1, 1), (1, 2, 0), (2, 3, 0)]),
        ];
        let seq = TreePiIndex::build_with_threads(db.clone(), TreePiParams::quick(), 1);
        let par = TreePiIndex::build_with_threads(db, TreePiParams::quick(), 4);
        assert_eq!(seq.feature_count(), par.feature_count());
        for (a, b) in seq.features().iter().zip(par.features()) {
            assert_eq!(a.canon, b.canon);
            assert_eq!(a.support, b.support);
        }
        for i in 0..seq.feature_count() as u32 {
            for gid in 0..4 {
                assert_eq!(
                    seq.center_positions_of(crate::trie::FeatureId(i), gid),
                    par.center_positions_of(crate::trie::FeatureId(i), gid)
                );
            }
        }
    }
}
