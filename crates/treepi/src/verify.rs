//! Reconstruction-based subgraph isomorphism (paper §5.3, Algorithm 3).
//!
//! Instead of a naive isomorphism search over the whole candidate graph,
//! verification re-finds each part of the query's Feature-Tree-Partition
//! rooted at its *stored center positions* (a rooted DFS, §5.3.2), then
//! joins the retrieved subtrees back into the query. The join never runs an
//! isomorphism test: two retrieved embeddings of the same part are
//! interchangeable iff they agree on the part's *boundary* (vertices shared
//! with other parts) and on the *set* of interior images — our realization
//! of the paper's Canonical Reconstruction Form (§5.3.1; see DESIGN.md
//! substitution 4). Each equivalence class is explored once per join node,
//! candidate center assignments are filtered by the Center Distance
//! Constraints (Algorithm 3's loop header), and the search unwinds on the
//! first complete reconstruction.

use crate::index::TreePiIndex;
use crate::partition::Part;
use crate::prune::pos_distance;
use crate::sig::{self, VertexSig};
use graph_core::{DistanceOracle, Graph, VertexId};
use rustc_hash::FxHashMap;
use smallvec::SmallVec;
use std::hash::{Hash, Hasher};
use std::ops::ControlFlow;
use tree_core::{CenterPos, CenteredMatcher};

const UNMAPPED: VertexId = VertexId(u32::MAX);

/// Arena-backed CRF dedup set for one join level. Signatures live
/// back-to-back in one buffer with a hash → signature-indices map for
/// membership; inserts compare slices exactly (the hash only narrows
/// the probe), so the semantics equal a `HashSet<Vec<u32>>` — with zero
/// steady-state allocations once the buffers reach the query's
/// high-water mark, instead of one `Vec` clone per distinct signature.
#[derive(Default)]
struct LevelDedup {
    arena: Vec<u32>,
    /// Prefix ends: signature `i` is `arena[ends[i-1]..ends[i]]`.
    ends: Vec<u32>,
    map: FxHashMap<u64, SmallVec<[u32; 2]>>,
}

impl LevelDedup {
    fn clear(&mut self) {
        self.arena.clear();
        self.ends.clear();
        self.map.clear();
    }

    fn slice(&self, i: usize) -> &[u32] {
        let lo = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.arena[lo..self.ends[i] as usize]
    }

    /// Insert `sig`; false (and nothing stored) if already present.
    fn insert_if_new(&mut self, sig: &[u32]) -> bool {
        let mut h = rustc_hash::FxHasher::default();
        sig.hash(&mut h);
        let key = h.finish();
        if let Some(bucket) = self.map.get(&key) {
            if bucket.iter().any(|&i| self.slice(i as usize) == sig) {
                return false;
            }
        }
        let idx = self.ends.len() as u32;
        self.arena.extend_from_slice(sig);
        self.ends.push(self.arena.len() as u32);
        self.map.entry(key).or_default().push(idx);
        true
    }
}

/// Caller-owned verification scratch, reused across every candidate a
/// worker verifies (the caller-owned-scratch discipline the intersection
/// paths already follow): join state, per-level CRF dedup arenas,
/// selectivity ordering, and the query's vertex signatures — all retained
/// at their high-water marks. The distance oracle is the one piece that
/// cannot live here: it borrows the candidate graph.
pub(crate) struct VerifyScratch {
    /// Signatures of the query's vertices, computed once per query.
    qsigs: Vec<VertexSig>,
    /// query vertex → host vertex
    m: Vec<VertexId>,
    /// host vertices already used by the join (injectivity)
    used: Vec<bool>,
    assigned_centers: Vec<(usize, CenterPos)>,
    /// CRF signature assembly scratch, reused across every enumerated
    /// embedding instead of allocating two fresh `Vec`s per candidate.
    sig: Vec<u32>,
    interior: Vec<u32>,
    /// One CRF dedup set per join level.
    levels: Vec<LevelDedup>,
    /// Per-part signature-compatible center counts and the join order
    /// derived from them.
    counts: Vec<usize>,
    order: Vec<usize>,
}

impl VerifyScratch {
    pub(crate) fn for_query(q: &Graph) -> Self {
        Self {
            qsigs: sig::graph_sigs(q),
            m: Vec::new(),
            used: Vec::new(),
            assigned_centers: Vec::new(),
            sig: Vec::with_capacity(q.vertex_count() + 1),
            interior: Vec::new(),
            levels: Vec::new(),
            counts: Vec::new(),
            order: Vec::new(),
        }
    }
}

/// Fill `sig` with the embedding's CRF-deduplication signature: boundary
/// images in vertex order, separator, then the sorted interior image set.
/// `interior` is scratch; both buffers are cleared first.
fn signature_into(
    emb: &[VertexId],
    boundary: &[bool],
    sig: &mut Vec<u32>,
    interior: &mut Vec<u32>,
) {
    sig.clear();
    interior.clear();
    for (i, &gv) in emb.iter().enumerate() {
        if boundary[i] {
            sig.push(gv.0);
        } else {
            interior.push(gv.0);
        }
    }
    sig.push(u32::MAX);
    interior.sort_unstable();
    sig.extend(interior.iter().copied());
}

#[allow(clippy::too_many_arguments)]
fn search(
    index: &TreePiIndex,
    g: &Graph,
    gid: u32,
    hsigs: &[VertexSig],
    parts: &[Part],
    dq: &[Vec<u32>],
    boundaries: &[Vec<bool>],
    matchers: &[CenteredMatcher<'_>],
    st: &mut VerifyScratch,
    oracle: &mut DistanceOracle<'_>,
    k: usize,
) -> bool {
    if k == st.order.len() {
        return true;
    }
    let pi = st.order[k];
    let part = &parts[pi];
    let centers = index.center_positions_of(part.feature, gid);
    'center: for &c in centers {
        // Signature gate: no embedding of the full query can land the
        // part's center representatives on this position's representatives
        // unless they are signature-compatible (see `crate::sig`).
        if !sig::center_compatible(&st.qsigs, hsigs, &part.center_reps_in_q, c, g) {
            continue 'center;
        }
        // Cheap rejection: the part's center corresponds to known query
        // vertices (`center_reps_in_q`); if the join has already mapped
        // one of them, the candidate center must sit on that image.
        let mut fully_pinned = true;
        {
            let reps = c.representatives(g);
            for &qr in &part.center_reps_in_q {
                let img = st.m[qr.idx()];
                if img == UNMAPPED {
                    fully_pinned = false;
                } else if !reps.contains(&img) {
                    continue 'center;
                }
            }
        }
        // Center Distance Constraints against already-placed parts. When
        // the join has already forced every center representative onto this
        // position, the true embedding realizes the distances and the check
        // is implied — skip the BFS work.
        if !fully_pinned {
            for j in 0..st.assigned_centers.len() {
                let (pj, cj) = st.assigned_centers[j];
                let limit = dq[pi][pj];
                // BFS rows are cached per source; source from the *assigned*
                // center so all candidate centers share one row.
                if limit != u32::MAX && pos_distance(g, oracle, cj, c) > limit {
                    continue 'center;
                }
            }
        }
        st.assigned_centers.push((pi, c));
        // Lazily enumerate embeddings centered at c; dedupe by CRF
        // signature in this level's arena; unwind on first success.
        st.levels[k].clear();
        let mut found = false;
        let _ = matchers[pi].for_each_embedding_centered(g, c, |emb| {
            // Compatibility with the partial join.
            for (i, &gv) in emb.iter().enumerate() {
                let qv = part.q_vertices[i];
                let cur = st.m[qv.idx()];
                if cur != UNMAPPED {
                    if cur != gv {
                        return ControlFlow::Continue(());
                    }
                } else if st.used[gv.idx()] {
                    return ControlFlow::Continue(());
                }
            }
            // CRF dedup: build the signature in the scratch buffers (used
            // and archived into the arena before the recursion below can
            // clobber them); nothing is allocated per embedding.
            {
                let VerifyScratch {
                    sig,
                    interior,
                    levels,
                    ..
                } = &mut *st;
                signature_into(emb, &boundaries[pi], sig, interior);
                if !levels[k].insert_if_new(sig) {
                    return ControlFlow::Continue(());
                }
            }
            // Apply, recurse, undo.
            let mut newly: SmallVec<[VertexId; 12]> = SmallVec::new();
            for (i, &gv) in emb.iter().enumerate() {
                let qv = part.q_vertices[i];
                if st.m[qv.idx()] == UNMAPPED {
                    st.m[qv.idx()] = gv;
                    st.used[gv.idx()] = true;
                    newly.push(qv);
                }
            }
            if search(
                index,
                g,
                gid,
                hsigs,
                parts,
                dq,
                boundaries,
                matchers,
                st,
                oracle,
                k + 1,
            ) {
                found = true;
                return ControlFlow::Break(());
            }
            for &qv in &newly {
                let gv = st.m[qv.idx()];
                st.used[gv.idx()] = false;
                st.m[qv.idx()] = UNMAPPED;
            }
            ControlFlow::Continue(())
        });
        if found {
            return true;
        }
        st.assigned_centers.pop();
    }
    false
}

/// Algorithm 3: is `q` subgraph isomorphic to graph `gid`, reconstructed
/// from the partition `parts` (with query center-distance matrix `dq`)?
pub fn verify(index: &TreePiIndex, q: &Graph, gid: u32, parts: &[Part], dq: &[Vec<u32>]) -> bool {
    let boundaries = part_boundaries(q, parts);
    let matchers: Vec<CenteredMatcher<'_>> = parts
        .iter()
        .map(|p| CenteredMatcher::new(&p.tree))
        .collect();
    let mut scratch = VerifyScratch::for_query(q);
    verify_with_boundaries_obs(
        index,
        q,
        gid,
        parts,
        dq,
        &boundaries,
        &matchers,
        &mut scratch,
        &obs::Shard::disabled(),
    )
}

/// Boundary flags per part: a part-tree vertex is boundary iff its query
/// vertex belongs to more than one part. Computed once per query.
pub(crate) fn part_boundaries(q: &Graph, parts: &[Part]) -> Vec<Vec<bool>> {
    let mut owners = vec![0u32; q.vertex_count()];
    for p in parts {
        for &qv in &p.q_vertices {
            owners[qv.idx()] += 1;
        }
    }
    parts
        .iter()
        .map(|p| {
            p.q_vertices
                .iter()
                .map(|&qv| owners[qv.idx()] > 1)
                .collect()
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn verify_with_boundaries_obs(
    index: &TreePiIndex,
    q: &Graph,
    gid: u32,
    parts: &[Part],
    dq: &[Vec<u32>],
    boundaries: &[Vec<bool>],
    matchers: &[CenteredMatcher<'_>],
    scratch: &mut VerifyScratch,
    shard: &obs::Shard,
) -> bool {
    shard.add("verify.tests", 1);
    let g = &index.db()[gid as usize];
    let hsigs = index.vertex_sigs(gid);

    // Every part needs at least one stored center.
    for p in parts {
        if index.center_positions_of(p.feature, gid).is_empty() {
            return false;
        }
    }
    // A single-part partition means the query *is* that feature tree and a
    // stored center position is itself proof of containment.
    if parts.len() == 1 {
        return true;
    }

    // Selectivity order: each part's estimated match count is its number
    // of signature-compatible stored centers; join the most selective part
    // first (ascending, ties stable in part order). A part with zero
    // compatible centers proves non-containment before the search starts.
    scratch.counts.clear();
    for p in parts {
        let n = index
            .center_positions_of(p.feature, gid)
            .iter()
            .filter(|&&c| sig::center_compatible(&scratch.qsigs, hsigs, &p.center_reps_in_q, c, g))
            .count();
        if n == 0 {
            shard.add("verify.center_sig_kills", 1);
            return false;
        }
        scratch.counts.push(n);
    }
    scratch.order.clear();
    scratch.order.extend(0..parts.len());
    {
        let VerifyScratch { counts, order, .. } = &mut *scratch;
        order.sort_by_key(|&i| counts[i]);
    }

    scratch.m.clear();
    scratch.m.resize(q.vertex_count(), UNMAPPED);
    scratch.used.clear();
    scratch.used.resize(g.vertex_count(), false);
    scratch.assigned_centers.clear();
    while scratch.levels.len() < parts.len() {
        scratch.levels.push(LevelDedup::default());
    }
    let mut oracle = DistanceOracle::new(g);
    let ok = search(
        index,
        g,
        gid,
        hsigs,
        parts,
        dq,
        boundaries,
        matchers,
        scratch,
        &mut oracle,
        0,
    );
    shard.add("graph.bfs", oracle.bfs_runs());
    ok
}

/// Verify every graph in `pruned`, returning the exact answer set.
pub fn verify_all(
    index: &TreePiIndex,
    q: &Graph,
    pruned: &[u32],
    parts: &[Part],
    dq: &[Vec<u32>],
) -> Vec<u32> {
    verify_all_threaded(index, q, pruned, parts, dq, 1)
}

/// [`verify_all`] split across `threads` workers. Boundary flags and
/// centered matchers are computed once and shared read-only; each worker
/// reconstructs its contiguous chunk of candidates (every `JoinState` is
/// worker-local), and chunk results concatenate in order — the output is
/// exactly `verify_all`'s regardless of thread count.
pub fn verify_all_threaded(
    index: &TreePiIndex,
    q: &Graph,
    pruned: &[u32],
    parts: &[Part],
    dq: &[Vec<u32>],
    threads: usize,
) -> Vec<u32> {
    verify_all_threaded_obs(
        index,
        q,
        pruned,
        parts,
        dq,
        threads,
        &obs::Shard::disabled(),
    )
}

/// [`verify_all_threaded`] with metrics: records `verify.tests` per
/// candidate and the reconstruction oracle's `graph.bfs` runs. Parallel
/// workers record into [`obs::Shard::fork`]s merged after the join, so the
/// totals match the sequential run for any `threads`.
///
/// This is the *scoped reference* implementation (spawn per stage); the
/// serving path dispatches through [`verify_all_pool_obs`] instead. The
/// two share chunking and merge order, so their outputs are identical.
pub fn verify_all_threaded_obs(
    index: &TreePiIndex,
    q: &Graph,
    pruned: &[u32],
    parts: &[Part],
    dq: &[Vec<u32>],
    threads: usize,
    shard: &obs::Shard,
) -> Vec<u32> {
    let boundaries = part_boundaries(q, parts);
    let matchers: Vec<CenteredMatcher<'_>> = parts
        .iter()
        .map(|p| CenteredMatcher::new(&p.tree))
        .collect();
    let threads = threads.clamp(1, pruned.len().max(1));
    if threads == 1 {
        let mut scratch = VerifyScratch::for_query(q);
        return pruned
            .iter()
            .copied()
            .filter(|&gid| {
                verify_with_boundaries_obs(
                    index,
                    q,
                    gid,
                    parts,
                    dq,
                    &boundaries,
                    &matchers,
                    &mut scratch,
                    shard,
                )
            })
            .collect();
    }
    let chunk_size = pruned.len().div_ceil(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = pruned
            .chunks(chunk_size)
            .map(|chunk| {
                let boundaries = &boundaries;
                let matchers = &matchers;
                let worker = shard.fork();
                s.spawn(move || {
                    let mut scratch = VerifyScratch::for_query(q);
                    let kept = chunk
                        .iter()
                        .copied()
                        .filter(|&gid| {
                            verify_with_boundaries_obs(
                                index,
                                q,
                                gid,
                                parts,
                                dq,
                                boundaries,
                                matchers,
                                &mut scratch,
                                &worker,
                            )
                        })
                        .collect::<Vec<u32>>();
                    (kept, worker)
                })
            })
            .collect();
        let mut out = Vec::new();
        for h in handles {
            let (kept, worker) = h.join().expect("verify worker panicked");
            out.extend(kept);
            shard.merge(worker);
        }
        out
    })
}

/// [`verify_all_threaded_obs`] dispatched on a persistent
/// [`graph_core::par::Pool`]: boundary flags and centered matchers are
/// computed once and shared read-only, candidates are chunked contiguously
/// into up to `threads` pool seats, and chunk results concatenate in rank
/// order — output and merged counters are bit-identical to the scoped and
/// serial paths.
#[allow(clippy::too_many_arguments)]
pub fn verify_all_pool_obs(
    index: &TreePiIndex,
    q: &Graph,
    pruned: &[u32],
    parts: &[Part],
    dq: &[Vec<u32>],
    pool: &graph_core::par::Pool,
    threads: usize,
    shard: &obs::Shard,
) -> Vec<u32> {
    let boundaries = part_boundaries(q, parts);
    let matchers: Vec<CenteredMatcher<'_>> = parts
        .iter()
        .map(|p| CenteredMatcher::new(&p.tree))
        .collect();
    let threads = threads.clamp(1, pruned.len().max(1));
    if threads == 1 {
        let mut scratch = VerifyScratch::for_query(q);
        return pruned
            .iter()
            .copied()
            .filter(|&gid| {
                verify_with_boundaries_obs(
                    index,
                    q,
                    gid,
                    parts,
                    dq,
                    &boundaries,
                    &matchers,
                    &mut scratch,
                    shard,
                )
            })
            .collect();
    }
    let chunk_size = pruned.len().div_ceil(threads);
    let chunks: Vec<&[u32]> = pruned.chunks(chunk_size).collect();
    pool.fork_join_obs(chunks.len(), shard, |rank, worker| {
        let mut scratch = VerifyScratch::for_query(q);
        chunks[rank]
            .iter()
            .copied()
            .filter(|&gid| {
                verify_with_boundaries_obs(
                    index,
                    q,
                    gid,
                    parts,
                    dq,
                    &boundaries,
                    &matchers,
                    &mut scratch,
                    worker,
                )
            })
            .collect::<Vec<u32>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Brute-force oracle: scan the whole database with VF2 (what a system
/// without an index must do; also the ground truth in tests).
pub fn scan_support(index: &TreePiIndex, q: &Graph) -> Vec<u32> {
    index
        .db()
        .iter()
        .enumerate()
        .filter(|(gid, g)| index.is_active(*gid as u32) && graph_core::is_subgraph_isomorphic(q, g))
        .map(|(gid, _)| gid as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TreePiParams;
    use crate::partition::{partition_runs, PartitionRuns};
    use crate::prune::query_center_distances;
    use graph_core::graph_from;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn db() -> Vec<Graph> {
        vec![
            // triangle with tail
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1), (2, 3, 0)]),
            // path
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            // star
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
            // 4-cycle
            graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
        ]
    }

    fn run_query(q: &Graph, idx: &TreePiIndex, seed: u64) -> Vec<u32> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        match partition_runs(q, idx, q.edge_count().max(1), &mut rng) {
            PartitionRuns::MissingFeature(_) => Vec::new(),
            PartitionRuns::Ok { min_partition, sf } => {
                let pq = crate::filter::filter(idx, &sf);
                let dq = query_center_distances(q, &min_partition);
                let pruned = crate::prune::center_prune(idx, q, &pq, &min_partition, &dq);
                verify_all(idx, q, &pruned, &min_partition, &dq)
            }
        }
    }

    #[test]
    fn verified_answers_match_brute_force() {
        let idx = TreePiIndex::build(db(), TreePiParams::quick());
        let queries = [
            graph_from(&[0, 0], &[(0, 1, 0)]),
            graph_from(&[0, 1], &[(0, 1, 1)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]), // cyclic query
            graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
            graph_from(&[1, 0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0)]),
            graph_from(&[9, 9], &[(0, 1, 0)]), // absent labels
        ];
        for (qi, q) in queries.iter().enumerate() {
            let truth = scan_support(&idx, q);
            for seed in 0..5 {
                let got = run_query(q, &idx, seed);
                assert_eq!(got, truth, "query {qi} seed {seed}");
            }
        }
    }

    #[test]
    fn cyclic_query_needs_multi_part_join() {
        // A cyclic query can never be a single feature tree; verification
        // must reconstruct it from ≥ 2 tree parts.
        let idx = TreePiIndex::build(db(), TreePiParams::quick());
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let PartitionRuns::Ok { min_partition, .. } = partition_runs(&q, &idx, 5, &mut rng) else {
            panic!()
        };
        assert!(min_partition.len() >= 2);
        let dq = query_center_distances(&q, &min_partition);
        assert!(verify(&idx, &q, 0, &min_partition, &dq));
        assert!(!verify(&idx, &q, 1, &min_partition, &dq));
    }

    #[test]
    fn injectivity_enforced_across_parts() {
        // Query: path of 3 zero-labeled vertices (needs 3 distinct hosts).
        // Graph 1 (path 0-0-1) contains only two 0-vertices.
        let idx = TreePiIndex::build(db(), TreePiParams::quick());
        let q = graph_from(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0)]);
        let truth = scan_support(&idx, &q);
        for seed in 0..5 {
            assert_eq!(run_query(&q, &idx, seed), truth);
        }
    }

    #[test]
    fn crf_signatures_collapse_interchangeable_embeddings() {
        // Star embeddings that permute interior leaves share a signature;
        // boundary differences keep signatures distinct.
        let (mut sig, mut interior) = (Vec::new(), Vec::new());
        let mut sig_of = |emb: &[VertexId], boundary: &[bool]| {
            signature_into(emb, boundary, &mut sig, &mut interior);
            sig.clone()
        };
        let e1 = [VertexId(0), VertexId(1), VertexId(2)];
        let e2 = [VertexId(0), VertexId(2), VertexId(1)];
        let e3 = [VertexId(3), VertexId(1), VertexId(2)];
        let boundary = [true, false, false];
        assert_eq!(sig_of(&e1, &boundary), sig_of(&e2, &boundary));
        assert_ne!(sig_of(&e1, &boundary), sig_of(&e3, &boundary));
        // fully-boundary parts keep everything distinct
        let all = [true, true, true];
        assert_ne!(sig_of(&e1, &all), sig_of(&e2, &all));
    }

    #[test]
    fn level_dedup_matches_exact_set_semantics() {
        let mut d = LevelDedup::default();
        assert!(d.insert_if_new(&[1, 2, 3]));
        assert!(!d.insert_if_new(&[1, 2, 3]), "duplicate must be rejected");
        assert!(d.insert_if_new(&[1, 2]), "prefix is a distinct signature");
        assert!(d.insert_if_new(&[3, 2, 1]));
        assert!(!d.insert_if_new(&[3, 2, 1]));
        assert!(d.insert_if_new(&[]), "empty signature is a valid member");
        assert!(!d.insert_if_new(&[]));
        d.clear();
        assert!(d.insert_if_new(&[1, 2, 3]), "clear() must forget members");
    }

    #[test]
    fn boundary_flags_follow_part_overlap() {
        let idx = TreePiIndex::build(db(), TreePiParams::quick());
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let PartitionRuns::Ok { min_partition, .. } = partition_runs(&q, &idx, 5, &mut rng) else {
            panic!()
        };
        let b = part_boundaries(&q, &min_partition);
        assert_eq!(b.len(), min_partition.len());
        // in a partition of a triangle, shared vertices exist
        let shared: usize = b.iter().flatten().filter(|&&x| x).count();
        assert!(shared >= 2, "triangle partitions must share vertices");
    }
}
