//! Reconstruction-based subgraph isomorphism (paper §5.3, Algorithm 3).
//!
//! Instead of a naive isomorphism search over the whole candidate graph,
//! verification re-finds each part of the query's Feature-Tree-Partition
//! rooted at its *stored center positions* (a rooted DFS, §5.3.2), then
//! joins the retrieved subtrees back into the query. The join never runs an
//! isomorphism test: two retrieved embeddings of the same part are
//! interchangeable iff they agree on the part's *boundary* (vertices shared
//! with other parts) and on the *set* of interior images — our realization
//! of the paper's Canonical Reconstruction Form (§5.3.1; see DESIGN.md
//! substitution 4). Each equivalence class is explored once per join node,
//! candidate center assignments are filtered by the Center Distance
//! Constraints (Algorithm 3's loop header), and the search unwinds on the
//! first complete reconstruction.

use crate::index::TreePiIndex;
use crate::partition::Part;
use crate::prune::pos_distance;
use graph_core::{DistanceOracle, Graph, VertexId};
use rustc_hash::FxHashSet;
use std::ops::ControlFlow;
use tree_core::{CenterPos, CenteredMatcher};

const UNMAPPED: VertexId = VertexId(u32::MAX);

/// Join state shared across recursion levels. Immutable inputs are passed
/// separately so embedding enumeration can borrow them while the state is
/// mutated.
struct JoinState<'g> {
    /// query vertex → host vertex
    m: Vec<VertexId>,
    /// host vertices already used by the join (injectivity)
    used: Vec<bool>,
    assigned_centers: Vec<(usize, CenterPos)>,
    oracle: DistanceOracle<'g>,
    /// Scratch for CRF signature assembly, reused across every enumerated
    /// embedding instead of allocating two fresh `Vec`s per candidate.
    sig: Vec<u32>,
    interior: Vec<u32>,
}

/// Fill `sig` with the embedding's CRF-deduplication signature: boundary
/// images in vertex order, separator, then the sorted interior image set.
/// `interior` is scratch; both buffers are cleared first.
fn signature_into(
    emb: &[VertexId],
    boundary: &[bool],
    sig: &mut Vec<u32>,
    interior: &mut Vec<u32>,
) {
    sig.clear();
    interior.clear();
    for (i, &gv) in emb.iter().enumerate() {
        if boundary[i] {
            sig.push(gv.0);
        } else {
            interior.push(gv.0);
        }
    }
    sig.push(u32::MAX);
    interior.sort_unstable();
    sig.extend(interior.iter().copied());
}

#[cfg(test)]
fn signature(emb: &[VertexId], boundary: &[bool]) -> Vec<u32> {
    let (mut sig, mut interior) = (Vec::new(), Vec::new());
    signature_into(emb, boundary, &mut sig, &mut interior);
    sig
}

#[allow(clippy::too_many_arguments)]
fn search(
    index: &TreePiIndex,
    g: &Graph,
    gid: u32,
    parts: &[Part],
    dq: &[Vec<u32>],
    order: &[usize],
    boundaries: &[Vec<bool>],
    matchers: &[CenteredMatcher<'_>],
    st: &mut JoinState<'_>,
    k: usize,
) -> bool {
    if k == order.len() {
        return true;
    }
    let pi = order[k];
    let part = &parts[pi];
    let centers = index.center_positions_of(part.feature, gid);
    'center: for &c in centers {
        // Cheap rejection: the part's center corresponds to known query
        // vertices (`center_reps_in_q`); if the join has already mapped
        // one of them, the candidate center must sit on that image.
        let mut fully_pinned = true;
        {
            let reps = c.representatives(g);
            for &qr in &part.center_reps_in_q {
                let img = st.m[qr.idx()];
                if img == UNMAPPED {
                    fully_pinned = false;
                } else if !reps.contains(&img) {
                    continue 'center;
                }
            }
        }
        // Center Distance Constraints against already-placed parts. When
        // the join has already forced every center representative onto this
        // position, the true embedding realizes the distances and the check
        // is implied — skip the BFS work.
        if !fully_pinned {
            for j in 0..st.assigned_centers.len() {
                let (pj, cj) = st.assigned_centers[j];
                let limit = dq[pi][pj];
                // BFS rows are cached per source; source from the *assigned*
                // center so all candidate centers share one row.
                if limit != u32::MAX && pos_distance(g, &mut st.oracle, cj, c) > limit {
                    continue 'center;
                }
            }
        }
        st.assigned_centers.push((pi, c));
        // Lazily enumerate embeddings centered at c; dedupe by CRF
        // signature; unwind on first success.
        let mut seen: FxHashSet<Vec<u32>> = FxHashSet::default();
        let mut found = false;
        let _ = matchers[pi].for_each_embedding_centered(g, c, |emb| {
            // Compatibility with the partial join.
            for (i, &gv) in emb.iter().enumerate() {
                let qv = part.q_vertices[i];
                let cur = st.m[qv.idx()];
                if cur != UNMAPPED {
                    if cur != gv {
                        return ControlFlow::Continue(());
                    }
                } else if st.used[gv.idx()] {
                    return ControlFlow::Continue(());
                }
            }
            // CRF dedup: build the signature in the state's scratch (used
            // and copied out before the recursion below can clobber it); a
            // heap allocation is paid only for distinct signatures.
            signature_into(emb, &boundaries[pi], &mut st.sig, &mut st.interior);
            if seen.contains(st.sig.as_slice()) {
                return ControlFlow::Continue(());
            }
            seen.insert(st.sig.clone());
            // Apply, recurse, undo.
            let mut newly: smallvec::SmallVec<[VertexId; 12]> = smallvec::SmallVec::new();
            for (i, &gv) in emb.iter().enumerate() {
                let qv = part.q_vertices[i];
                if st.m[qv.idx()] == UNMAPPED {
                    st.m[qv.idx()] = gv;
                    st.used[gv.idx()] = true;
                    newly.push(qv);
                }
            }
            if search(
                index,
                g,
                gid,
                parts,
                dq,
                order,
                boundaries,
                matchers,
                st,
                k + 1,
            ) {
                found = true;
                return ControlFlow::Break(());
            }
            for &qv in &newly {
                let gv = st.m[qv.idx()];
                st.used[gv.idx()] = false;
                st.m[qv.idx()] = UNMAPPED;
            }
            ControlFlow::Continue(())
        });
        if found {
            return true;
        }
        st.assigned_centers.pop();
    }
    false
}

/// Algorithm 3: is `q` subgraph isomorphic to graph `gid`, reconstructed
/// from the partition `parts` (with query center-distance matrix `dq`)?
pub fn verify(index: &TreePiIndex, q: &Graph, gid: u32, parts: &[Part], dq: &[Vec<u32>]) -> bool {
    let boundaries = part_boundaries(q, parts);
    let matchers: Vec<CenteredMatcher<'_>> = parts
        .iter()
        .map(|p| CenteredMatcher::new(&p.tree))
        .collect();
    verify_with_boundaries(index, q, gid, parts, dq, &boundaries, &matchers)
}

/// Boundary flags per part: a part-tree vertex is boundary iff its query
/// vertex belongs to more than one part. Computed once per query.
pub(crate) fn part_boundaries(q: &Graph, parts: &[Part]) -> Vec<Vec<bool>> {
    let mut owners = vec![0u32; q.vertex_count()];
    for p in parts {
        for &qv in &p.q_vertices {
            owners[qv.idx()] += 1;
        }
    }
    parts
        .iter()
        .map(|p| {
            p.q_vertices
                .iter()
                .map(|&qv| owners[qv.idx()] > 1)
                .collect()
        })
        .collect()
}

pub(crate) fn verify_with_boundaries(
    index: &TreePiIndex,
    q: &Graph,
    gid: u32,
    parts: &[Part],
    dq: &[Vec<u32>],
    boundaries: &[Vec<bool>],
    matchers: &[CenteredMatcher<'_>],
) -> bool {
    verify_with_boundaries_obs(
        index,
        q,
        gid,
        parts,
        dq,
        boundaries,
        matchers,
        &obs::Shard::disabled(),
    )
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn verify_with_boundaries_obs(
    index: &TreePiIndex,
    q: &Graph,
    gid: u32,
    parts: &[Part],
    dq: &[Vec<u32>],
    boundaries: &[Vec<bool>],
    matchers: &[CenteredMatcher<'_>],
    shard: &obs::Shard,
) -> bool {
    shard.add("verify.tests", 1);
    let g = &index.db()[gid as usize];

    // Every part needs at least one stored center; most-constrained first.
    let mut counts: Vec<usize> = Vec::with_capacity(parts.len());
    for p in parts {
        let c = index.center_positions_of(p.feature, gid);
        if c.is_empty() {
            return false;
        }
        counts.push(c.len());
    }
    // A single-part partition means the query *is* that feature tree and a
    // stored center position is itself proof of containment.
    if parts.len() == 1 {
        return true;
    }
    let mut order: Vec<usize> = (0..parts.len()).collect();
    order.sort_by_key(|&i| counts[i]);

    let mut st = JoinState {
        m: vec![UNMAPPED; q.vertex_count()],
        used: vec![false; g.vertex_count()],
        assigned_centers: Vec::with_capacity(parts.len()),
        oracle: DistanceOracle::new(g),
        sig: Vec::with_capacity(q.vertex_count() + 1),
        interior: Vec::new(),
    };
    let ok = search(
        index, g, gid, parts, dq, &order, boundaries, matchers, &mut st, 0,
    );
    shard.add("graph.bfs", st.oracle.bfs_runs());
    ok
}

/// Verify every graph in `pruned`, returning the exact answer set.
pub fn verify_all(
    index: &TreePiIndex,
    q: &Graph,
    pruned: &[u32],
    parts: &[Part],
    dq: &[Vec<u32>],
) -> Vec<u32> {
    verify_all_threaded(index, q, pruned, parts, dq, 1)
}

/// [`verify_all`] split across `threads` workers. Boundary flags and
/// centered matchers are computed once and shared read-only; each worker
/// reconstructs its contiguous chunk of candidates (every `JoinState` is
/// worker-local), and chunk results concatenate in order — the output is
/// exactly `verify_all`'s regardless of thread count.
pub fn verify_all_threaded(
    index: &TreePiIndex,
    q: &Graph,
    pruned: &[u32],
    parts: &[Part],
    dq: &[Vec<u32>],
    threads: usize,
) -> Vec<u32> {
    verify_all_threaded_obs(
        index,
        q,
        pruned,
        parts,
        dq,
        threads,
        &obs::Shard::disabled(),
    )
}

/// [`verify_all_threaded`] with metrics: records `verify.tests` per
/// candidate and the reconstruction oracle's `graph.bfs` runs. Parallel
/// workers record into [`obs::Shard::fork`]s merged after the join, so the
/// totals match the sequential run for any `threads`.
///
/// This is the *scoped reference* implementation (spawn per stage); the
/// serving path dispatches through [`verify_all_pool_obs`] instead. The
/// two share chunking and merge order, so their outputs are identical.
pub fn verify_all_threaded_obs(
    index: &TreePiIndex,
    q: &Graph,
    pruned: &[u32],
    parts: &[Part],
    dq: &[Vec<u32>],
    threads: usize,
    shard: &obs::Shard,
) -> Vec<u32> {
    let boundaries = part_boundaries(q, parts);
    let matchers: Vec<CenteredMatcher<'_>> = parts
        .iter()
        .map(|p| CenteredMatcher::new(&p.tree))
        .collect();
    let threads = threads.clamp(1, pruned.len().max(1));
    if threads == 1 {
        return pruned
            .iter()
            .copied()
            .filter(|&gid| {
                verify_with_boundaries_obs(index, q, gid, parts, dq, &boundaries, &matchers, shard)
            })
            .collect();
    }
    let chunk_size = pruned.len().div_ceil(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = pruned
            .chunks(chunk_size)
            .map(|chunk| {
                let boundaries = &boundaries;
                let matchers = &matchers;
                let worker = shard.fork();
                s.spawn(move || {
                    let kept = chunk
                        .iter()
                        .copied()
                        .filter(|&gid| {
                            verify_with_boundaries_obs(
                                index, q, gid, parts, dq, boundaries, matchers, &worker,
                            )
                        })
                        .collect::<Vec<u32>>();
                    (kept, worker)
                })
            })
            .collect();
        let mut out = Vec::new();
        for h in handles {
            let (kept, worker) = h.join().expect("verify worker panicked");
            out.extend(kept);
            shard.merge(worker);
        }
        out
    })
}

/// [`verify_all_threaded_obs`] dispatched on a persistent
/// [`graph_core::par::Pool`]: boundary flags and centered matchers are
/// computed once and shared read-only, candidates are chunked contiguously
/// into up to `threads` pool seats, and chunk results concatenate in rank
/// order — output and merged counters are bit-identical to the scoped and
/// serial paths.
#[allow(clippy::too_many_arguments)]
pub fn verify_all_pool_obs(
    index: &TreePiIndex,
    q: &Graph,
    pruned: &[u32],
    parts: &[Part],
    dq: &[Vec<u32>],
    pool: &graph_core::par::Pool,
    threads: usize,
    shard: &obs::Shard,
) -> Vec<u32> {
    let boundaries = part_boundaries(q, parts);
    let matchers: Vec<CenteredMatcher<'_>> = parts
        .iter()
        .map(|p| CenteredMatcher::new(&p.tree))
        .collect();
    let threads = threads.clamp(1, pruned.len().max(1));
    if threads == 1 {
        return pruned
            .iter()
            .copied()
            .filter(|&gid| {
                verify_with_boundaries_obs(index, q, gid, parts, dq, &boundaries, &matchers, shard)
            })
            .collect();
    }
    let chunk_size = pruned.len().div_ceil(threads);
    let chunks: Vec<&[u32]> = pruned.chunks(chunk_size).collect();
    pool.fork_join_obs(chunks.len(), shard, |rank, worker| {
        chunks[rank]
            .iter()
            .copied()
            .filter(|&gid| {
                verify_with_boundaries_obs(index, q, gid, parts, dq, &boundaries, &matchers, worker)
            })
            .collect::<Vec<u32>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Brute-force oracle: scan the whole database with VF2 (what a system
/// without an index must do; also the ground truth in tests).
pub fn scan_support(index: &TreePiIndex, q: &Graph) -> Vec<u32> {
    index
        .db()
        .iter()
        .enumerate()
        .filter(|(gid, g)| index.is_active(*gid as u32) && graph_core::is_subgraph_isomorphic(q, g))
        .map(|(gid, _)| gid as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TreePiParams;
    use crate::partition::{partition_runs, PartitionRuns};
    use crate::prune::query_center_distances;
    use graph_core::graph_from;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn db() -> Vec<Graph> {
        vec![
            // triangle with tail
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1), (2, 3, 0)]),
            // path
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            // star
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
            // 4-cycle
            graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
        ]
    }

    fn run_query(q: &Graph, idx: &TreePiIndex, seed: u64) -> Vec<u32> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        match partition_runs(q, idx, q.edge_count().max(1), &mut rng) {
            PartitionRuns::MissingFeature(_) => Vec::new(),
            PartitionRuns::Ok { min_partition, sf } => {
                let pq = crate::filter::filter(idx, &sf);
                let dq = query_center_distances(q, &min_partition);
                let pruned = crate::prune::center_prune(idx, &pq, &min_partition, &dq);
                verify_all(idx, q, &pruned, &min_partition, &dq)
            }
        }
    }

    #[test]
    fn verified_answers_match_brute_force() {
        let idx = TreePiIndex::build(db(), TreePiParams::quick());
        let queries = [
            graph_from(&[0, 0], &[(0, 1, 0)]),
            graph_from(&[0, 1], &[(0, 1, 1)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]), // cyclic query
            graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
            graph_from(&[1, 0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0)]),
            graph_from(&[9, 9], &[(0, 1, 0)]), // absent labels
        ];
        for (qi, q) in queries.iter().enumerate() {
            let truth = scan_support(&idx, q);
            for seed in 0..5 {
                let got = run_query(q, &idx, seed);
                assert_eq!(got, truth, "query {qi} seed {seed}");
            }
        }
    }

    #[test]
    fn cyclic_query_needs_multi_part_join() {
        // A cyclic query can never be a single feature tree; verification
        // must reconstruct it from ≥ 2 tree parts.
        let idx = TreePiIndex::build(db(), TreePiParams::quick());
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let PartitionRuns::Ok { min_partition, .. } = partition_runs(&q, &idx, 5, &mut rng) else {
            panic!()
        };
        assert!(min_partition.len() >= 2);
        let dq = query_center_distances(&q, &min_partition);
        assert!(verify(&idx, &q, 0, &min_partition, &dq));
        assert!(!verify(&idx, &q, 1, &min_partition, &dq));
    }

    #[test]
    fn injectivity_enforced_across_parts() {
        // Query: path of 3 zero-labeled vertices (needs 3 distinct hosts).
        // Graph 1 (path 0-0-1) contains only two 0-vertices.
        let idx = TreePiIndex::build(db(), TreePiParams::quick());
        let q = graph_from(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0)]);
        let truth = scan_support(&idx, &q);
        for seed in 0..5 {
            assert_eq!(run_query(&q, &idx, seed), truth);
        }
    }

    #[test]
    fn crf_signatures_collapse_interchangeable_embeddings() {
        // Star embeddings that permute interior leaves share a signature;
        // boundary differences keep signatures distinct.
        let e1 = [VertexId(0), VertexId(1), VertexId(2)];
        let e2 = [VertexId(0), VertexId(2), VertexId(1)];
        let e3 = [VertexId(3), VertexId(1), VertexId(2)];
        let boundary = [true, false, false];
        assert_eq!(signature(&e1, &boundary), signature(&e2, &boundary));
        assert_ne!(signature(&e1, &boundary), signature(&e3, &boundary));
        // fully-boundary parts keep everything distinct
        let all = [true, true, true];
        assert_ne!(signature(&e1, &all), signature(&e2, &all));
    }

    #[test]
    fn boundary_flags_follow_part_overlap() {
        let idx = TreePiIndex::build(db(), TreePiParams::quick());
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let PartitionRuns::Ok { min_partition, .. } = partition_runs(&q, &idx, 5, &mut rng) else {
            panic!()
        };
        let b = part_boundaries(&q, &min_partition);
        assert_eq!(b.len(), min_partition.len());
        // in a partition of a triangle, shared vertices exist
        let shared: usize = b.iter().flatten().filter(|&&x| x).count();
        assert!(shared >= 2, "triangle partitions must share vertices");
    }
}
