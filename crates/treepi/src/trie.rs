//! Prefix-trie index over tree canonical strings (paper §4.2.2: "a prefix
//! tree based indexing is used to index all feature trees").
//!
//! Keys are the token sequences of [`tree_core::CanonString`]; values are
//! feature ids. Lookups are O(key length) — the polynomial-time feature
//! matching that motivates tree features.

use rustc_hash::FxHashMap;
use tree_core::CanonString;

/// Identifier of a feature tree inside a [`crate::TreePiIndex`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FeatureId(pub u32);

impl FeatureId {
    /// The id as a usize, for indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Debug, Default)]
struct TrieNode {
    children: FxHashMap<u32, u32>,
    value: Option<FeatureId>,
}

/// Prefix trie from canonical strings to feature ids.
#[derive(Clone, Debug)]
pub struct CanonTrie {
    nodes: Vec<TrieNode>,
    len: usize,
}

impl Default for CanonTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl CanonTrie {
    /// New empty trie (with a root node).
    pub fn new() -> Self {
        Self {
            nodes: vec![TrieNode::default()],
            len: 0,
        }
    }

    /// Insert a key, returning the previous value if the key was present.
    pub fn insert(&mut self, key: &CanonString, value: FeatureId) -> Option<FeatureId> {
        let mut node = 0usize;
        for &tok in key.tokens() {
            let next = match self.nodes[node].children.get(&tok) {
                Some(&n) => n as usize,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(TrieNode::default());
                    self.nodes[node].children.insert(tok, n as u32);
                    n
                }
            };
            node = next;
        }
        let prev = self.nodes[node].value.replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Look a key up.
    pub fn get(&self, key: &CanonString) -> Option<FeatureId> {
        let mut node = 0usize;
        for &tok in key.tokens() {
            node = *self.nodes[node].children.get(&tok)? as usize;
        }
        self.nodes[node].value
    }

    /// Whether the key is present.
    pub fn contains(&self, key: &CanonString) -> bool {
        self.get(key).is_some()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of trie nodes (memory diagnostic; shared prefixes compress).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Estimated heap bytes: node storage plus each node's child map
    /// entries (length-based, not capacity-based, so the estimate is
    /// deterministic for a given key set).
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.nodes.len() * size_of::<TrieNode>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.len() * size_of::<(u32, u32)>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tokens: &[u32]) -> CanonString {
        CanonString(tokens.to_vec())
    }

    #[test]
    fn insert_and_get() {
        let mut t = CanonTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(&key(&[1, 2, 3]), FeatureId(0)), None);
        assert_eq!(t.insert(&key(&[1, 2]), FeatureId(1)), None);
        assert_eq!(t.insert(&key(&[4]), FeatureId(2)), None);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&key(&[1, 2, 3])), Some(FeatureId(0)));
        assert_eq!(t.get(&key(&[1, 2])), Some(FeatureId(1)));
        assert_eq!(t.get(&key(&[4])), Some(FeatureId(2)));
        assert_eq!(t.get(&key(&[1])), None);
        assert_eq!(t.get(&key(&[1, 2, 3, 4])), None);
        assert_eq!(t.get(&key(&[9])), None);
    }

    #[test]
    fn overwrite_returns_previous() {
        let mut t = CanonTrie::new();
        t.insert(&key(&[7, 8]), FeatureId(5));
        assert_eq!(t.insert(&key(&[7, 8]), FeatureId(6)), Some(FeatureId(5)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&key(&[7, 8])), Some(FeatureId(6)));
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let mut t = CanonTrie::new();
        t.insert(&key(&[1, 2, 3]), FeatureId(0));
        t.insert(&key(&[1, 2, 4]), FeatureId(1));
        // root + 1 + 2 + {3,4} = 5 nodes
        assert_eq!(t.node_count(), 5);
    }

    #[test]
    fn empty_key_is_a_valid_key() {
        let mut t = CanonTrie::new();
        assert_eq!(t.get(&key(&[])), None);
        t.insert(&key(&[]), FeatureId(9));
        assert_eq!(t.get(&key(&[])), Some(FeatureId(9)));
    }
}
