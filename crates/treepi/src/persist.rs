//! Index persistence: a compact little-endian binary format so a
//! preprocessed database (the expensive part — mining plus center
//! extraction) is paid once and reloaded instantly, the way the paper's
//! motivating "search and registration systems" operate.
//!
//! Layout (version 3):
//!
//! ```text
//! magic "TPI3"
//! params   σ(α, β, η) γ δ limits
//! database |db| × graph, active bitmap
//! features |F| × { tree-graph, canon, support, center }
//! centers  |F| × { entries × (gid, positions) }
//! stats    shape counters
//! epoch    maintenance epoch (u64)
//! sigs     |db| × { n × (label u32, degree u32, mask u64) }
//! ```
//!
//! The trie is rebuilt from the canonical strings on load; build stats are
//! restored verbatim. Everything is length-prefixed and validated, so a
//! truncated or corrupted file yields an error, never a bad index.
//!
//! Version 2 appends the maintenance epoch. Epoch-keyed result caches
//! survive across save/load boundaries only if the epoch does too: were a
//! reloaded index to restart at 0, a cache that saw epoch N before the
//! reload would conflate pre- and post-reload states (and any maintenance
//! applied between save and reload would be invisible to invalidation).
//!
//! Version 3 appends the per-vertex neighborhood signatures
//! ([`crate::sig`]). Because signatures are a pure function of each stored
//! graph, version-2 files still load **losslessly**: the missing section
//! is recomputed from the payload, byte-equivalent to what a v3 save of
//! the same index would have stored. Version-1 files (`TPI1`) are
//! rejected with a clear error — rebuild the index file with this version.

use crate::index::{BuildStats, Feature, TreePiIndex};
use crate::params::{Delta, TreePiParams};
use crate::sig::{self, VertexSig};
use crate::trie::{CanonTrie, FeatureId};
use bytes::{Buf, BufMut};
use graph_core::{EdgeId, Graph, GraphBuilder, VertexId};
use mining::{MiningLimits, SigmaFn};
use rustc_hash::FxHashMap;
use std::io::{self, Read, Write};
use tree_core::{CanonString, CenterPos, Tree};

const MAGIC: &[u8; 4] = b"TPI3";
/// Version 2 (no signature section): accepted, signatures recomputed.
const MAGIC_V2: &[u8; 4] = b"TPI2";
/// Version 1, recognized only to produce a better error.
const MAGIC_V1: &[u8; 4] = b"TPI1";

fn bad(msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("treepi index file: {msg}"),
    )
}

fn put_graph(buf: &mut Vec<u8>, g: &Graph) {
    buf.put_u32_le(g.vertex_count() as u32);
    for v in g.vertices() {
        buf.put_u32_le(g.vlabel(v).0);
    }
    buf.put_u32_le(g.edge_count() as u32);
    for e in g.edges() {
        buf.put_u32_le(e.u.0);
        buf.put_u32_le(e.v.0);
        buf.put_u32_le(e.label.0);
    }
}

fn get_graph(buf: &mut &[u8]) -> io::Result<Graph> {
    if buf.remaining() < 4 {
        return Err(bad("truncated graph header"));
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n * 4 {
        return Err(bad("truncated vertex labels"));
    }
    let mut b = GraphBuilder::with_capacity(n, 0);
    for _ in 0..n {
        b.add_vertex(graph_core::VLabel(buf.get_u32_le()));
    }
    if buf.remaining() < 4 {
        return Err(bad("truncated edge count"));
    }
    let m = buf.get_u32_le() as usize;
    if buf.remaining() < m * 12 {
        return Err(bad("truncated edges"));
    }
    for _ in 0..m {
        let u = VertexId(buf.get_u32_le());
        let v = VertexId(buf.get_u32_le());
        let l = graph_core::ELabel(buf.get_u32_le());
        b.add_edge(u, v, l).map_err(|e| bad(&e.to_string()))?;
    }
    Ok(b.build())
}

fn put_u32s(buf: &mut Vec<u8>, xs: impl ExactSizeIterator<Item = u32>) {
    buf.put_u32_le(xs.len() as u32);
    for x in xs {
        buf.put_u32_le(x);
    }
}

fn get_u32s(buf: &mut &[u8]) -> io::Result<Vec<u32>> {
    if buf.remaining() < 4 {
        return Err(bad("truncated length"));
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n * 4 {
        return Err(bad("truncated u32 array"));
    }
    Ok((0..n).map(|_| buf.get_u32_le()).collect())
}

fn put_center_pos(buf: &mut Vec<u8>, p: CenterPos) {
    match p {
        CenterPos::Vertex(v) => {
            buf.put_u8(0);
            buf.put_u32_le(v.0);
        }
        CenterPos::Edge(e) => {
            buf.put_u8(1);
            buf.put_u32_le(e.0);
        }
    }
}

fn get_center_pos(buf: &mut &[u8]) -> io::Result<CenterPos> {
    if buf.remaining() < 5 {
        return Err(bad("truncated center position"));
    }
    let tag = buf.get_u8();
    let id = buf.get_u32_le();
    match tag {
        0 => Ok(CenterPos::Vertex(VertexId(id))),
        1 => Ok(CenterPos::Edge(EdgeId(id))),
        _ => Err(bad("unknown center-position tag")),
    }
}

impl TreePiIndex {
    /// Serialize the index.
    pub fn save<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut buf: Vec<u8> = Vec::with_capacity(1 << 16);
        buf.put_slice(MAGIC);
        // params
        buf.put_u32_le(self.params.sigma.alpha as u32);
        buf.put_f64_le(self.params.sigma.beta);
        buf.put_u32_le(self.params.sigma.eta as u32);
        buf.put_f64_le(self.params.gamma);
        match self.params.delta {
            Delta::Fixed(n) => {
                buf.put_u8(0);
                buf.put_u64_le(n as u64);
            }
            Delta::QuerySize => {
                buf.put_u8(1);
                buf.put_u64_le(0);
            }
        }
        buf.put_u64_le(self.params.limits.max_patterns as u64);
        buf.put_u64_le(self.params.limits.max_candidates_per_level as u64);
        // database
        buf.put_u32_le(self.db.len() as u32);
        for g in &self.db {
            put_graph(&mut buf, g);
        }
        for &a in &self.active {
            buf.put_u8(a as u8);
        }
        // features
        buf.put_u32_le(self.features.len() as u32);
        for f in &self.features {
            put_graph(&mut buf, f.tree.graph());
            put_u32s(&mut buf, f.canon.tokens().iter().copied());
            put_u32s(&mut buf, f.support.iter().copied());
        }
        // centers
        for per_graph in &self.centers {
            buf.put_u32_le(per_graph.len() as u32);
            let mut entries: Vec<(&u32, &Vec<CenterPos>)> = per_graph.iter().collect();
            entries.sort_by_key(|(gid, _)| **gid); // deterministic files
            for (gid, positions) in entries {
                buf.put_u32_le(*gid);
                buf.put_u32_le(positions.len() as u32);
                for &p in positions {
                    put_center_pos(&mut buf, p);
                }
            }
        }
        // stats — shape counters only. The stage timings are transient
        // build diagnostics; writing them would make the serialized bytes
        // differ between otherwise identical builds, breaking the
        // "equal indexes serialize to equal bytes" guarantee the parallel
        // build-equivalence tests rely on. The two slots stay in the format
        // as zeros for compatibility.
        buf.put_u64_le(self.stats.mined as u64);
        buf.put_u64_le(self.stats.center_entries as u64);
        buf.put_u64_le(self.stats.center_positions as u64);
        buf.put_u64_le(0); // was t_mine_ms
        buf.put_u64_le(0); // was t_centers_ms
        buf.put_u8(self.stats.truncated as u8);
        // maintenance epoch (v2): carried across save/load so epoch-keyed
        // caches never see the version counter move backwards.
        buf.put_u64_le(self.maintenance_epoch);
        // neighborhood signatures (v3), one vector per db slot in gid
        // order. The per-graph count always equals the graph's vertex
        // count (the sigs-are-a-pure-function invariant) and is validated
        // against it on load.
        for sigs in &self.sigs {
            buf.put_u32_le(sigs.len() as u32);
            for s in sigs {
                buf.put_u32_le(s.label);
                buf.put_u32_le(s.degree);
                buf.put_u64_le(s.mask);
            }
        }
        w.write_all(&buf)
    }

    /// Deserialize an index previously written by [`Self::save`].
    pub fn load<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut data = Vec::new();
        r.read_to_end(&mut data)?;
        let mut buf: &[u8] = &data;
        if buf.remaining() >= 4 && &buf[..4] == MAGIC_V1 {
            return Err(bad(
                "version-1 file (no maintenance epoch); rebuild the index file",
            ));
        }
        if buf.remaining() < 4 {
            return Err(bad("bad magic"));
        }
        let version = match &buf[..4] {
            m if m == MAGIC => 3u8,
            m if m == MAGIC_V2 => 2,
            _ => return Err(bad("bad magic")),
        };
        buf.advance(4);
        if buf.remaining() < 4 + 8 + 4 + 8 + 9 + 16 {
            return Err(bad("truncated params"));
        }
        let sigma = SigmaFn {
            alpha: buf.get_u32_le() as usize,
            beta: buf.get_f64_le(),
            eta: buf.get_u32_le() as usize,
        };
        let gamma = buf.get_f64_le();
        let delta = match (buf.get_u8(), buf.get_u64_le()) {
            (0, n) => Delta::Fixed(n as usize),
            (1, _) => Delta::QuerySize,
            _ => return Err(bad("unknown delta tag")),
        };
        let limits = MiningLimits {
            max_patterns: buf.get_u64_le() as usize,
            max_candidates_per_level: buf.get_u64_le() as usize,
        };
        let params = TreePiParams {
            sigma,
            gamma,
            delta,
            limits,
        };
        if buf.remaining() < 4 {
            return Err(bad("truncated db count"));
        }
        let n_db = buf.get_u32_le() as usize;
        let mut db = Vec::with_capacity(n_db);
        for _ in 0..n_db {
            db.push(get_graph(&mut buf)?);
        }
        if buf.remaining() < n_db {
            return Err(bad("truncated active bitmap"));
        }
        let active: Vec<bool> = (0..n_db).map(|_| buf.get_u8() != 0).collect();

        if buf.remaining() < 4 {
            return Err(bad("truncated feature count"));
        }
        let n_features = buf.get_u32_le() as usize;
        let mut features = Vec::with_capacity(n_features);
        let mut trie = CanonTrie::new();
        for i in 0..n_features {
            let tg = get_graph(&mut buf)?;
            let tree = Tree::from_graph(tg).map_err(|_| bad("feature is not a tree"))?;
            let canon = CanonString(get_u32s(&mut buf)?);
            if tree_core::canonical_string(&tree) != canon {
                return Err(bad("feature canonical string mismatch"));
            }
            let support = get_u32s(&mut buf)?;
            if support.iter().any(|&gid| gid as usize >= n_db) {
                return Err(bad("support references unknown graph"));
            }
            trie.insert(&canon, FeatureId(i as u32));
            features.push(Feature {
                center: tree_core::center(&tree),
                tree,
                canon,
                support,
            });
        }
        let mut centers = Vec::with_capacity(n_features);
        for _ in 0..n_features {
            if buf.remaining() < 4 {
                return Err(bad("truncated center table"));
            }
            let n_entries = buf.get_u32_le() as usize;
            let mut per_graph = FxHashMap::default();
            for _ in 0..n_entries {
                if buf.remaining() < 8 {
                    return Err(bad("truncated center entry"));
                }
                let gid = buf.get_u32_le();
                let n_pos = buf.get_u32_le() as usize;
                let mut positions = Vec::with_capacity(n_pos);
                for _ in 0..n_pos {
                    positions.push(get_center_pos(&mut buf)?);
                }
                per_graph.insert(gid, positions);
            }
            centers.push(per_graph);
        }
        if buf.remaining() < 5 * 8 + 1 {
            return Err(bad("truncated stats"));
        }
        let stats = BuildStats {
            mined: buf.get_u64_le() as usize,
            features: n_features,
            center_entries: buf.get_u64_le() as usize,
            center_positions: buf.get_u64_le() as usize,
            t_mine_ms: buf.get_u64_le() as u128,
            t_centers_ms: buf.get_u64_le() as u128,
            truncated: buf.get_u8() != 0,
        };
        if buf.remaining() < 8 {
            return Err(bad("truncated maintenance epoch"));
        }
        let maintenance_epoch = buf.get_u64_le();
        let sigs: Vec<Vec<VertexSig>> = if version >= 3 {
            let mut sigs = Vec::with_capacity(n_db);
            for g in &db {
                if buf.remaining() < 4 {
                    return Err(bad("truncated signature header"));
                }
                let n = buf.get_u32_le() as usize;
                if n != g.vertex_count() {
                    return Err(bad("signature count does not match graph"));
                }
                if buf.remaining() < n * 16 {
                    return Err(bad("truncated signatures"));
                }
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(VertexSig {
                        label: buf.get_u32_le(),
                        degree: buf.get_u32_le(),
                        mask: buf.get_u64_le(),
                    });
                }
                sigs.push(v);
            }
            sigs
        } else {
            // v2 predates the signature section; signatures are a pure
            // function of the payload, so recomputing is lossless.
            db.iter().map(sig::graph_sigs).collect()
        };
        if buf.has_remaining() {
            return Err(bad("trailing bytes"));
        }
        Ok(TreePiIndex {
            db,
            active,
            features,
            trie,
            centers,
            sigs,
            params,
            stats,
            maintenance_epoch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::graph_from;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_index() -> TreePiIndex {
        let db = vec![
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1), (2, 3, 0)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 1, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]),
        ];
        TreePiIndex::build(db, TreePiParams::quick())
    }

    #[test]
    fn round_trip_preserves_everything() {
        let idx = sample_index();
        let mut bytes = Vec::new();
        idx.save(&mut bytes).unwrap();
        let loaded = TreePiIndex::load(&mut bytes.as_slice()).unwrap();
        assert_eq!(loaded.db(), idx.db());
        assert_eq!(loaded.feature_count(), idx.feature_count());
        for gid in 0..idx.db().len() as u32 {
            assert_eq!(loaded.vertex_sigs(gid), idx.vertex_sigs(gid));
        }
        assert!(loaded.sigs_consistent());
        for (a, b) in idx.features().iter().zip(loaded.features()) {
            assert_eq!(a.canon, b.canon);
            assert_eq!(a.support, b.support);
            assert_eq!(a.center, b.center);
        }
        // queries behave identically
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(
            idx.query(&q, &mut r1).matches,
            loaded.query(&q, &mut r2).matches
        );
    }

    #[test]
    fn round_trip_after_maintenance() {
        let mut idx = sample_index();
        idx.insert(graph_from(&[5, 5], &[(0, 1, 9)]));
        idx.remove(0);
        let mut bytes = Vec::new();
        idx.save(&mut bytes).unwrap();
        let loaded = TreePiIndex::load(&mut bytes.as_slice()).unwrap();
        assert!(!loaded.is_active(0));
        assert_eq!(loaded.active_count(), idx.active_count());
        let q = graph_from(&[5, 5], &[(0, 1, 9)]);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        assert_eq!(loaded.query(&q, &mut rng).matches, vec![3]);
    }

    #[test]
    fn epoch_survives_save_load_insert_round_trip() {
        // Churn, save, reload: the epoch must come back verbatim (an
        // epoch-keyed cache that saw epoch N before the reload must not be
        // able to conflate pre- and post-reload states), and further
        // maintenance must keep counting from there, never from 0.
        let mut idx = sample_index();
        idx.insert(graph_from(&[5, 5], &[(0, 1, 9)]));
        idx.remove(0);
        let epoch = idx.maintenance_epoch();
        assert_eq!(epoch, 2);
        let mut bytes = Vec::new();
        idx.save(&mut bytes).unwrap();
        let mut loaded = TreePiIndex::load(&mut bytes.as_slice()).unwrap();
        assert_eq!(loaded.maintenance_epoch(), epoch);
        let gid = loaded.insert(graph_from(&[6, 6], &[(0, 1, 9)]));
        assert_eq!(loaded.maintenance_epoch(), epoch + 1);
        assert!(loaded.remove(gid));
        assert_eq!(loaded.maintenance_epoch(), epoch + 2);
        // And a second round trip carries the advanced epoch onward.
        let mut bytes2 = Vec::new();
        loaded.save(&mut bytes2).unwrap();
        let again = TreePiIndex::load(&mut bytes2.as_slice()).unwrap();
        assert_eq!(again.maintenance_epoch(), epoch + 2);
    }

    #[test]
    fn version_2_files_load_with_recomputed_signatures() {
        // Synthesize a v2 file from a v3 one: the signature section is the
        // final section, so chop it off and patch the magic. The load must
        // succeed and recompute signatures identical to the stored ones.
        let idx = sample_index();
        let mut bytes = Vec::new();
        idx.save(&mut bytes).unwrap();
        let sig_section: usize = idx.db().iter().map(|g| 4 + 16 * g.vertex_count()).sum();
        bytes.truncate(bytes.len() - sig_section);
        bytes[..4].copy_from_slice(b"TPI2");
        let loaded = TreePiIndex::load(&mut bytes.as_slice()).unwrap();
        assert!(loaded.sigs_consistent());
        for gid in 0..idx.db().len() as u32 {
            assert_eq!(loaded.vertex_sigs(gid), idx.vertex_sigs(gid));
        }
        // And a re-save of the v2-loaded index is byte-identical to the
        // original v3 file (the "lossless recompute" claim).
        let mut resaved = Vec::new();
        loaded.save(&mut resaved).unwrap();
        let mut original = Vec::new();
        idx.save(&mut original).unwrap();
        assert_eq!(resaved, original);
    }

    #[test]
    fn rejects_signature_count_mismatch() {
        let idx = sample_index();
        let mut bytes = Vec::new();
        idx.save(&mut bytes).unwrap();
        // Corrupt the first signature-vector length (first 4 bytes of the
        // final section).
        let sig_section: usize = idx.db().iter().map(|g| 4 + 16 * g.vertex_count()).sum();
        let at = bytes.len() - sig_section;
        bytes[at] ^= 0x01;
        let err = match TreePiIndex::load(&mut bytes.as_slice()) {
            Ok(_) => panic!("corrupt signature section must not load"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("signature count"), "{err}");
    }

    #[test]
    fn rejects_version_1_files() {
        let idx = sample_index();
        let mut bytes = Vec::new();
        idx.save(&mut bytes).unwrap();
        bytes[..4].copy_from_slice(b"TPI1");
        let err = match TreePiIndex::load(&mut bytes.as_slice()) {
            Err(e) => e,
            Ok(_) => panic!("v1 accepted"),
        };
        assert!(err.to_string().contains("version-1"), "{err}");
    }

    #[test]
    fn rejects_bad_magic() {
        let err = match TreePiIndex::load(&mut &b"NOPE"[..]) {
            Err(e) => e,
            Ok(_) => panic!("bad magic accepted"),
        };
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let idx = sample_index();
        let mut bytes = Vec::new();
        idx.save(&mut bytes).unwrap();
        // chopping at any prefix must error, never panic or yield Ok
        for cut in (0..bytes.len()).step_by(7) {
            let r = TreePiIndex::load(&mut &bytes[..cut]);
            assert!(r.is_err(), "accepted a {cut}-byte prefix");
        }
    }

    #[test]
    fn rejects_corrupted_canon() {
        let idx = sample_index();
        let mut bytes = Vec::new();
        idx.save(&mut bytes).unwrap();
        // flip a byte somewhere in the middle; accept either an error or —
        // if the flip landed in padding-free numeric data that stays
        // structurally consistent — detection via the canon re-check
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        let _ = TreePiIndex::load(&mut bytes.as_slice());
        // must not panic (result may be Ok only if the flip hit stats)
    }
}
