//! Randomized Feature-Tree-Partition of a query graph (paper §5.1).
//!
//! A Feature-Tree-Partition splits the query's edges into non-overlapping
//! subtrees that are all indexed features (Definitions 4–5). Finding the
//! *minimum* partition is NP-hard, so the paper runs a randomized procedure
//! `RP(q)` δ times, keeps the smallest partition found as `TP_q`
//! (verification input), and unions all parts across runs into the feature
//! subtree set `SF_q` (filtering input).
//!
//! Our `RP` grows parts directly: pick a random uncovered edge, then grow a
//! random subtree from it for as long as the grown tree remains an indexed
//! feature, emit the part, repeat. This produces exactly the objects the
//! paper's recursive splitting produces — a randomized feature-tree
//! partition whose worst case is all single-edge parts — with the same
//! termination guarantee (single-edge trees are always features, σ(1) = 1).

use crate::index::TreePiIndex;
use crate::trie::FeatureId;
use graph_core::{EdgeId, Graph, VertexId};
use rand::Rng;
use smallvec::SmallVec;
use tree_core::{canonical_string, center, CanonString, Center, Tree};

/// One part of a Feature-Tree-Partition: a feature subtree of the query.
#[derive(Clone, Debug)]
pub struct Part {
    /// Query edge ids covered by this part.
    pub q_edges: Vec<EdgeId>,
    /// Query vertex behind each part-tree vertex: part-tree vertex `i`
    /// corresponds to query vertex `q_vertices[i]`.
    pub q_vertices: Vec<VertexId>,
    /// The part as a standalone tree (isomorphic to the covered subgraph).
    pub tree: Tree,
    /// The indexed feature this part matches.
    pub feature: FeatureId,
    /// Query vertices representing the part's center (one vertex, or the
    /// two endpoints of a center edge), used for center-distance math.
    pub center_reps_in_q: SmallVec<[VertexId; 2]>,
}

/// Outcome of a partition attempt.
#[derive(Clone, Debug)]
pub enum PartitionOutcome {
    /// A complete feature-tree partition.
    Partition(Vec<Part>),
    /// Some single edge of the query is not an indexed feature — no
    /// database graph contains that edge, so the query's support is empty.
    MissingFeature(CanonString),
}

/// Incrementally grown part state.
struct Growth {
    edges: Vec<EdgeId>,
    /// Query vertices in the part, in insertion order (= part tree ids).
    vertices: Vec<VertexId>,
}

impl Growth {
    fn tree_of(&self, q: &Graph) -> Tree {
        let mut b = graph_core::GraphBuilder::with_capacity(self.vertices.len(), self.edges.len());
        for &v in &self.vertices {
            b.add_vertex(q.vlabel(v));
        }
        let local = |v: VertexId| {
            VertexId(
                self.vertices
                    .iter()
                    .position(|&x| x == v)
                    .expect("part vertex") as u32,
            )
        };
        for &e in &self.edges {
            let edge = q.edge(e);
            b.add_edge(local(edge.u), local(edge.v), edge.label)
                .expect("part edges are simple");
        }
        Tree::from_graph(b.build()).expect("growth maintains the tree invariant")
    }
}

/// One randomized partition run, `RP(q)`.
///
/// `extra_features`, when provided, collects every *intermediate* feature
/// tree observed while growing parts — the "group of additional feature
/// subtrees of the query graph" that §5.1 says RP generates as a byproduct.
/// They cost nothing (each growth step already performed the trie lookup)
/// and sharpen the filter intersection.
pub fn random_partition<R: Rng>(q: &Graph, index: &TreePiIndex, rng: &mut R) -> PartitionOutcome {
    random_partition_collecting(q, index, rng, &mut Vec::new())
}

/// [`random_partition`] that also reports intermediate feature trees.
pub fn random_partition_collecting<R: Rng>(
    q: &Graph,
    index: &TreePiIndex,
    rng: &mut R,
    extra_features: &mut Vec<FeatureId>,
) -> PartitionOutcome {
    let m = q.edge_count();
    assert!(m > 0, "queries must have at least one edge");
    let mut covered = vec![false; m];
    let mut covered_count = 0usize;
    let mut parts: Vec<Part> = Vec::new();

    while covered_count < m {
        // Random uncovered seed edge.
        let uncovered: Vec<EdgeId> = q.edge_ids().filter(|e| !covered[e.idx()]).collect();
        let seed = uncovered[rng.gen_range(0..uncovered.len())];
        let sedge = q.edge(seed);
        let mut growth = Growth {
            edges: vec![seed],
            vertices: vec![sedge.u, sedge.v],
        };
        let mut tree = growth.tree_of(q);
        let mut canon = canonical_string(&tree);
        let Some(mut fid) = index.feature_by_canon(&canon) else {
            return PartitionOutcome::MissingFeature(canon);
        };
        extra_features.push(fid);

        // Grow while the grown tree stays an indexed feature.
        loop {
            // Acyclic, uncovered extension candidates adjacent to the part.
            let mut cands: Vec<(EdgeId, VertexId, VertexId)> = Vec::new(); // (edge, attach, new vertex)
            for &v in &growth.vertices {
                for &(w, e) in q.neighbors(v) {
                    if covered[e.idx()] || growth.edges.contains(&e) {
                        continue;
                    }
                    if growth.vertices.contains(&w) {
                        continue; // would close a cycle within the part
                    }
                    cands.push((e, v, w));
                }
            }
            if cands.is_empty() {
                break;
            }
            // Random order; accept the first extension that stays a feature.
            let mut accepted = false;
            while !cands.is_empty() {
                let i = rng.gen_range(0..cands.len());
                let (e, _attach, w) = cands.swap_remove(i);
                if growth.edges.contains(&e) || growth.vertices.contains(&w) {
                    continue;
                }
                growth.edges.push(e);
                growth.vertices.push(w);
                let t2 = growth.tree_of(q);
                let c2 = canonical_string(&t2);
                if let Some(f2) = index.feature_by_canon(&c2) {
                    tree = t2;
                    canon = c2;
                    fid = f2;
                    extra_features.push(f2);
                    accepted = true;
                    break;
                }
                growth.edges.pop();
                growth.vertices.pop();
            }
            if !accepted {
                break;
            }
        }

        for &e in &growth.edges {
            covered[e.idx()] = true;
        }
        covered_count += growth.edges.len();

        let center_reps_in_q: SmallVec<[VertexId; 2]> = match center(&tree) {
            Center::Vertex(v) => smallvec::smallvec![growth.vertices[v.idx()]],
            Center::Edge(e) => {
                let edge = tree.graph().edge(e);
                smallvec::smallvec![growth.vertices[edge.u.idx()], growth.vertices[edge.v.idx()]]
            }
        };
        let _ = canon;
        parts.push(Part {
            q_edges: growth.edges.clone(),
            q_vertices: growth.vertices.clone(),
            tree,
            feature: fid,
            center_reps_in_q,
        });
    }
    PartitionOutcome::Partition(parts)
}

/// δ partition runs (paper §5.1): returns the minimum partition `TP_q` and
/// the union feature set `SF_q`, or the missing feature that proves the
/// support is empty.
pub enum PartitionRuns {
    /// `(TP_q, SF_q)`.
    Ok {
        /// The smallest partition found across the δ runs.
        min_partition: Vec<Part>,
        /// All distinct features used by any run (the filter set).
        sf: Vec<FeatureId>,
    },
    /// Some query edge is not a feature: empty support, no verification
    /// needed.
    MissingFeature(CanonString),
}

/// Run `RP(q)` `delta` times. The filter set `SF_q` unions, across runs,
/// the final parts, every intermediate growth tree, and all single-edge
/// trees of `q` (§1: "we enumerate the frequent subtrees in q"; §5.1: RP
/// "can also generate a group of additional feature subtrees … at the same
/// time").
pub fn partition_runs<R: Rng>(
    q: &Graph,
    index: &TreePiIndex,
    delta: usize,
    rng: &mut R,
) -> PartitionRuns {
    partition_runs_with(q, index, delta, rng, true)
}

/// [`partition_runs`] with control over `SF_q` collection. Callers that
/// replace the filter set anyway (full feature enumeration) pass
/// `collect_sf = false` and get `sf: vec![]` back without the per-run
/// accumulation and the final sort/dedup. The RNG stream is identical
/// either way — collection never consumes randomness — so `TP_q` does not
/// depend on this flag.
pub fn partition_runs_with<R: Rng>(
    q: &Graph,
    index: &TreePiIndex,
    delta: usize,
    rng: &mut R,
    collect_sf: bool,
) -> PartitionRuns {
    let mut best: Option<Vec<Part>> = None;
    let mut sf: Vec<FeatureId> = Vec::new();
    // Single edges of q: every one must be a feature (σ(1) = 1), or the
    // support is provably empty. This early-exit check runs regardless of
    // `collect_sf`; only the bookkeeping is conditional.
    for e in q.edge_ids() {
        let edge = q.edge(e);
        let mut b = graph_core::GraphBuilder::with_capacity(2, 1);
        let u = b.add_vertex(q.vlabel(edge.u));
        let v = b.add_vertex(q.vlabel(edge.v));
        b.add_edge(u, v, edge.label).expect("single edge");
        let t = Tree::from_graph(b.build()).expect("an edge is a tree");
        let c = canonical_string(&t);
        match index.feature_by_canon(&c) {
            Some(fid) => {
                if collect_sf {
                    sf.push(fid);
                }
            }
            None => return PartitionRuns::MissingFeature(c),
        }
    }
    let mut scratch: Vec<FeatureId> = Vec::new();
    for _ in 0..delta.max(1) {
        let acc = if collect_sf { &mut sf } else { &mut scratch };
        match random_partition_collecting(q, index, rng, acc) {
            PartitionOutcome::MissingFeature(c) => return PartitionRuns::MissingFeature(c),
            PartitionOutcome::Partition(parts) => {
                if best.as_ref().is_none_or(|b| parts.len() < b.len()) {
                    best = Some(parts);
                }
            }
        }
        scratch.clear();
    }
    if collect_sf {
        sf.sort_unstable();
        sf.dedup();
    }
    PartitionRuns::Ok {
        min_partition: best.expect("delta >= 1 run"),
        sf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TreePiParams;
    use graph_core::graph_from;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn index() -> TreePiIndex {
        let db = vec![
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
        ];
        TreePiIndex::build(db, TreePiParams::quick())
    }

    /// Check partition invariants: covers all edges exactly once, parts are
    /// trees matching their feature, centers map into q.
    fn check_partition(q: &Graph, idx: &TreePiIndex, parts: &[Part]) {
        let mut seen = vec![false; q.edge_count()];
        for p in parts {
            for &e in &p.q_edges {
                assert!(!seen[e.idx()], "edge covered twice");
                seen[e.idx()] = true;
            }
            assert_eq!(p.q_edges.len(), p.tree.edge_count());
            assert_eq!(p.q_vertices.len(), p.tree.vertex_count());
            // tree is isomorphic to the indexed feature
            let f = idx.feature(p.feature);
            assert_eq!(canonical_string(&p.tree), f.canon);
            // part-tree labels match the query labels
            for (i, &qv) in p.q_vertices.iter().enumerate() {
                assert_eq!(p.tree.graph().vlabel(VertexId(i as u32)), q.vlabel(qv));
            }
            for &r in &p.center_reps_in_q {
                assert!(r.idx() < q.vertex_count());
            }
        }
        assert!(seen.iter().all(|&s| s), "not all edges covered");
    }

    #[test]
    fn partition_covers_query() {
        let idx = index();
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..20 {
            match random_partition(&q, &idx, &mut rng) {
                PartitionOutcome::Partition(parts) => check_partition(&q, &idx, &parts),
                PartitionOutcome::MissingFeature(_) => panic!("query edges are all features"),
            }
        }
    }

    #[test]
    fn tree_query_can_be_single_part() {
        // Query = 2-edge path that is itself a feature: some run should
        // find the 1-part partition. (γ < 1 disables shrinking, which would
        // otherwise drop this redundant path from the feature set.)
        let db = vec![
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
        ];
        let idx = TreePiIndex::build(
            db,
            crate::params::TreePiParams {
                gamma: 0.5,
                ..crate::params::TreePiParams::quick()
            },
        );
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut best = usize::MAX;
        for _ in 0..20 {
            if let PartitionOutcome::Partition(p) = random_partition(&q, &idx, &mut rng) {
                best = best.min(p.len());
            }
        }
        assert_eq!(best, 1);
    }

    #[test]
    fn missing_feature_detected() {
        let idx = index();
        // label 9 never occurs in the database
        let q = graph_from(&[9, 9], &[(0, 1, 0)]);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(matches!(
            random_partition(&q, &idx, &mut rng),
            PartitionOutcome::MissingFeature(_)
        ));
    }

    #[test]
    fn runs_produce_min_partition_and_sf() {
        let idx = index();
        let q = graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        match partition_runs(&q, &idx, 10, &mut rng) {
            PartitionRuns::Ok { min_partition, sf } => {
                check_partition(&q, &idx, &min_partition);
                assert!(!sf.is_empty());
                // sf is sorted and deduped
                let mut s = sf.clone();
                s.sort_unstable();
                s.dedup();
                assert_eq!(s, sf);
                // every part's feature of the min partition is in sf
                for p in &min_partition {
                    assert!(sf.contains(&p.feature));
                }
            }
            PartitionRuns::MissingFeature(_) => panic!("unexpected missing feature"),
        }
    }

    #[test]
    fn single_edge_query() {
        let idx = index();
        let q = graph_from(&[0, 1], &[(0, 1, 0)]);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        match random_partition(&q, &idx, &mut rng) {
            PartitionOutcome::Partition(parts) => {
                assert_eq!(parts.len(), 1);
                assert_eq!(parts[0].q_edges.len(), 1);
                // single edge is bicentral: two center reps
                assert_eq!(parts[0].center_reps_in_q.len(), 2);
            }
            _ => panic!(),
        }
    }
}
