//! Signature-filter soundness suite: seeded random query/database pairs
//! driven at 1, 2 and 8 pool workers.
//!
//! The neighborhood-signature kill stage (see `treepi::sig`) is a
//! *necessary-condition* filter: it may only discard candidates that
//! cannot contain the query. Three-way equivalence is checked on every
//! schedule — answers with the filter on, answers with it off, and the
//! brute-force [`scan_support`] oracle must agree exactly, while the
//! reported funnel stays consistent (`pruned - sig_killed >= answers`).
//!
//! A churn variant exercises the §7.1 maintenance invariant: per-vertex
//! signatures are a pure function of the stored payload, so
//! `sigs_consistent()` must hold after every queued insert/remove batch
//! and after a background re-mine publishes.

use graph_core::{ELabel, Graph, GraphBuilder, VLabel, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use treepi::{scan_support, Engine, QueryOptions, TreePiIndex, TreePiParams};

/// Random connected labeled graph (same shape as `churn_prop.rs`): a
/// random tree plus a few extra edges, replayable from the seed alone.
fn random_graph(rng: &mut ChaCha8Rng, nmax: usize) -> Graph {
    let n = rng.gen_range(2..=nmax);
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_vertex(VLabel(rng.gen_range(0..3)));
    }
    for i in 1..n {
        let p = rng.gen_range(0..i);
        b.add_edge(
            VertexId(i as u32),
            VertexId(p as u32),
            ELabel(rng.gen_range(0..2)),
        )
        .expect("tree edge");
    }
    for _ in 0..rng.gen_range(0..3usize) {
        let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
        let (u, v) = (VertexId(u as u32), VertexId(v as u32));
        if u != v && !b.has_edge(u, v) {
            let _ = b.add_edge(u, v, ELabel(rng.gen_range(0..2)));
        }
    }
    b.build()
}

const SEEDS: [u64; 3] = [7, 2007, 0x00C0_FFEE];

/// One seeded soundness schedule at a fixed worker count: build a random
/// database, then batch random queries with the signature filter on and
/// off and demand both match the scan oracle candidate-for-candidate.
fn run_soundness(workers: usize, seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let db: Vec<Graph> = (0..10).map(|_| random_graph(&mut rng, 8)).collect();
    let engine = Engine::new(TreePiIndex::build(db, TreePiParams::quick()), workers);
    assert!(engine.index().sigs_consistent(), "sigs wrong at build");

    let queries: Vec<Graph> = (0..12).map(|_| random_graph(&mut rng, 5)).collect();
    let on = QueryOptions {
        use_sig_filter: true,
        ..QueryOptions::default()
    };
    let off = QueryOptions {
        use_sig_filter: false,
        ..QueryOptions::default()
    };
    // Identical batch seed → identical partition randomness on both runs,
    // so the funnels are comparable stage-for-stage, not just answer-level.
    let (r_on, _) = engine.query_batch(&queries, on, seed);
    let (r_off, _) = engine.query_batch(&queries, off, seed);
    let snapshot = engine.index();
    for (i, q) in queries.iter().enumerate() {
        let truth = scan_support(&snapshot, q);
        assert_eq!(
            r_on[i].matches, truth,
            "seed {seed}, {workers} workers, query {i}: filter-on diverged from oracle"
        );
        assert_eq!(
            r_off[i].matches, truth,
            "seed {seed}, {workers} workers, query {i}: filter-off diverged from oracle"
        );
        assert_eq!(
            r_off[i].stats.sig_killed, 0,
            "disabled filter must not report kills"
        );
        let s = &r_on[i].stats;
        assert!(
            s.filtered - s.sig_killed >= s.pruned && s.pruned >= s.answers,
            "query {i}: funnel does not narrow (filtered {} sig_killed {} pruned {} answers {})",
            s.filtered,
            s.sig_killed,
            s.pruned,
            s.answers
        );
        assert_eq!(
            s.filtered, r_off[i].stats.filtered,
            "query {i}: the kill stage must not change the upstream funnel"
        );
        assert!(
            s.pruned <= r_off[i].stats.pruned,
            "query {i}: killing candidates before CDC cannot grow the pruned set"
        );
    }
}

#[test]
fn sig_filter_sound_1_worker() {
    for seed in SEEDS {
        run_soundness(1, seed);
    }
}

#[test]
fn sig_filter_sound_2_workers() {
    for seed in SEEDS {
        run_soundness(2, seed);
    }
}

#[test]
fn sig_filter_sound_8_workers() {
    for seed in SEEDS {
        run_soundness(8, seed);
    }
}

/// Churn variant: signatures track the payload exactly through queued
/// inserts/removes, batched applies, and a low-threshold background
/// re-mine — with oracle-exact answers (sig filter on) after every batch.
fn run_churn_sigs(workers: usize, seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let initial: Vec<Graph> = (0..6).map(|_| random_graph(&mut rng, 7)).collect();
    let engine = Engine::with_remine(
        TreePiIndex::build(initial, TreePiParams::quick()),
        workers,
        4,
    );
    let mut live: Vec<u32> = (0..6).collect();

    for step in 0..20u64 {
        if live.is_empty() || rng.gen_bool(0.6) {
            let gid = engine.queue_insert(random_graph(&mut rng, 7));
            live.push(gid);
        } else {
            let i = rng.gen_range(0..live.len());
            let gid = live.swap_remove(i);
            assert!(engine.queue_remove(gid), "step {step}: gid {gid} was live");
        }
        engine.apply_pending();
        let snapshot = engine.index();
        assert!(
            snapshot.sigs_consistent(),
            "step {step}, {workers} workers: sigs diverged from payload"
        );
        let q = random_graph(&mut rng, 4);
        let (results, _) = engine.query_batch(
            std::slice::from_ref(&q),
            QueryOptions::default(),
            seed ^ step,
        );
        assert_eq!(
            results[0].matches,
            scan_support(&snapshot, &q),
            "step {step}: churned answer diverged from oracle"
        );
    }

    engine.wait_remine_idle();
    assert!(
        engine.index().sigs_consistent(),
        "re-mine published inconsistent sigs"
    );
    assert!(engine.into_index().sigs_consistent());
}

#[test]
fn sigs_track_churn_1_worker() {
    for seed in SEEDS {
        run_churn_sigs(1, seed);
    }
}

#[test]
fn sigs_track_churn_8_workers() {
    for seed in SEEDS {
        run_churn_sigs(8, seed);
    }
}
