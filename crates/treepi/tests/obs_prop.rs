//! Property tests for the metrics layer: on arbitrary databases and query
//! batches, the `obs` funnel counters must reconcile **exactly** with the
//! per-query `QueryStats` the engine returns, and every counter outside the
//! `engine.*` / `pool.*` namespaces must be bit-identical at 1, 2, and 8
//! threads.
//!
//! These are the two invariants the whole observability design rests on:
//! shard-per-thread recording loses nothing (counters are integers merged
//! commutatively), and instrumentation never observes the execution shape
//! it is not supposed to (scheduling shows up only under `engine.*` and
//! `pool.*`).

use graph_core::{ELabel, Graph, GraphBuilder, VLabel, VertexId};
use proptest::prelude::*;
use treepi::{QueryOptions, TreePiIndex, TreePiParams};

/// A random connected labeled graph: random tree plus a few extra edges.
fn arb_connected_graph(nmax: usize) -> impl Strategy<Value = Graph> {
    (2..=nmax).prop_flat_map(move |n| {
        let vlabels = proptest::collection::vec(0u32..3, n);
        let parents = proptest::collection::vec((0usize..nmax, 0u32..2), n - 1);
        let extras = proptest::collection::vec((0usize..nmax, 0usize..nmax, 0u32..2), 0..3);
        (vlabels, parents, extras).prop_map(move |(vl, ps, ex)| {
            let mut b = GraphBuilder::new();
            for l in &vl {
                b.add_vertex(VLabel(*l));
            }
            for (i, (p, el)) in ps.iter().enumerate() {
                b.add_edge(
                    VertexId((i + 1) as u32),
                    VertexId((p % (i + 1)) as u32),
                    ELabel(*el),
                )
                .expect("tree edge");
            }
            for (u, v, el) in ex {
                let (u, v) = (VertexId((u % n) as u32), VertexId((v % n) as u32));
                if u != v && !b.has_edge(u, v) {
                    let _ = b.add_edge(u, v, ELabel(el));
                }
            }
            b.build()
        })
    })
}

fn arb_db(graphs: usize, nmax: usize) -> impl Strategy<Value = Vec<Graph>> {
    proptest::collection::vec(arb_connected_graph(nmax), 1..=graphs)
}

fn run_metered(
    idx: &TreePiIndex,
    queries: &[Graph],
    threads: usize,
    seed: u64,
) -> (Vec<treepi::QueryResult>, obs::MetricSet) {
    let registry = obs::Registry::new();
    let (results, _) =
        idx.query_batch_obs(queries, QueryOptions::default(), threads, seed, &registry);
    (results, registry.drain())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `funnel.*` counters are exact sums of the returned `QueryStats`, and
    /// deterministic counters are bit-identical at 1, 2, and 8 threads.
    #[test]
    fn funnel_counters_reconcile_with_query_stats(
        db in arb_db(8, 7),
        queries in proptest::collection::vec(arb_connected_graph(5), 1..=6),
        seed in any::<u64>(),
    ) {
        let idx = TreePiIndex::build(db, TreePiParams::quick());
        let (results, base) = run_metered(&idx, &queries, 1, seed);
        if !obs::COMPILED_IN {
            // `--features off` build: the registry records nothing and the
            // reconciliation below is vacuous.
            return Ok(());
        }

        // Exact reconciliation against the per-query stats.
        prop_assert_eq!(base.counter(obs::names::QUERIES), queries.len() as u64);
        let sums = |f: fn(&treepi::QueryStats) -> usize| -> u64 {
            results.iter().map(|r| f(&r.stats) as u64).sum()
        };
        prop_assert_eq!(base.counter(obs::names::FILTERED), sums(|s| s.filtered));
        prop_assert_eq!(base.counter(obs::names::PRUNED), sums(|s| s.pruned));
        prop_assert_eq!(base.counter(obs::names::ANSWERS), sums(|s| s.answers));
        let missing: u64 = results.iter().filter(|r| r.stats.missing_feature).count() as u64;
        prop_assert_eq!(base.counter(obs::names::MISSING_FEATURE), missing);

        // All four pipeline spans are observed exactly once per query, even
        // for short-circuited queries.
        for name in obs::names::PIPELINE_SPANS {
            let span = base.span(name).expect("pipeline span always present");
            prop_assert_eq!(span.count, queries.len() as u64);
        }

        // Thread-count invariance of everything outside `engine.*`.
        let base_det = base.deterministic_counters();
        for threads in [2usize, 8] {
            let (results_t, m) = run_metered(&idx, &queries, threads, seed);
            for (a, b) in results.iter().zip(&results_t) {
                prop_assert_eq!(&a.matches, &b.matches);
            }
            prop_assert_eq!(&m.deterministic_counters(), &base_det, "threads={}", threads);
        }
    }

    /// Build-path counter reconciliation: every counter outside `engine.*`
    /// (`mine.level{N}.*`, `mine.*` totals, `build.*`) and every
    /// non-`engine.*` span count must match exactly between a serial and a
    /// parallel build — the parallel miner's canonical merge may not change
    /// what the instrumentation observes.
    #[test]
    fn build_counters_reconcile_across_thread_counts(db in arb_db(10, 8)) {
        let build_metered = |threads: usize| {
            let registry = obs::Registry::new();
            let shard = registry.shard();
            let idx = TreePiIndex::build_with_threads_obs(
                db.clone(),
                TreePiParams::quick(),
                threads,
                &shard,
            );
            registry.absorb(shard);
            (idx, registry.drain())
        };
        let (_, base) = build_metered(1);
        if !obs::COMPILED_IN {
            return Ok(());
        }
        // Sanity: the serial build actually recorded mining/build counters.
        prop_assert!(base.counter("build.mined") > 0);
        prop_assert!(base.counter("mine.level1.candidates") > 0);

        let base_det = base.deterministic_counters();
        // `pool.*` spans (worker busy/park histograms flushed from the
        // worker pool) describe execution shape just like `engine.*`.
        let span_counts = |m: &obs::MetricSet| -> Vec<(String, u64)> {
            m.spans()
                .filter(|(k, _)| !k.starts_with("engine.") && !k.starts_with("pool."))
                .map(|(k, v)| (k.to_string(), v.count))
                .collect()
        };
        let base_spans = span_counts(&base);
        for threads in [2usize, 8] {
            let (_, m) = build_metered(threads);
            prop_assert_eq!(&m.deterministic_counters(), &base_det, "threads={}", threads);
            prop_assert_eq!(&span_counts(&m), &base_spans, "threads={}", threads);
        }
    }

    /// The metered batch returns exactly what the unmetered batch returns —
    /// instrumentation must never perturb results.
    #[test]
    fn metered_batch_matches_unmetered(
        db in arb_db(6, 6),
        queries in proptest::collection::vec(arb_connected_graph(5), 1..=4),
        seed in any::<u64>(),
    ) {
        let idx = TreePiIndex::build(db, TreePiParams::quick());
        let (plain, _) = idx.query_batch(&queries, QueryOptions::default(), 2, seed);
        let (metered, _) = run_metered(&idx, &queries, 2, seed);
        for (a, b) in plain.iter().zip(&metered) {
            prop_assert_eq!(&a.matches, &b.matches);
            prop_assert_eq!(a.stats.filtered, b.stats.filtered);
            prop_assert_eq!(a.stats.pruned, b.stats.pruned);
            prop_assert_eq!(a.stats.partition_size, b.stats.partition_size);
        }
    }
}
