//! Churn-equivalence property suite: seeded random insert/remove/query
//! schedules driven through [`Engine`] at 1, 2 and 8 pool workers.
//!
//! Two layers of invariants:
//!
//! - **Every step**: a query batch dispatched right after each mutation
//!   must equal the brute-force scan oracle over the snapshot it ran
//!   against — §7.1 maintenance never costs exactness, at any pool size.
//! - **Final state**: the churned index is equivalent to a fresh build on
//!   the surviving graphs *modulo §7.1 repair*. The bound is explicit:
//!   repairs patch support sets but never mine new features or retire old
//!   ones, so the churned index keeps the initial build's feature set and
//!   its answers stay exact (checked per step above); one
//!   [`TreePiIndex::remine_with_pool`] restores exact fresh-build feature
//!   parity (same canonical strings — σ is absolute, Eq. 1, so thresholds
//!   do not shift with churn), and answers agree with the fresh build
//!   through the survivor-rank gid map (churned gids are stable with
//!   tombstones; a fresh build densifies).

use graph_core::{ELabel, Graph, GraphBuilder, VLabel, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use treepi::{scan_support, Engine, QueryOptions, TreePiIndex, TreePiParams};

/// Random connected labeled graph: a random tree plus a few extra edges
/// (same shape as the proptest generator in `prop.rs`, but driven by a
/// plain seeded RNG so schedules replay exactly).
fn random_graph(rng: &mut ChaCha8Rng, nmax: usize) -> Graph {
    let n = rng.gen_range(2..=nmax);
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_vertex(VLabel(rng.gen_range(0..3)));
    }
    for i in 1..n {
        let p = rng.gen_range(0..i);
        b.add_edge(
            VertexId(i as u32),
            VertexId(p as u32),
            ELabel(rng.gen_range(0..2)),
        )
        .expect("tree edge");
    }
    for _ in 0..rng.gen_range(0..3usize) {
        let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
        let (u, v) = (VertexId(u as u32), VertexId(v as u32));
        if u != v && !b.has_edge(u, v) {
            let _ = b.add_edge(u, v, ELabel(rng.gen_range(0..2)));
        }
    }
    b.build()
}

fn sorted_canons(idx: &TreePiIndex) -> Vec<tree_core::CanonString> {
    let mut v: Vec<_> = idx.features().iter().map(|f| f.canon.clone()).collect();
    v.sort();
    v
}

/// One seeded churn schedule: 30 mutations (60% insert / 40% remove of a
/// random live gid), an oracle-checked query batch after every step, and
/// the final fresh-build equivalence described in the module docs.
fn run_churn(workers: usize, seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let initial: Vec<Graph> = (0..6).map(|_| random_graph(&mut rng, 7)).collect();
    let engine = Engine::new(TreePiIndex::build(initial, TreePiParams::quick()), workers);
    let mut live: Vec<u32> = (0..6).collect();
    let mut expected_next = 6u32;

    for step in 0..30u64 {
        if live.is_empty() || rng.gen_bool(0.6) {
            let gid = engine.insert(random_graph(&mut rng, 7));
            assert_eq!(gid, expected_next, "gids assign densely in queue order");
            expected_next += 1;
            live.push(gid);
        } else {
            let i = rng.gen_range(0..live.len());
            let gid = live.swap_remove(i);
            assert!(engine.remove(gid), "step {step}: gid {gid} was live");
        }

        let queries: Vec<Graph> = (0..2).map(|_| random_graph(&mut rng, 4)).collect();
        let snapshot = engine.index();
        let (results, _) = engine.query_batch(&queries, QueryOptions::default(), seed ^ step);
        for (q, r) in queries.iter().zip(&results) {
            assert_eq!(
                r.matches,
                scan_support(&snapshot, q),
                "step {step}, {workers} workers: batch answer diverged from scan oracle"
            );
        }
    }

    // Final-state equivalence: re-mine the churned index and compare with
    // a fresh build on the survivors.
    let churned = engine.index();
    let remined = churned.remine_with_pool(engine.pool());
    let mut rank: Vec<Option<u32>> = vec![None; churned.db().len()];
    let mut fresh_db = Vec::new();
    for (i, g) in churned.db().iter().enumerate() {
        if churned.is_active(i as u32) {
            rank[i] = Some(fresh_db.len() as u32);
            fresh_db.push(g.clone());
        }
    }
    assert_eq!(fresh_db.len(), live.len());
    let fresh = TreePiIndex::build(fresh_db, TreePiParams::quick());
    assert_eq!(
        sorted_canons(&remined),
        sorted_canons(&fresh),
        "one re-mine must restore fresh-build feature parity (σ is absolute)"
    );
    for k in 0..8u64 {
        let q = random_graph(&mut rng, 5);
        let mut rng_a = ChaCha8Rng::seed_from_u64(seed ^ (k << 17));
        let mut rng_b = rng_a.clone();
        let mapped: Vec<u32> = churned
            .query(&q, &mut rng_a)
            .matches
            .iter()
            .map(|&g| rank[g as usize].expect("churned answers only cite active gids"))
            .collect();
        assert_eq!(
            mapped,
            fresh.query(&q, &mut rng_b).matches,
            "probe {k}: churned answers must equal fresh build through the gid map"
        );
    }

    // Teardown path: into_index applies/waits/unwraps without losing state.
    let final_idx = engine.into_index();
    assert_eq!(final_idx.maintenance_epoch(), churned.maintenance_epoch());
    assert_eq!(final_idx.active_count(), live.len());
}

const SEEDS: [u64; 3] = [7, 2007, 0x00C0_FFEE];

#[test]
fn churn_schedules_1_worker() {
    for seed in SEEDS {
        run_churn(1, seed);
    }
}

#[test]
fn churn_schedules_2_workers() {
    for seed in SEEDS {
        run_churn(2, seed);
    }
}

#[test]
fn churn_schedules_8_workers() {
    for seed in SEEDS {
        run_churn(8, seed);
    }
}

/// Pinned snapshots stay internally consistent while a writer churns:
/// reader threads repeatedly pin, query, and oracle-check the *same* pin —
/// a torn snapshot (query path and database disagreeing mid-swap) fails
/// the comparison; a blocked reader fails the join deadline implicitly.
#[test]
fn pinned_reads_stay_consistent_under_concurrent_churn() {
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let initial: Vec<Graph> = (0..6).map(|_| random_graph(&mut rng, 7)).collect();
    let engine = std::sync::Arc::new(Engine::new(
        TreePiIndex::build(initial, TreePiParams::quick()),
        2,
    ));
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let progress = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));

    let readers: Vec<_> = (0..3u64)
        .map(|r| {
            let engine = std::sync::Arc::clone(&engine);
            let stop = std::sync::Arc::clone(&stop);
            let progress = std::sync::Arc::clone(&progress);
            std::thread::spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(1000 + r);
                let mut checked = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let q = random_graph(&mut rng, 4);
                    let snap = engine.pin();
                    let got = snap.query(&q, &mut rng).matches;
                    assert_eq!(got, scan_support(&snap, &q), "reader {r}: torn snapshot");
                    checked += 1;
                    progress.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                checked
            })
        })
        .collect();

    let mut live: Vec<u32> = (0..6).collect();
    let mut ops = 0u32;
    // At least 40 churn ops, then keep churning (lightly) until the readers
    // have demonstrably overlapped with the writer — otherwise a slow thread
    // spawn on a loaded machine lets the writer finish before any reader
    // completes a single check.
    while ops < 40 || progress.load(std::sync::atomic::Ordering::Relaxed) == 0 {
        if live.is_empty() || rng.gen_bool(0.6) {
            live.push(engine.insert(random_graph(&mut rng, 7)));
        } else {
            let i = rng.gen_range(0..live.len());
            let gid = live.swap_remove(i);
            assert!(engine.remove(gid));
        }
        ops += 1;
        if ops >= 40 {
            std::thread::yield_now();
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|h| h.join().expect("reader")).sum();
    assert!(total > 0, "readers must have made progress during churn");
}

/// Background re-mining under churn: with a low staleness threshold the
/// re-mine thread publishes mid-schedule; answers stay oracle-exact at
/// every step and the counters reconcile.
#[test]
fn background_remine_keeps_answers_exact_under_churn() {
    let mut rng = ChaCha8Rng::seed_from_u64(97);
    let initial: Vec<Graph> = (0..6).map(|_| random_graph(&mut rng, 7)).collect();
    let engine = Engine::with_remine(TreePiIndex::build(initial, TreePiParams::quick()), 2, 4);
    let mut live: Vec<u32> = (0..6).collect();
    for step in 0..40u64 {
        if live.is_empty() || rng.gen_bool(0.6) {
            live.push(engine.insert(random_graph(&mut rng, 7)));
        } else {
            let i = rng.gen_range(0..live.len());
            let gid = live.swap_remove(i);
            assert!(engine.remove(gid));
        }
        let q = random_graph(&mut rng, 4);
        let snapshot = engine.index();
        let (results, _) =
            engine.query_batch(std::slice::from_ref(&q), QueryOptions::default(), step);
        assert_eq!(
            results[0].matches,
            scan_support(&snapshot, &q),
            "step {step}"
        );
    }
    engine.wait_remine_idle();
    let stats = engine.maint_stats();
    assert!(
        stats.remines_completed >= 1,
        "threshold 4 over 40 ops must have re-mined: {stats:?}"
    );
    assert_eq!(stats.remines_completed, stats.remine_triggers);
    assert_eq!(stats.queued, 40);
    assert_eq!(stats.applied, 40);
    let idx = engine.into_index();
    assert_eq!(idx.active_count(), live.len());
}
