//! Property tests for the index: on arbitrary databases and queries, the
//! pipeline is exact (equals the brute-force scan), the candidate funnel
//! only narrows, and partitions are well-formed.

use graph_core::{ELabel, Graph, GraphBuilder, VLabel, VertexId};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use treepi::{
    partition_runs, query_rng, scan_support, PartitionRuns, QueryOptions, SfMode, TreePiIndex,
    TreePiParams,
};

/// A random connected labeled graph: random tree plus a few extra edges.
fn arb_connected_graph(nmax: usize) -> impl Strategy<Value = Graph> {
    (2..=nmax).prop_flat_map(move |n| {
        let vlabels = proptest::collection::vec(0u32..3, n);
        let parents = proptest::collection::vec((0usize..nmax, 0u32..2), n - 1);
        let extras = proptest::collection::vec((0usize..nmax, 0usize..nmax, 0u32..2), 0..3);
        (vlabels, parents, extras).prop_map(move |(vl, ps, ex)| {
            let mut b = GraphBuilder::new();
            for l in &vl {
                b.add_vertex(VLabel(*l));
            }
            for (i, (p, el)) in ps.iter().enumerate() {
                b.add_edge(
                    VertexId((i + 1) as u32),
                    VertexId((p % (i + 1)) as u32),
                    ELabel(*el),
                )
                .expect("tree edge");
            }
            for (u, v, el) in ex {
                let (u, v) = (VertexId((u % n) as u32), VertexId((v % n) as u32));
                if u != v && !b.has_edge(u, v) {
                    let _ = b.add_edge(u, v, ELabel(el));
                }
            }
            b.build()
        })
    })
}

fn arb_db(graphs: usize, nmax: usize) -> impl Strategy<Value = Vec<Graph>> {
    proptest::collection::vec(arb_connected_graph(nmax), 1..=graphs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn query_is_exact_on_arbitrary_databases(
        db in arb_db(8, 7),
        q in arb_connected_graph(5),
        seed in any::<u64>(),
    ) {
        let idx = TreePiIndex::build(db, TreePiParams::quick());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let r = idx.query(&q, &mut rng);
        prop_assert_eq!(&r.matches, &scan_support(&idx, &q));
        prop_assert!(r.stats.filtered >= r.stats.pruned);
        prop_assert!(r.stats.pruned >= r.stats.answers);
    }

    #[test]
    fn every_ablation_is_exact(
        db in arb_db(6, 6),
        q in arb_connected_graph(5),
        seed in any::<u64>(),
    ) {
        let idx = TreePiIndex::build(db, TreePiParams::quick());
        let truth = scan_support(&idx, &q);
        for sf in [SfMode::FullEnumeration, SfMode::PartitionOnly] {
            for cdc in [true, false] {
                for recon in [true, false] {
                    for sig in [true, false] {
                        let mut rng = ChaCha8Rng::seed_from_u64(seed);
                        let r = idx.query_with(
                            &q,
                            QueryOptions {
                                sf_mode: sf,
                                use_cdc: cdc,
                                use_reconstruction: recon,
                                use_sig_filter: sig,
                                delta_override: None,
                            },
                            &mut rng,
                        );
                        prop_assert_eq!(
                            &r.matches,
                            &truth,
                            "sf={:?} cdc={} recon={} sig={}",
                            sf,
                            cdc,
                            recon,
                            sig
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn partitions_cover_queries_exactly_once(
        db in arb_db(6, 6),
        q in arb_connected_graph(6),
        seed in any::<u64>(),
    ) {
        let idx = TreePiIndex::build(db, TreePiParams::quick());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        match partition_runs(&q, &idx, 3, &mut rng) {
            PartitionRuns::MissingFeature(_) => {
                // then the scan must also be empty
                prop_assert!(scan_support(&idx, &q).is_empty());
            }
            PartitionRuns::Ok { min_partition, sf } => {
                let mut covered = vec![false; q.edge_count()];
                for p in &min_partition {
                    prop_assert!(p.tree.graph().is_tree());
                    for e in &p.q_edges {
                        prop_assert!(!covered[e.idx()], "edge covered twice");
                        covered[e.idx()] = true;
                    }
                    // feature lookup is consistent
                    let f = idx.feature(p.feature);
                    prop_assert_eq!(&tree_core::canonical_string(&p.tree), &f.canon);
                }
                prop_assert!(covered.iter().all(|&c| c));
                prop_assert!(!sf.is_empty());
            }
        }
    }

    #[test]
    fn query_batch_is_deterministic_across_thread_counts(
        db in arb_db(6, 6),
        queries in proptest::collection::vec(arb_connected_graph(5), 1..=6),
        seed in any::<u64>(),
    ) {
        let idx = TreePiIndex::build(db, TreePiParams::quick());
        let opts = QueryOptions::default();
        // Sequential ground truth on the engine's own per-query RNGs.
        let seq: Vec<_> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| idx.query_with(q, opts, &mut query_rng(seed, i)))
            .collect();
        for threads in [1usize, 2, 8] {
            let (batch, summary) = idx.query_batch(&queries, opts, threads, seed);
            prop_assert_eq!(batch.len(), queries.len());
            prop_assert_eq!(summary.queries, queries.len());
            for (i, (b, s)) in batch.iter().zip(&seq).enumerate() {
                prop_assert_eq!(&b.matches, &s.matches, "matches, query {} threads {}", i, threads);
                prop_assert_eq!(
                    b.stats.filtered, s.stats.filtered,
                    "candidate count |Pq|, query {} threads {}", i, threads
                );
                prop_assert_eq!(
                    b.stats.pruned, s.stats.pruned,
                    "pruned count |P'q|, query {} threads {}", i, threads
                );
                prop_assert_eq!(
                    b.stats.partition_size, s.stats.partition_size,
                    "partition size, query {} threads {}", i, threads
                );
            }
        }
    }

    #[test]
    fn insert_remove_preserve_exactness(
        db in arb_db(5, 6),
        extra in arb_connected_graph(6),
        q in arb_connected_graph(4),
        seed in any::<u64>(),
    ) {
        let mut idx = TreePiIndex::build(db, TreePiParams::quick());
        let gid = idx.insert(extra);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        prop_assert_eq!(idx.query(&q, &mut rng).matches, scan_support(&idx, &q));
        idx.remove(gid);
        if gid > 0 {
            idx.remove(gid - 1);
        }
        prop_assert_eq!(idx.query(&q, &mut rng).matches, scan_support(&idx, &q));
    }
}
