//! Pool-equivalence property tests: the persistent worker pool must be
//! invisible in every output. On arbitrary databases and query batches, a
//! long-lived [`treepi::Engine`] must return bit-identical results and
//! deterministic funnel counters at 1, 2, and 8 pool workers **and**
//! against the retired scoped-thread implementation preserved in
//! [`treepi::scoped_ref`]; index builds dispatched onto a pool must
//! serialize to the same bytes at any pool size. A deterministic
//! re-entrancy test drives the nested-dispatch path (a pool-run query
//! fanning its prune/verify stages back into the same pool) that the
//! random cases rarely reach.

use graph_core::par::Pool;
use graph_core::{graph_from, ELabel, Graph, GraphBuilder, VLabel, VertexId};
use proptest::prelude::*;
use treepi::{Engine, QueryOptions, TreePiIndex, TreePiParams, INTRA_PAR_THRESHOLD};

/// A random connected labeled graph: random tree plus a few extra edges.
fn arb_connected_graph(nmax: usize) -> impl Strategy<Value = Graph> {
    (2..=nmax).prop_flat_map(move |n| {
        let vlabels = proptest::collection::vec(0u32..3, n);
        let parents = proptest::collection::vec((0usize..nmax, 0u32..2), n - 1);
        let extras = proptest::collection::vec((0usize..nmax, 0usize..nmax, 0u32..2), 0..3);
        (vlabels, parents, extras).prop_map(move |(vl, ps, ex)| {
            let mut b = GraphBuilder::new();
            for l in &vl {
                b.add_vertex(VLabel(*l));
            }
            for (i, (p, el)) in ps.iter().enumerate() {
                b.add_edge(
                    VertexId((i + 1) as u32),
                    VertexId((p % (i + 1)) as u32),
                    ELabel(*el),
                )
                .expect("tree edge");
            }
            for (u, v, el) in ex {
                let (u, v) = (VertexId((u % n) as u32), VertexId((v % n) as u32));
                if u != v && !b.has_edge(u, v) {
                    let _ = b.add_edge(u, v, ELabel(el));
                }
            }
            b.build()
        })
    })
}

fn arb_db(graphs: usize, nmax: usize) -> impl Strategy<Value = Vec<Graph>> {
    proptest::collection::vec(arb_connected_graph(nmax), 1..=graphs)
}

fn save_bytes(idx: &TreePiIndex) -> Vec<u8> {
    let mut out = Vec::new();
    idx.save(&mut out).expect("in-memory save");
    out
}

fn run_engine(
    engine: &Engine,
    queries: &[Graph],
    seed: u64,
) -> (Vec<treepi::QueryResult>, obs::MetricSet) {
    let registry = obs::Registry::new();
    let (results, _) = engine.query_batch_obs(queries, QueryOptions::default(), seed, &registry);
    (results, registry.drain())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Engine batches return identical matches, stats, and deterministic
    /// counters at 1, 2, and 8 pool workers, and match the scoped-thread
    /// reference implementation exactly.
    #[test]
    fn engine_is_pool_size_invariant_and_matches_scoped(
        db in arb_db(8, 7),
        queries in proptest::collection::vec(arb_connected_graph(5), 1..=6),
        seed in any::<u64>(),
    ) {
        let idx = TreePiIndex::build(db, TreePiParams::quick());

        // Scoped reference (the pre-pool implementation, kept for exactly
        // this comparison).
        let scoped_registry = obs::Registry::new();
        let (scoped, _) = treepi::scoped_ref::query_batch_scoped_obs(
            &idx,
            &queries,
            QueryOptions::default(),
            1,
            seed,
            &scoped_registry,
        );
        let scoped_det = scoped_registry.drain().deterministic_counters();

        let mut engine = Engine::new(idx, 1);
        let (base, base_metrics) = run_engine(&engine, &queries, seed);
        for (a, b) in scoped.iter().zip(&base) {
            prop_assert_eq!(&a.matches, &b.matches);
            prop_assert_eq!(a.stats.filtered, b.stats.filtered);
            prop_assert_eq!(a.stats.pruned, b.stats.pruned);
            prop_assert_eq!(a.stats.answers, b.stats.answers);
            prop_assert_eq!(a.stats.partition_size, b.stats.partition_size);
        }
        let base_det = base_metrics.deterministic_counters();
        if obs::COMPILED_IN {
            prop_assert_eq!(&base_det, &scoped_det);
        }

        for workers in [2usize, 8] {
            engine = Engine::new(engine.into_index(), workers);
            let (results, metrics) = run_engine(&engine, &queries, seed);
            for (a, b) in base.iter().zip(&results) {
                prop_assert_eq!(&a.matches, &b.matches);
                prop_assert_eq!(a.stats.filtered, b.stats.filtered);
                prop_assert_eq!(a.stats.pruned, b.stats.pruned);
            }
            prop_assert_eq!(
                &metrics.deterministic_counters(),
                &base_det,
                "workers={}",
                workers
            );
        }
    }

    /// Builds dispatched onto an explicit pool serialize to identical bytes
    /// at 1, 2, and 8 workers (and match the thread-count entry point).
    #[test]
    fn pooled_build_is_pool_size_invariant(db in arb_db(10, 8)) {
        let base = TreePiIndex::build_with_threads(db.clone(), TreePiParams::quick(), 1);
        let base_bytes = save_bytes(&base);
        for workers in [1usize, 2, 8] {
            let pool = Pool::new(workers);
            let idx = TreePiIndex::build_with_pool_obs(
                db.clone(),
                TreePiParams::quick(),
                &pool,
                &obs::Shard::disabled(),
            );
            prop_assert_eq!(
                &save_bytes(&idx),
                &base_bytes,
                "serialized index differs at pool workers={}",
                workers
            );
        }
    }
}

/// One database where a 3-cycle query has well over [`INTRA_PAR_THRESHOLD`]
/// candidates, batched twice on an 8-worker engine: the batch fans out over
/// pool seats AND each query's prune/verify stages dispatch back into the
/// same pool from inside a seat (re-entrant nesting). Must complete (no
/// deadlock) and agree with a 1-worker engine.
#[test]
fn reentrant_stage_dispatch_is_deterministic() {
    let mut db = Vec::new();
    for i in 0..(INTRA_PAR_THRESHOLD + 8) {
        // Triangle plus a tail; the tail label varies so the db is not all
        // one graph.
        let tail = (i % 3) as u32;
        db.push(graph_from(
            &[0, 0, 0, tail],
            &[(0, 1, 0), (1, 2, 0), (2, 0, 0), (2, 3, 1)],
        ));
    }
    let triangle = graph_from(&[0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 0, 0)]);
    let queries = vec![triangle.clone(), triangle];
    let idx = TreePiIndex::build(db, TreePiParams::quick());

    let serial = Engine::new(idx, 1);
    let (base, _) = serial.query_batch(&queries, QueryOptions::default(), 7);
    // Sanity: the filter stage really produces an intra-parallel workload.
    assert!(base[0].stats.filtered >= INTRA_PAR_THRESHOLD);
    assert_eq!(base[0].stats.answers, INTRA_PAR_THRESHOLD + 8);

    let engine = Engine::new(serial.into_index(), 8);
    for round in 0..3 {
        let (results, _) = engine.query_batch(&queries, QueryOptions::default(), 7);
        for (a, b) in base.iter().zip(&results) {
            assert_eq!(a.matches, b.matches, "round {round}");
            assert_eq!(a.stats.filtered, b.stats.filtered);
            assert_eq!(a.stats.pruned, b.stats.pruned);
        }
    }
}
