//! Build-equivalence property tests: on arbitrary databases, the index
//! built at 1, 2, and 8 threads must be **the same index** — not just
//! equivalent under queries, but byte-identical under [`persist`]
//! serialization (features, canon order, support sets, center tables) with
//! identical `BuildStats` shape counters. This is the determinism contract
//! of the parallel miner and the parallel center-extraction stage.

use graph_core::{ELabel, Graph, GraphBuilder, VLabel, VertexId};
use proptest::prelude::*;
use treepi::{TreePiIndex, TreePiParams};

/// A random connected labeled graph: random tree plus a few extra edges.
fn arb_connected_graph(nmax: usize) -> impl Strategy<Value = Graph> {
    (2..=nmax).prop_flat_map(move |n| {
        let vlabels = proptest::collection::vec(0u32..3, n);
        let parents = proptest::collection::vec((0usize..nmax, 0u32..2), n - 1);
        let extras = proptest::collection::vec((0usize..nmax, 0usize..nmax, 0u32..2), 0..3);
        (vlabels, parents, extras).prop_map(move |(vl, ps, ex)| {
            let mut b = GraphBuilder::new();
            for l in &vl {
                b.add_vertex(VLabel(*l));
            }
            for (i, (p, el)) in ps.iter().enumerate() {
                b.add_edge(
                    VertexId((i + 1) as u32),
                    VertexId((p % (i + 1)) as u32),
                    ELabel(*el),
                )
                .expect("tree edge");
            }
            for (u, v, el) in ex {
                let (u, v) = (VertexId((u % n) as u32), VertexId((v % n) as u32));
                if u != v && !b.has_edge(u, v) {
                    let _ = b.add_edge(u, v, ELabel(el));
                }
            }
            b.build()
        })
    })
}

fn arb_db(graphs: usize, nmax: usize) -> impl Strategy<Value = Vec<Graph>> {
    proptest::collection::vec(arb_connected_graph(nmax), 1..=graphs)
}

fn save_bytes(idx: &TreePiIndex) -> Vec<u8> {
    let mut out = Vec::new();
    idx.save(&mut out).expect("in-memory save");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Builds at 1, 2, and 8 threads serialize to identical bytes and
    /// report identical shape counters.
    #[test]
    fn build_is_thread_count_invariant(db in arb_db(10, 8)) {
        let base = TreePiIndex::build_with_threads(db.clone(), TreePiParams::quick(), 1);
        let base_bytes = save_bytes(&base);
        for threads in [2usize, 8] {
            let idx = TreePiIndex::build_with_threads(db.clone(), TreePiParams::quick(), threads);
            prop_assert_eq!(
                &save_bytes(&idx),
                &base_bytes,
                "serialized index differs at threads={}",
                threads
            );
            let (a, b) = (base.stats(), idx.stats());
            prop_assert_eq!(a.mined, b.mined);
            prop_assert_eq!(a.features, b.features);
            prop_assert_eq!(a.center_entries, b.center_entries);
            prop_assert_eq!(a.center_positions, b.center_positions);
            prop_assert_eq!(a.truncated, b.truncated);
        }
    }

    /// Serialization itself is a pure function of the built index: two
    /// serial builds of the same database produce identical bytes (guards
    /// against transient fields — e.g. timings — leaking into the format).
    #[test]
    fn save_is_deterministic_across_runs(db in arb_db(6, 6)) {
        let a = TreePiIndex::build_with_threads(db.clone(), TreePiParams::quick(), 1);
        let b = TreePiIndex::build_with_threads(db, TreePiParams::quick(), 1);
        prop_assert_eq!(save_bytes(&a), save_bytes(&b));
    }
}
