//! Prometheus encoder coverage: a golden-file rendering of a fixed
//! [`obs::MetricSet`] plus property tests over randomly generated sets
//! (bucket cumulativity, `+Inf` totals, sanitization round-trips).
//!
//! The property tests use a local splitmix64 — `obs` deliberately has no
//! dev-dependencies (same pattern as the histogram tests in `src/lib.rs`).

#![cfg(not(feature = "off"))]

use obs::prom::{render, sanitize};
use obs::MetricSet;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[test]
fn golden_rendering_of_a_fixed_set() {
    let mut set = MetricSet::new();
    set.add("9weird-name.x", 1);
    set.add("serve.queries", 42);
    set.set_gauge("serve.queue_depth", 7);
    set.observe_ns("serve.request", 3);
    set.observe_ns("serve.request", 3);
    set.observe_ns("serve.request", 7);
    let expected = "\
# HELP _9weird_name_x_total treepi counter 9weird-name.x
# TYPE _9weird_name_x_total counter
_9weird_name_x_total 1
# HELP serve_queries_total treepi counter serve.queries
# TYPE serve_queries_total counter
serve_queries_total 42
# HELP serve_queue_depth treepi gauge serve.queue_depth
# TYPE serve_queue_depth gauge
serve_queue_depth 7
# HELP serve_request_seconds treepi span serve.request (latency histogram, seconds)
# TYPE serve_request_seconds histogram
serve_request_seconds_bucket{le=\"0.000000003\"} 2
serve_request_seconds_bucket{le=\"0.000000007\"} 3
serve_request_seconds_bucket{le=\"+Inf\"} 3
serve_request_seconds_sum 0.000000013
serve_request_seconds_count 3
";
    assert_eq!(render(&set), expected);
}

/// Pull every `fam_bucket{le="..."} v` sample for `fam` out of rendered
/// text, in emission order, as `(le, cumulative_count)` pairs.
fn bucket_samples(text: &str, fam: &str) -> Vec<(String, u64)> {
    let prefix = format!("{fam}_bucket{{le=\"");
    text.lines()
        .filter_map(|l| l.strip_prefix(&prefix))
        .map(|rest| {
            let (le, rest) = rest.split_once("\"}").expect("closing label brace");
            (le.to_string(), rest.trim().parse().expect("bucket count"))
        })
        .collect()
}

fn sample_value(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .map(|v| v.trim().parse().expect("sample value"))
}

#[test]
fn histograms_are_cumulative_and_inf_matches_span_count() {
    let mut state = 0xC0FFEEu64;
    for _ in 0..50 {
        let mut set = MetricSet::new();
        let n_obs = (splitmix64(&mut state) % 200) as usize + 1;
        for _ in 0..n_obs {
            // Spread over the whole log-linear range including the
            // beyond-K_MAX clamp (2^55 max), while keeping the 200-sample
            // total_ns sum far from u64 overflow.
            let shift = 9 + splitmix64(&mut state) % 55;
            let ns = splitmix64(&mut state) >> shift;
            set.observe_ns("t.span", ns);
        }
        let text = render(&set);
        let buckets = bucket_samples(&text, "t_span_seconds");
        assert!(!buckets.is_empty());
        let mut prev = 0u64;
        for (le, c) in &buckets {
            assert!(*c >= prev, "bucket counts must be cumulative ({le}: {c})");
            prev = *c;
        }
        let (last_le, inf_count) = buckets.last().unwrap();
        assert_eq!(last_le, "+Inf", "histogram must end with +Inf");
        assert_eq!(*inf_count, n_obs as u64, "+Inf equals the span count");
        // The bucket just before +Inf already covers every observation.
        if buckets.len() >= 2 {
            assert_eq!(buckets[buckets.len() - 2].1, n_obs as u64);
        }
        assert_eq!(
            sample_value(&text, "t_span_seconds_count"),
            Some(n_obs as f64)
        );
        let sum = sample_value(&text, "t_span_seconds_sum").unwrap();
        let expected = set.span("t.span").unwrap().total_ns as f64 / 1e9;
        assert!((sum - expected).abs() <= expected * 1e-9 + 1e-12);
    }
}

#[test]
fn counters_survive_sanitization_round_trip() {
    let mut state = 0xDEADBEEFu64;
    for round in 0..50 {
        let mut set = MetricSet::new();
        let mut expected: Vec<(String, u64)> = Vec::new();
        for i in 0..8 {
            // Random names over a hostile alphabet (dots, dashes, digits,
            // spaces, non-ASCII), kept collision-free by an index suffix.
            let alphabet: Vec<char> = "ab9.-_ :μ/".chars().collect();
            let len = (splitmix64(&mut state) % 12) as usize + 1;
            let mut name: String = (0..len)
                .map(|_| alphabet[(splitmix64(&mut state) as usize) % alphabet.len()])
                .collect();
            name.push_str(&format!(".{round}x{i}"));
            let v = splitmix64(&mut state) % 1_000_000;
            set.add(&name, v);
            expected.push((name, v));
        }
        let text = render(&set);
        for (name, v) in expected {
            let mut fam = sanitize(&name);
            if !fam.ends_with("_total") {
                fam.push_str("_total");
            }
            // The sanitized family name is legal Prometheus…
            let mut chars = fam.chars();
            let first = chars.next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_' || first == ':');
            assert!(chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
            // …idempotent under re-sanitization…
            assert_eq!(sanitize(&fam), fam);
            // …and its sample carries the original value, with the original
            // name recoverable from the HELP line.
            assert_eq!(sample_value(&text, &fam), Some(v as f64), "{name:?}");
            assert!(text.contains(&format!("# HELP {fam} treepi counter {name}")));
        }
    }
}
