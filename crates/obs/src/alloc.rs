//! Memory accounting: a tracking allocator wrapping the global allocator
//! with atomic live/peak byte counters.
//!
//! Install it once in a binary crate:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: obs::alloc::TrackingAlloc<std::alloc::System> =
//!     obs::alloc::TrackingAlloc::new(std::alloc::System);
//! ```
//!
//! Every (de)allocation then maintains four process-wide counters, read
//! via [`live_bytes`] / [`peak_bytes`] / [`total_allocated_bytes`] /
//! [`allocation_count`] and snapshotted into `mem.alloc.*` gauges with
//! [`record_gauges`]. Counting is exact request-size accounting (what the
//! program asked for, not what the allocator rounded to), so values are
//! comparable across allocators and platforms.
//!
//! Cost model: two relaxed atomic RMWs per allocation (add + max) and one
//! per deallocation — negligible next to the allocation itself. Under the
//! crate's `off` feature the wrapper forwards without touching any
//! counter, so the instrumented binary is bit-for-bit a plain
//! `System`-allocated one; the public API is unchanged.

use std::alloc::{GlobalAlloc, Layout};
use std::sync::atomic::{AtomicU64, Ordering};

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static TOTAL: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

#[inline]
fn on_alloc(bytes: u64) {
    if !crate::COMPILED_IN {
        return;
    }
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
    TOTAL.fetch_add(bytes, Ordering::Relaxed);
    ALLOCS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
fn on_dealloc(bytes: u64) {
    if !crate::COMPILED_IN {
        return;
    }
    LIVE.fetch_sub(bytes, Ordering::Relaxed);
}

/// A [`GlobalAlloc`] wrapper that counts live, peak, and cumulative bytes.
/// The counters are module-level statics, so readers need no handle to the
/// installed instance.
#[derive(Debug, Default)]
pub struct TrackingAlloc<A>(A);

impl<A> TrackingAlloc<A> {
    /// Wrap `inner` (const, so it can initialize a `#[global_allocator]`
    /// static).
    pub const fn new(inner: A) -> Self {
        Self(inner)
    }
}

// SAFETY: all methods delegate to the inner allocator unchanged; the
// wrapper only updates counters and never inspects or alters the returned
// memory, so the inner allocator's contract carries over.
unsafe impl<A: GlobalAlloc> GlobalAlloc for TrackingAlloc<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = self.0.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = self.0.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.0.dealloc(ptr, layout);
        on_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = self.0.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            // Accounted as a fresh allocation plus a free of the old block:
            // TOTAL/ALLOCS see the churn, LIVE sees the net change.
            on_alloc(new_size as u64);
            on_dealloc(layout.size() as u64);
        }
        new_ptr
    }
}

/// Bytes currently allocated and not yet freed.
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of [`live_bytes`] since process start (or the last
/// [`reset_peak`]).
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Cumulative bytes ever allocated (never decreases).
pub fn total_allocated_bytes() -> u64 {
    TOTAL.load(Ordering::Relaxed)
}

/// Number of allocation calls served (never decreases).
pub fn allocation_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Whether a [`TrackingAlloc`] has observed any allocation — i.e. one is
/// installed as the global allocator and instrumentation is compiled in.
pub fn installed() -> bool {
    allocation_count() > 0
}

/// Lower the peak to the current live level, so a subsequent phase's peak
/// is measured from here.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Record the allocator counters as `mem.alloc.*` gauges
/// ([`crate::names::GAUGE_ALLOC_LIVE`] and friends) into `registry`.
/// A no-op when no tracking allocator is installed (the gauges would all
/// read zero and mean nothing).
pub fn record_gauges(registry: &crate::Registry) {
    if !installed() {
        return;
    }
    registry.set_gauge(crate::names::GAUGE_ALLOC_LIVE, live_bytes());
    registry.set_gauge(crate::names::GAUGE_ALLOC_PEAK, peak_bytes());
    registry.set_gauge(crate::names::GAUGE_ALLOC_TOTAL, total_allocated_bytes());
    registry.set_gauge(crate::names::GAUGE_ALLOC_COUNT, allocation_count());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The counters are process-wide statics; serialize the tests that
    /// mutate them so their deltas are exact.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// Exercise the GlobalAlloc impl directly (a test binary cannot install
    /// a second global allocator, but the counters are instance-free).
    #[test]
    #[cfg(not(feature = "off"))]
    fn counting_tracks_alloc_realloc_dealloc() {
        let _guard = TEST_LOCK.lock().unwrap();
        let a = TrackingAlloc::new(std::alloc::System);
        let layout = Layout::from_size_align(1024, 8).unwrap();
        let live0 = live_bytes();
        let total0 = total_allocated_bytes();
        let count0 = allocation_count();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert_eq!(live_bytes() - live0, 1024);
            assert!(peak_bytes() >= live_bytes());
            let p = a.realloc(p, layout, 4096);
            assert!(!p.is_null());
            assert_eq!(live_bytes() - live0, 4096);
            a.dealloc(p, Layout::from_size_align(4096, 8).unwrap());
        }
        assert_eq!(live_bytes(), live0);
        assert_eq!(total_allocated_bytes() - total0, 1024 + 4096);
        assert_eq!(allocation_count() - count0, 2);
        assert!(installed());
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn reset_peak_lowers_to_live() {
        let _guard = TEST_LOCK.lock().unwrap();
        let a = TrackingAlloc::new(std::alloc::System);
        let layout = Layout::from_size_align(4096, 8).unwrap();
        unsafe {
            let p = a.alloc_zeroed(layout);
            assert!(!p.is_null());
            assert!(peak_bytes() >= live_bytes());
            a.dealloc(p, layout);
        }
        reset_peak();
        assert_eq!(peak_bytes(), live_bytes());
    }

    #[test]
    #[cfg(feature = "off")]
    fn off_feature_counts_nothing() {
        let a = TrackingAlloc::new(std::alloc::System);
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            a.dealloc(p, layout);
        }
        assert_eq!(live_bytes(), 0);
        assert_eq!(total_allocated_bytes(), 0);
        assert_eq!(allocation_count(), 0);
        assert!(!installed());
    }
}
