//! Ring-buffer time-series sampler (`treepi.series/v1`).
//!
//! Counters and span histograms aggregate over a whole run; they can tell
//! you *that* the queue peaked at 64 but not *when*, or whether the cache
//! hit rate degraded as the working set churned. The [`Sampler`] fills that
//! gap: callers record periodic samples of a few selected values (queue
//! depth, shed count, cache hits, live heap bytes) into a bounded ring,
//! and the whole series renders as one JSON document at exit.
//!
//! Two sampling drivers exist:
//!
//! - **tick-driven** — the serve event loop calls [`Sampler::due`] once per
//!   poll iteration and records when the configured interval has elapsed,
//!   so sampling costs one `Instant::now` comparison per loop;
//! - **phase-driven** — the index build records one labelled sample at each
//!   phase boundary (`build.mine`, `build.shrink`, `build.centers`),
//!   bypassing `due` so short builds still produce a useful series.
//!
//! The ring is bounded: when full, the oldest sample is evicted and
//! [`Sampler::dropped`] counts it, keeping memory constant under
//! arbitrarily long runs. Timestamps are nanoseconds since the sampler's
//! construction and are monotone by construction (one `Instant` epoch).

use crate::json::escape_string;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Schema tag embedded in rendered series documents.
pub const SERIES_SCHEMA: &str = "treepi.series/v1";

/// One recorded observation: a timestamp, an optional phase label, and the
/// sampled `(name, value)` pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Nanoseconds since the sampler's epoch (monotone across samples).
    pub t_ns: u64,
    /// Phase label for boundary-driven samples (e.g. `"build.mine"`);
    /// `None` for periodic ticks.
    pub label: Option<String>,
    /// Sampled values, in the order the caller supplied them.
    pub values: Vec<(String, u64)>,
}

/// Bounded ring of [`Sample`]s with interval-gated recording.
///
/// Interior mutability (like [`crate::Shard`]) so the owning single-threaded
/// loop can record through a shared reference; `!Sync` by construction.
#[derive(Debug)]
pub struct Sampler {
    enabled: bool,
    epoch: Instant,
    interval: Duration,
    cap: usize,
    last: Cell<Option<Instant>>,
    samples: RefCell<VecDeque<Sample>>,
    dropped: Cell<u64>,
}

impl Sampler {
    /// A sampler recording at most every `interval`, keeping the most
    /// recent `cap` samples (older ones are evicted and counted).
    pub fn new(interval: Duration, cap: usize) -> Self {
        Self {
            enabled: crate::COMPILED_IN,
            epoch: Instant::now(),
            interval,
            cap: cap.max(1),
            last: Cell::new(None),
            samples: RefCell::new(VecDeque::new()),
            dropped: Cell::new(0),
        }
    }

    /// A permanently disabled sampler: `due` is always false and `sample`
    /// is a no-op. Lets call sites thread one parameter unconditionally.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            epoch: Instant::now(),
            interval: Duration::ZERO,
            cap: 1,
            last: Cell::new(None),
            samples: RefCell::new(VecDeque::new()),
            dropped: Cell::new(0),
        }
    }

    /// Whether this sampler records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether the periodic interval has elapsed since the last recorded
    /// sample (always true for the first one). One clock read when enabled,
    /// one branch when disabled — cheap enough for a per-poll-iteration
    /// call in the serve event loop.
    #[inline]
    pub fn due(&self) -> bool {
        if !self.enabled {
            return false;
        }
        match self.last.get() {
            None => true,
            Some(t) => t.elapsed() >= self.interval,
        }
    }

    /// Record one sample. `label` is `Some` at phase boundaries, `None`
    /// for periodic ticks. Resets the interval clock either way.
    pub fn sample(&self, label: Option<&str>, values: &[(&str, u64)]) {
        if !self.enabled {
            return;
        }
        self.last.set(Some(Instant::now()));
        let mut ring = self.samples.borrow_mut();
        if ring.len() == self.cap {
            ring.pop_front();
            self.dropped.set(self.dropped.get() + 1);
        }
        ring.push_back(Sample {
            t_ns: self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            label: label.map(str::to_owned),
            values: values.iter().map(|&(n, v)| (n.to_owned(), v)).collect(),
        });
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.borrow().len()
    }

    /// Whether no samples have been retained.
    pub fn is_empty(&self) -> bool {
        self.samples.borrow().is_empty()
    }

    /// Samples evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Render the retained series as a `treepi.series/v1` JSON document:
    /// `{"schema", "interval_ns", "dropped", "samples": [{"t_ns", "label"?,
    /// "values": {...}}]}`. Timestamps are non-decreasing in array order.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema\": {},\n",
            escape_string(SERIES_SCHEMA)
        ));
        out.push_str(&format!(
            "  \"interval_ns\": {},\n",
            self.interval.as_nanos().min(u64::MAX as u128)
        ));
        out.push_str(&format!("  \"dropped\": {},\n", self.dropped.get()));
        out.push_str("  \"samples\": [");
        let ring = self.samples.borrow();
        for (i, s) in ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"t_ns\": {}", s.t_ns));
            if let Some(label) = &s.label {
                out.push_str(&format!(", \"label\": {}", escape_string(label)));
            }
            out.push_str(", \"values\": {");
            for (j, (name, v)) in s.values.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {v}", escape_string(name)));
            }
            out.push_str("}}");
        }
        if !ring.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    #[cfg(not(feature = "off"))]
    fn records_and_renders_monotone_series() {
        let s = Sampler::new(Duration::ZERO, 16);
        assert!(s.due(), "first sample is always due");
        s.sample(None, &[("serve.queue_depth", 3), ("cache.hit", 1)]);
        s.sample(Some("build.mine"), &[("mem.alloc.live_bytes", 1024)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 0);
        let doc = s.render_json();
        let v = json::parse(&doc).expect("series renders valid JSON");
        assert_eq!(
            v.get("schema").and_then(json::Value::as_str),
            Some(SERIES_SCHEMA)
        );
        let samples = v
            .get("samples")
            .and_then(json::Value::as_array)
            .expect("samples array");
        assert_eq!(samples.len(), 2);
        let mut prev = 0u64;
        for sample in samples {
            let t = sample.get("t_ns").and_then(json::Value::as_u64).unwrap();
            assert!(t >= prev, "timestamps must be monotone");
            prev = t;
        }
        assert_eq!(
            samples[0]
                .get("values")
                .and_then(|m| m.get("serve.queue_depth"))
                .and_then(json::Value::as_u64),
            Some(3)
        );
        assert_eq!(
            samples[1].get("label").and_then(json::Value::as_str),
            Some("build.mine")
        );
        assert!(samples[0].get("label").is_none());
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn ring_evicts_oldest_and_counts_drops() {
        let s = Sampler::new(Duration::ZERO, 3);
        for i in 0..5u64 {
            s.sample(None, &[("x", i)]);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        let ring = s.samples.borrow();
        let kept: Vec<u64> = ring.iter().map(|smp| smp.values[0].1).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest samples are evicted first");
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn interval_gates_due() {
        let s = Sampler::new(Duration::from_secs(3600), 4);
        assert!(s.due());
        s.sample(None, &[]);
        assert!(!s.due(), "an hour has not elapsed");
        let fast = Sampler::new(Duration::ZERO, 4);
        fast.sample(None, &[]);
        assert!(fast.due(), "zero interval is always due");
    }

    #[test]
    fn disabled_sampler_is_inert() {
        let s = Sampler::disabled();
        assert!(!s.is_enabled());
        assert!(!s.due());
        s.sample(Some("phase"), &[("x", 1)]);
        assert!(s.is_empty());
        assert_eq!(s.dropped(), 0);
        // Still renders a valid (empty) document.
        assert!(json::parse(&s.render_json()).is_ok());
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn empty_and_escaped_rendering() {
        let s = Sampler::new(Duration::ZERO, 4);
        assert!(json::parse(&s.render_json()).is_ok());
        s.sample(Some("we\"ird\\"), &[("na\"me", 7)]);
        let v = json::parse(&s.render_json()).expect("escaped names stay valid JSON");
        let samples = v.get("samples").and_then(json::Value::as_array).unwrap();
        assert_eq!(
            samples[0].get("label").and_then(json::Value::as_str),
            Some("we\"ird\\")
        );
        assert_eq!(
            samples[0]
                .get("values")
                .and_then(|m| m.get("na\"me"))
                .and_then(json::Value::as_u64),
            Some(7)
        );
    }
}
