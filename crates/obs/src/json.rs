//! Minimal JSON support for the obs crate: string escaping for the
//! renderer, and a small validating parser used by tests and the CLI
//! smoke checks to confirm that [`crate::MetricSet::render_json`] output
//! is well-formed without pulling in an external dependency.
//!
//! The parser accepts the full JSON grammar (objects, arrays, strings
//! with escapes, numbers, booleans, null) but keeps the value model
//! deliberately small — numbers are stored as `f64` plus an exact `u64`
//! when representable, which covers every value the renderer emits.

use std::collections::BTreeMap;
use std::fmt;

/// Escape `s` as a JSON string literal, including the surrounding quotes.
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number; `u64` form kept when the literal is an exact non-negative
    /// integer (the only kind the obs renderer produces).
    Number {
        /// Approximate value, always present.
        f: f64,
        /// Exact value when the literal fits a `u64`.
        u: Option<u64>,
    },
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (key order not preserved; obs output is sorted anyway).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Array element lookup; `None` for other variants / out of range.
    pub fn index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(v) => v.get(i),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The exact integer payload, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number { u, .. } => *u,
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number { f, .. } => Some(*f),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse error with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid codepoint"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let start = self.pos;
                    let len = utf8_len(self.bytes[start]);
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    /// Read 4 hex digits starting at `pos`, advancing past them.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for i in 0..4 {
            let b = self
                .bytes
                .get(self.pos + i)
                .copied()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = (v << 4) | d;
        }
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let int_end = self.pos;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let f: f64 = text
            .parse()
            .map_err(|_| self.err("number out of representable range"))?;
        let u = if int_end == self.pos {
            std::str::from_utf8(&self.bytes[start..int_end])
                .unwrap()
                .parse::<u64>()
                .ok()
        } else {
            None
        };
        Ok(Value::Number { f, u })
    }
}

/// Parse a `treepi.obs/v1` document (the output of
/// [`crate::MetricSet::render_json`]) back into a [`crate::MetricSet`].
///
/// Validates the schema tag and every field shape; derived span fields
/// (`mean_ns`, `p50_ns`, `p95_ns`) are ignored on input — they are
/// recomputed from the histogram, so `render → parse → render` is a
/// fixpoint. This is the input side of the metrics regression gate
/// ([`crate::diff`]).
pub fn parse_metric_set(input: &str) -> Result<crate::MetricSet, ParseError> {
    fn sem(msg: String) -> ParseError {
        ParseError { at: 0, msg }
    }
    fn u64_field(obj: &Value, key: &str, ctx: &str) -> Result<u64, ParseError> {
        obj.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| sem(format!("{ctx}: missing or non-integer \"{key}\"")))
    }

    let v = parse(input)?;
    let schema = v.get("schema").and_then(Value::as_str);
    if schema != Some(crate::JSON_SCHEMA) {
        return Err(sem(format!(
            "unsupported metrics schema {schema:?} (expected {:?})",
            crate::JSON_SCHEMA
        )));
    }
    let mut set = crate::MetricSet::new();
    let counters = v
        .get("counters")
        .and_then(Value::as_object)
        .ok_or_else(|| sem("missing \"counters\" object".to_string()))?;
    for (name, val) in counters {
        let n = val
            .as_u64()
            .ok_or_else(|| sem(format!("counter \"{name}\": non-integer value")))?;
        set.add(name, n);
    }
    // "gauges" is additive to the v1 schema: absent in documents written
    // before gauges existed, so treat a missing key as empty.
    if let Some(gauges) = v.get("gauges") {
        let gauges = gauges
            .as_object()
            .ok_or_else(|| sem("\"gauges\" is not an object".to_string()))?;
        for (name, val) in gauges {
            let n = val
                .as_u64()
                .ok_or_else(|| sem(format!("gauge \"{name}\": non-integer value")))?;
            set.set_gauge(name, n);
        }
    }
    let spans = v
        .get("spans")
        .and_then(Value::as_object)
        .ok_or_else(|| sem("missing \"spans\" object".to_string()))?;
    for (name, span) in spans {
        let ctx = format!("span \"{name}\"");
        let mut stat = crate::SpanStat {
            count: u64_field(span, "count", &ctx)?,
            total_ns: u64_field(span, "total_ns", &ctx)?,
            min_ns: u64_field(span, "min_ns", &ctx)?,
            max_ns: u64_field(span, "max_ns", &ctx)?,
            buckets: [0; crate::BUCKETS],
        };
        if stat.count == 0 {
            // The renderer reports min as 0 for empty spans; restore the
            // internal "nothing seen yet" sentinel.
            stat.min_ns = u64::MAX;
        }
        let buckets = span
            .get("buckets")
            .and_then(Value::as_array)
            .ok_or_else(|| sem(format!("{ctx}: missing \"buckets\" array")))?;
        for pair in buckets {
            let (upper, count) = match pair.as_array() {
                Some([u, c]) => (u.as_u64(), c.as_u64()),
                _ => (None, None),
            };
            let (upper, count) = match (upper, count) {
                (Some(u), Some(c)) => (u, c),
                _ => {
                    return Err(sem(format!(
                        "{ctx}: bucket entries must be [upper_ns, count] integer pairs"
                    )))
                }
            };
            // Invert the log-linear encoding: a canonical upper bound maps
            // back to its bucket via `bucket_of` and round-trips through
            // `bucket_upper`. Pure-log₂ uppers from pre-HDR documents
            // (powers of two ≥ 32) fail this check, giving old baselines a
            // clear versioned rejection instead of silent misbucketing.
            let idx = crate::bucket_of(upper);
            if crate::bucket_upper(idx) != upper {
                return Err(sem(format!(
                    "{ctx}: bucket upper bound {upper} is not a canonical log-linear/16 \
                     bound for schema treepi.obs/v1 — documents from the old pure-log2 \
                     histogram layout must be regenerated"
                )));
            }
            stat.buckets[idx] += count;
        }
        if stat.buckets.iter().sum::<u64>() != stat.count {
            return Err(sem(format!(
                "{ctx}: histogram total does not match \"count\""
            )));
        }
        set.spans.insert(name.clone(), stat);
    }
    Ok(set)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_round_trip_through_parser() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "tab\tnewline\ncarriage\r",
            "control\u{0001}char",
            "unicode: αβγ 漢字 🦀",
            "",
        ] {
            let lit = escape_string(s);
            let v = parse(&lit).unwrap_or_else(|e| panic!("{lit}: {e}"));
            assert_eq!(v.as_str(), Some(s), "round-trip failed for {s:?}");
        }
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse(" 42 ").unwrap().as_u64(), Some(42));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_f64(), Some(-3.0));
        assert_eq!(parse("2.5e1").unwrap().as_f64(), Some(25.0));
        assert_eq!(parse("2.5e1").unwrap().as_u64(), None);
        assert_eq!(
            parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": "c"}], "d": {}}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.index(1)).and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(
            v.get("a")
                .and_then(|a| a.index(2))
                .and_then(|o| o.get("b"))
                .and_then(Value::as_str),
            Some("c")
        );
        assert_eq!(
            v.get("d").and_then(Value::as_object).map(|m| m.len()),
            Some(0)
        );
        assert_eq!(parse("[]").unwrap().as_array().map(<[Value]>::len), Some(0));
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
        assert_eq!(parse(r#""🦀""#).unwrap().as_str(), Some("🦀"));
        assert!(parse(r#""\ud83e""#).is_err(), "lone high surrogate");
        assert!(parse(r#""\udd80""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\escape\"",
            "[1] garbage",
            "{1: 2}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }
}
